//! Minimal JSON for the wire protocol (std-only, like everything else).
//!
//! The server's request bodies are small and flat — `{"sql": "..."}`,
//! `{"rows": [{"dims": [...], "value": 1.0}]}` — so a recursive-descent
//! parser over a byte slice is all that is needed. The parser accepts
//! standard JSON (RFC 8259) with the usual embedded-parser limits:
//! recursion depth is bounded and `\uXXXX` escapes outside the BMP must
//! form valid surrogate pairs.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. BTreeMap keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(cp).ok_or("invalid \\u escape")?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at offset {}", self.pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{s}' at offset {start}"))
    }
}

/// Escapes `s` for embedding inside a JSON string literal (no quotes
/// added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an f64 the way the rest of the workspace does: finite values
/// via Rust's shortest round-trip `Display`, non-finite as `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let v = parse(r#"{"sql": "SELECT 1", "analyze": true, "n": -2.5}"#).unwrap();
        assert_eq!(v.get("sql").and_then(Value::as_str), Some("SELECT 1"));
        assert_eq!(v.get("analyze").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(-2.5));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_rows_body() {
        let v =
            parse(r#"{"rows":[{"dims":["a","b"],"value":1.0},{"dims":["c"],"value":2}]}"#).unwrap();
        let rows = v.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        let dims = rows[0].get("dims").and_then(Value::as_array).unwrap();
        assert_eq!(dims[1].as_str(), Some("b"));
        assert_eq!(rows[1].get("value").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\nd é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd é 😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            r#"{"a" 1}"#,
            r#"{"a":}"#,
            "tru",
            r#""unterminated"#,
            "1 2",
            r#""\ud800""#,
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
        // Depth bomb is bounded, not a stack overflow.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line\nbreak \"quoted\" back\\slash \u{1} é";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn num_renders_non_finite_as_null() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
