//! The auto-`EXPLAIN` slow-query log: a bounded ring of requests that
//! ran past a configurable latency threshold, each carrying what a
//! post-hoc investigation needs — the route, the SQL (when the route
//! has one), a captured `EXPLAIN ANALYZE` plan, the WAL/batcher wait
//! breakdown for writes, and the request's trace id so the entry joins
//! the distributed trace in Perfetto.
//!
//! Capture happens *after* the response is written (see
//! `handle_connection`), so a slow query pays for its own plan capture
//! off the client's critical path. The ring is bounded: the newest
//! [`ServeOptions::slow_log_cap`](crate::ServeOptions::slow_log_cap)
//! entries win, and a monotonic `captured` total records how many were
//! ever taken so `GET /slow` readers can tell "quiet server" from
//! "ring wrapped".
//!
//! A threshold of zero turns the log into a sampler that captures every
//! request — useful in tests and short diagnostic sessions.

use crate::json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// One captured slow request.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Route label (`query`, `insert`, ...), as counted by
    /// `serve.http.requests`.
    pub route: &'static str,
    /// HTTP status the request was answered with.
    pub status: u16,
    /// End-to-end latency from worker pickup to response written.
    pub latency_ns: u64,
    /// Trace id of the request's (sampled) trace context, joinable
    /// against the Chrome-trace export and `/metrics` exemplars.
    pub trace_id: Option<u128>,
    /// The statement, for routes that carry one (`/query`, `/explain`).
    pub sql: Option<String>,
    /// Captured `EXPLAIN ANALYZE` plan text (timings masked — the
    /// interesting signal is the plan shape and source models).
    pub explain: Option<String>,
    /// Wait breakdown for write routes, as a pre-rendered JSON object
    /// (buffered rows, queue depth, WAL position).
    pub wait: Option<String>,
}

impl SlowEntry {
    /// Renders the entry as a JSON object.
    pub fn to_json(&self) -> String {
        let opt_str = |v: &Option<String>| match v {
            Some(s) => format!("\"{}\"", json::escape(s)),
            None => "null".to_string(),
        };
        let trace = match self.trace_id {
            Some(t) => format!("\"{t:032x}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\"unix_ms\":{},\"route\":\"{}\",\"status\":{},\"latency_ns\":{},\
             \"trace_id\":{trace},\"sql\":{},\"explain\":{},\"wait\":{}}}",
            self.unix_ms,
            self.route,
            self.status,
            self.latency_ns,
            opt_str(&self.sql),
            opt_str(&self.explain),
            self.wait.as_deref().unwrap_or("null"),
        )
    }
}

/// The bounded slow-request ring shared by the workers and `GET /slow`.
pub struct SlowLog {
    threshold: Duration,
    cap: usize,
    captured: AtomicU64,
    ring: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// A log capturing requests slower than `threshold`, keeping the
    /// newest `cap` entries.
    pub fn new(threshold: Duration, cap: usize) -> SlowLog {
        SlowLog {
            threshold,
            cap: cap.max(1),
            captured: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The capture threshold (zero captures everything).
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Requests ever captured (monotonic; the ring may have evicted).
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Appends an entry, evicting the oldest past the bound.
    pub fn push(&self, entry: SlowEntry) {
        self.captured.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// A snapshot of the ring, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// The `GET /slow` response body.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self.entries().iter().map(SlowEntry::to_json).collect();
        format!(
            "{{\"threshold_ms\":{},\"captured\":{},\"entries\":[{}]}}",
            self.threshold.as_millis(),
            self.captured(),
            entries.join(",")
        )
    }
}

/// Milliseconds since the Unix epoch, for capture timestamps.
pub fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(route: &'static str, latency_ns: u64) -> SlowEntry {
        SlowEntry {
            unix_ms: 1_700_000_000_000,
            route,
            status: 200,
            latency_ns,
            trace_id: None,
            sql: None,
            explain: None,
            wait: None,
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let log = SlowLog::new(Duration::from_millis(100), 3);
        for i in 0..5u64 {
            log.push(entry("query", i));
        }
        let kept: Vec<u64> = log.entries().iter().map(|e| e.latency_ns).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(log.captured(), 5);
    }

    #[test]
    fn json_renders_optionals_and_trace_hex() {
        let mut e = entry("query", 42);
        e.trace_id = Some(0xabc);
        e.sql = Some("FORECAST \"x\"".into());
        e.wait = Some("{\"buffered_rows\":3}".into());
        let j = e.to_json();
        assert!(
            j.contains("\"trace_id\":\"00000000000000000000000000000abc\""),
            "{j}"
        );
        assert!(j.contains("\"sql\":\"FORECAST \\\"x\\\"\""), "{j}");
        assert!(j.contains("\"explain\":null"), "{j}");
        assert!(j.contains("\"wait\":{\"buffered_rows\":3}"), "{j}");

        let log = SlowLog::new(Duration::ZERO, 4);
        log.push(e);
        let body = log.to_json();
        assert!(
            body.starts_with("{\"threshold_ms\":0,\"captured\":1,\"entries\":["),
            "{body}"
        );
        assert!(body.ends_with("]}"), "{body}");
    }
}
