//! The insert coalescer: micro-batches concurrent `/insert` requests
//! into single [`F2db::insert_batch`] commits.
//!
//! Workers *deposit* resolved rows and block until the flush generation
//! that contains them completes; a dedicated flusher thread wakes when
//! rows arrive, sleeps one coalescing window so concurrent requests pile
//! up, then commits everything deposited so far in one engine call. The
//! result is the write-path economics the engine's `insert_batch`
//! documents: `n` coalesced rows cost one pending-mutex pass instead of
//! `n`, and full time stamps advance inline.
//!
//! Acknowledgement contract: a depositor is only released (and the
//! server only answers `202`) after its rows are **committed into the
//! engine** — never merely buffered. That is what makes the graceful-
//! drain guarantee ("every acknowledged row survives a restart")
//! checkable at all.

use fdc_f2db::F2db;
use fdc_obs::{names, TraceContext};
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Outcome of waiting for a deposit's flush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepositOutcome {
    /// The rows were committed into the engine.
    Committed,
    /// The flush ran and the engine rejected the batch.
    Failed(String),
    /// The deadline elapsed before the flush generation completed. The
    /// rows are still buffered and will be committed by a later flush
    /// (or the shutdown flush).
    TimedOut,
}

struct State {
    rows: Vec<(usize, f64)>,
    /// Trace context of the first *sampled* depositor in the buffered
    /// generation. The flush happens on the flusher thread, so without
    /// this hand-off the engine commit (and the WAL record it appends)
    /// would lose the request's trace. A coalesced flush carries many
    /// requests but one representative trace — the exemplar convention.
    trace: Option<TraceContext>,
    /// Generation the *currently buffered* rows will flush under.
    next_gen: u64,
    /// Highest generation whose flush has completed.
    completed_gen: u64,
    /// Flush errors by generation, kept for a bounded window so late
    /// waiters can still observe them.
    errors: HashMap<u64, String>,
    /// Tells the flusher thread to exit once the buffer is empty.
    stop: bool,
}

/// The generation-based coalescing buffer shared by workers and the
/// flusher thread.
pub struct Batcher {
    state: Mutex<State>,
    /// Wakes the flusher when rows arrive or stop is requested.
    work: Condvar,
    /// Wakes depositors when a flush generation completes.
    flushed: Condvar,
}

impl Default for Batcher {
    fn default() -> Self {
        Batcher {
            state: Mutex::new(State {
                rows: Vec::new(),
                trace: None,
                next_gen: 1,
                completed_gen: 0,
                errors: HashMap::new(),
                stop: false,
            }),
            work: Condvar::new(),
            flushed: Condvar::new(),
        }
    }
}

impl Batcher {
    /// Deposits rows and blocks until the flush containing them commits,
    /// fails, or `deadline` passes.
    pub fn deposit_and_wait(&self, rows: &[(usize, f64)], deadline: Duration) -> DepositOutcome {
        let started = Instant::now();
        let mut state = self.state.lock().unwrap();
        state.rows.extend_from_slice(rows);
        if state.trace.is_none() {
            state.trace = fdc_obs::trace::current().filter(|c| c.sampled);
        }
        let my_gen = state.next_gen;
        self.work.notify_one();
        while state.completed_gen < my_gen {
            let remaining = match deadline.checked_sub(started.elapsed()) {
                Some(r) if !r.is_zero() => r,
                _ => return DepositOutcome::TimedOut,
            };
            let (next, timeout) = self.flushed.wait_timeout(state, remaining).unwrap();
            state = next;
            if timeout.timed_out() && state.completed_gen < my_gen {
                return DepositOutcome::TimedOut;
            }
        }
        match state.errors.get(&my_gen) {
            Some(msg) => DepositOutcome::Failed(msg.clone()),
            None => DepositOutcome::Committed,
        }
    }

    /// The flusher thread's main loop: wake on deposits, linger one
    /// coalescing window, commit. Returns (flushes, rows) totals when
    /// asked to stop.
    pub fn run_flusher(&self, db: &F2db, window: Duration) -> (u64, u64) {
        let mut flushes = 0u64;
        let mut total_rows = 0u64;
        loop {
            {
                let mut state = self.state.lock().unwrap();
                while state.rows.is_empty() && !state.stop {
                    state = self.work.wait(state).unwrap();
                }
                if state.rows.is_empty() && state.stop {
                    return (flushes, total_rows);
                }
            }
            // Linger outside the lock so concurrent requests can pile
            // their rows into this flush's generation.
            if !window.is_zero() {
                std::thread::sleep(window);
            }
            total_rows += self.flush_once(db);
            flushes += 1;
        }
    }

    /// Commits everything currently buffered in one engine call; returns
    /// the number of rows flushed. Used by the flusher loop and by the
    /// shutdown path's final drain.
    pub fn flush_once(&self, db: &F2db) -> u64 {
        let (gen, rows, trace) = {
            let mut state = self.state.lock().unwrap();
            if state.rows.is_empty() {
                return 0;
            }
            let gen = state.next_gen;
            state.next_gen += 1;
            (gen, std::mem::take(&mut state.rows), state.trace.take())
        };
        // Re-activate the representative depositor's context on this
        // thread so the commit's spans — and the WAL record the engine
        // appends — join the originating request's trace.
        let result = {
            let _ctx = trace.map(fdc_obs::trace::activate);
            let _span = fdc_obs::span!("serve.batch_flush");
            db.insert_batch(&rows)
        };
        let mut state = self.state.lock().unwrap();
        state.completed_gen = gen;
        if let Err(e) = &result {
            state.errors.insert(gen, e.to_string());
        }
        // Errors older than a window no one can still be waiting on.
        state.errors.retain(|&g, _| g + 1024 > gen);
        drop(state);
        self.flushed.notify_all();
        fdc_obs::counter(names::SERVE_BATCH_FLUSHES).incr();
        fdc_obs::histogram(names::SERVE_BATCH_FLUSH_ROWS).record(rows.len() as u64);
        rows.len() as u64
    }

    /// Asks the flusher loop to exit after draining its buffer.
    pub fn stop(&self) {
        self.state.lock().unwrap().stop = true;
        self.work.notify_all();
    }

    /// Rows currently buffered (deposited but not yet flushed).
    pub fn buffered(&self) -> usize {
        self.state.lock().unwrap().rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_core::{Advisor, AdvisorOptions};
    use fdc_datagen::tourism_proxy;
    use std::sync::Arc;

    fn small_db() -> Arc<F2db> {
        let ds = tourism_proxy(1);
        let outcome = Advisor::new(
            &ds,
            AdvisorOptions {
                parallelism: Some(2),
                ..AdvisorOptions::default()
            },
        )
        .unwrap()
        .run();
        Arc::new(F2db::load(ds, &outcome.configuration).unwrap())
    }

    #[test]
    fn concurrent_deposits_coalesce_into_few_commits() {
        let db = small_db();
        let base: Vec<usize> = db.dataset().graph().base_nodes().to_vec();
        let len_before = db.dataset().series_len();
        let batcher = Arc::new(Batcher::default());
        let flusher = {
            let batcher = Arc::clone(&batcher);
            let db = Arc::clone(&db);
            std::thread::spawn(move || batcher.run_flusher(&db, Duration::from_millis(5)))
        };
        // 8 threads each deposit one full round concurrently; the
        // coalescing window merges them into far fewer engine commits.
        std::thread::scope(|scope| {
            for round in 0..8 {
                let rows: Vec<(usize, f64)> =
                    base.iter().map(|&b| (b, 10.0 + round as f64)).collect();
                let batcher = &batcher;
                scope.spawn(move || {
                    assert_eq!(
                        batcher.deposit_and_wait(&rows, Duration::from_secs(10)),
                        DepositOutcome::Committed
                    );
                });
            }
        });
        batcher.stop();
        let (flushes, rows) = flusher.join().unwrap();
        assert_eq!(rows as usize, base.len() * 8);
        assert!(flushes >= 1);
        assert_eq!(batcher.buffered(), 0);
        // Every acknowledged round is in the engine.
        assert_eq!(db.dataset().series_len(), len_before + 8);
        // The point of coalescing: more than one row per engine commit.
        let stats = db.stats();
        assert_eq!(stats.insert_batches as u64, flushes);
        assert!(stats.inserts / stats.insert_batches > 1);
    }

    #[test]
    fn engine_rejection_reaches_the_depositor() {
        let db = small_db();
        let top = db.dataset().graph().top_node();
        let batcher = Arc::new(Batcher::default());
        let flusher = {
            let batcher = Arc::clone(&batcher);
            let db = Arc::clone(&db);
            std::thread::spawn(move || batcher.run_flusher(&db, Duration::ZERO))
        };
        match batcher.deposit_and_wait(&[(top, 1.0)], Duration::from_secs(10)) {
            DepositOutcome::Failed(msg) => assert!(msg.contains("not a base series"), "{msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        batcher.stop();
        flusher.join().unwrap();
    }

    #[test]
    fn deposit_times_out_when_no_flusher_runs() {
        let db = small_db();
        let b = db.dataset().graph().base_nodes()[0];
        let batcher = Batcher::default();
        assert_eq!(
            batcher.deposit_and_wait(&[(b, 1.0)], Duration::from_millis(20)),
            DepositOutcome::TimedOut
        );
        // The rows stay buffered; a later (shutdown) flush commits them.
        assert_eq!(batcher.buffered(), 1);
        assert_eq!(batcher.flush_once(&db), 1);
        assert_eq!(db.pending_inserts(), 1);
    }
}
