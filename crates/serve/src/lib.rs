//! # fdc-serve — the network forecast-serving subsystem
//!
//! Wraps an embedded [`F2db`] in a small, std-only HTTP/1.1 server so a
//! deployed model configuration can be queried and maintained over the
//! network. The architecture is the classic bounded-queue worker pool:
//!
//! * an **accept thread** owns the listener and performs admission
//!   control — when the bounded connection queue is full, the request is
//!   answered `429 Too Many Requests` (with `Retry-After`) immediately
//!   instead of queueing unboundedly;
//! * a fixed pool of **worker threads** pops connections, enforces the
//!   per-request deadline (a connection that waited in the queue longer
//!   than the deadline is answered `503` without doing the work), parses
//!   the request with the same [`fdc_obs::httpcore`] reader the
//!   observability exporter uses, and dispatches on the route table
//!   below;
//! * a **flusher thread** micro-batches writes: concurrent `POST
//!   /insert` requests deposit resolved rows into the [`Batcher`] and
//!   block; after one coalescing window the flusher commits everything
//!   deposited in a single [`F2db::insert_batch`] call, so `n`
//!   concurrent inserts cost one pass over the engine's write path
//!   instead of `n`. A `202 Accepted` is only sent *after* the commit.
//!
//! ## Routes
//!
//! | Route | Body | Answer |
//! |---|---|---|
//! | `POST /query` | `{"sql": "...", "nodes": [ids]?, "approx": {...}?}` | `200` forecast rows |
//! | `POST /explain` | `{"sql": "...", "analyze": bool?, "nodes": [ids]?, "approx": {...}?}` | `200` plan |
//! | `POST /insert` | `{"dims": [...], "value": v}` or `{"rows": [...]}` | `202` after commit |
//! | `POST /maintain` | — | `200` re-fit count |
//! | `POST /plan` | `{"sql": "...", "key_dims": n?}` | `200` per-node placement keys |
//! | `GET /sketch` | — | `200` binary mergeable-sketch bundle |
//! | `GET /stats` | — | `200` engine + server counters |
//! | `GET /healthz` | — | `200` (`503` on a lagging follower) |
//! | `GET /slow` | — | `200` slow-query journal (auto-`EXPLAIN` capture) |
//! | `GET /wal/fetch?after=N` | — | `200` binary ship chunk (primary side of replication) |
//! | `POST /promote` | `{"tail_wal_dir": "..."}?` | `200` promotion report (follower only) |
//!
//! ## Distributed tracing
//!
//! Every request runs under a [`fdc_obs::TraceContext`]: adopted from
//! the caller's `traceparent` header when present (malformed headers
//! are ignored and a fresh root is minted — a bad caller cannot break
//! ingress), otherwise minted at ingress with head sampling at
//! [`ServeOptions::trace_sample`]. Spans opened while the context is
//! active carry trace/span ids into the Chrome-trace export, the
//! insert path embeds the context into its WAL record so the
//! follower's apply joins the same trace, and the per-route latency
//! histograms record the trace id of the worst observation per window
//! as an OpenMetrics exemplar. Requests slower than
//! [`ServeOptions::slow_threshold`] are captured — with `EXPLAIN
//! ANALYZE` output for query routes and a WAL/batcher wait breakdown
//! for writes — into the bounded [`slow::SlowLog`] served at `GET
//! /slow`.
//!
//! ## Replication
//!
//! With [`ServeOptions::replica_of`] set the server runs as a
//! **read-only follower**: [`open_follower`] builds the engine from the
//! local log, a fetch loop ships the primary's WAL over `GET
//! /wal/fetch`, writes answer `409` with a redirect-to-the-primary
//! error, and `POST /promote` turns the follower into a writable
//! primary (see [`replica`] for the protocol and the promotion state
//! machine).
//!
//! ## Graceful drain
//!
//! [`Server::shutdown`] stops accepting, answers everything already
//! queued, joins the workers, commits any still-buffered insert rows,
//! runs [`F2db::maintain`], and — when a catalog path is configured —
//! persists the catalog (crash-safely) plus a *pending sidecar* holding
//! the rows of the incomplete next time stamp, so **every acknowledged
//! write survives a restart** ([`restore_pending`] re-applies the
//! sidecar after [`F2db::open_catalog`]). The drain is observable: a
//! `ServeShutdown` journal event records what was drained and flushed.
//!
//! ## Durability
//!
//! With [`ServeOptions::wal_dir`] set, [`open_engine`] attaches a
//! write-ahead log ([`fdc_wal`]) under the engine: an insert's `202` is
//! only sent after its rows are fsynced (group-committed — concurrent
//! requests coalesce into one fsync via the [`Batcher`] *and* one WAL
//! append), so acknowledged writes survive a SIGKILL, not just a
//! graceful drain. `save_catalog` then writes an `F2CK` checkpoint
//! container (catalog + base series + pending rows + WAL position) and
//! truncates the log behind it; on restart [`open_engine`] replays the
//! suffix. The legacy pending sidecar is consulted read-only, exactly
//! once, on the migration boot. `GET /stats` reports the log's
//! position under the `"wal"` key.

pub mod batcher;
pub mod json;
pub mod replica;
pub mod slow;

pub use batcher::{Batcher, DepositOutcome};
pub use replica::{open_follower, replica_marker_path, PromotionReport, Replica};
pub use slow::{SlowEntry, SlowLog};

use fdc_cube::NodeId;
use fdc_f2db::{ApproxQuerySpec, F2db, F2dbError, WalRecord};
use fdc_obs::httpcore::{read_request, write_response, Request, RequestError};
use fdc_obs::{journal, names, trace, Event, TraceContext};
use std::collections::VecDeque;
use std::io::Read as _;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads answering requests.
    pub workers: usize,
    /// Bound on connections queued for a worker; beyond it the accept
    /// thread answers `429`.
    pub queue_depth: usize,
    /// How long the flusher lingers after the first deposited row so
    /// concurrent inserts coalesce into one engine commit.
    pub coalesce_window: Duration,
    /// Per-request deadline: time in the queue counts against it, and an
    /// insert waits at most this long for its flush.
    pub deadline: Duration,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
    /// Socket read timeout while parsing a request.
    pub read_timeout: Duration,
    /// When set, [`Server::shutdown`] persists the catalog here and the
    /// pending rows next to it (see [`pending_sidecar_path`]).
    pub catalog_path: Option<PathBuf>,
    /// When set, [`open_engine`] attaches a write-ahead log in this
    /// directory: every acknowledged insert is durable *before* its
    /// `202`, and a SIGKILL loses nothing. Without it the server falls
    /// back to the graceful-drain-only contract.
    pub wal_dir: Option<PathBuf>,
    /// Whether the write-ahead log fsyncs (group-committed) before
    /// acknowledging. `false` trades the crash guarantee for speed —
    /// useful for benchmarks quantifying exactly that trade.
    pub wal_fsync: bool,
    /// When set, this server is a read-only follower replica of the
    /// primary at this address (`host:port`): [`open_follower`] builds
    /// the engine, a fetch loop ships the primary's WAL into
    /// [`ServeOptions::wal_dir`], and writes answer `409` until `POST
    /// /promote`.
    pub replica_of: Option<String>,
    /// How long the follower's fetch loop sleeps between polls once it
    /// is caught up (it drains without sleeping while behind).
    pub replica_poll: Duration,
    /// On a follower, `GET /healthz` degrades to `503` when replication
    /// lag exceeds this many sequences.
    pub replica_lag_bound: u64,
    /// Head-sampling rate for traces minted at ingress (requests
    /// arriving *with* a `traceparent` header keep the caller's
    /// sampling decision). `1.0` traces everything, `0.0` nothing.
    pub trace_sample: f64,
    /// Requests slower than this are captured into the slow-query log
    /// (`GET /slow`) with auto-`EXPLAIN` / wait-breakdown context.
    /// `Duration::ZERO` captures every request.
    pub slow_threshold: Duration,
    /// Bound on slow-query-log entries kept; the newest win.
    pub slow_log_cap: usize,
    /// When set, this server is one shard of a partitioned deployment
    /// and owns exactly these base nodes: [`open_engine`] applies
    /// [`F2db::with_base_partition`] *before* WAL replay (the replayed
    /// rows advance on the owned count), inserts for foreign bases
    /// answer `421 Misdirected Request`, and queries are limited to
    /// resident nodes. A router fronts several such shards.
    pub partition_bases: Option<Vec<NodeId>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            queue_depth: 64,
            coalesce_window: Duration::from_millis(2),
            deadline: Duration::from_secs(5),
            max_body: 1 << 20,
            read_timeout: Duration::from_secs(2),
            catalog_path: None,
            wal_dir: None,
            wal_fsync: true,
            replica_of: None,
            replica_poll: Duration::from_millis(10),
            replica_lag_bound: 10_000,
            trace_sample: 1.0,
            slow_threshold: Duration::from_millis(250),
            slow_log_cap: 64,
            partition_bases: None,
        }
    }
}

/// What the graceful drain accomplished, returned by
/// [`Server::shutdown`].
#[derive(Debug)]
pub struct ShutdownReport {
    /// The address the server was bound to.
    pub addr: SocketAddr,
    /// Queued requests answered after the listener stopped accepting.
    pub drained_requests: u64,
    /// Buffered insert rows committed by the final flush.
    pub flushed_rows: u64,
    /// Models re-estimated by the shutdown `maintain` pass.
    pub refitted: usize,
    /// Whether a catalog (and pending sidecar) was persisted.
    pub saved_catalog: bool,
    /// Rows of the incomplete next time stamp persisted — in the
    /// checkpoint container when a WAL is attached, in the sidecar
    /// otherwise.
    pub saved_pending_rows: usize,
    /// The WAL position the persisted checkpoint covers; `None` when no
    /// write-ahead log is attached.
    pub wal_checkpoint_seq: Option<u64>,
}

/// What [`open_engine`] recovered on the way to a servable engine.
#[derive(Debug)]
pub struct EngineRecovery {
    /// Whether a persisted catalog was found and opened (otherwise the
    /// caller's freshly configured engine was used).
    pub opened_catalog: bool,
    /// WAL replay report, when [`ServeOptions::wal_dir`] is set.
    pub wal: Option<fdc_f2db::RecoveryReport>,
    /// Rows re-applied from a legacy pending sidecar (migration only —
    /// once the WAL owns the rows the sidecar is never consulted again).
    pub sidecar_rows: usize,
    /// Whether a [`replica::REPLICA_MARKER`] was found in the WAL
    /// directory: the engine opened read-only and every write answers
    /// [`F2dbError::ReadOnly`] until the follower is promoted.
    pub replica_marker: bool,
}

/// Builds the engine a server should front, according to `opts`:
///
/// 1. when [`ServeOptions::catalog_path`] points at an existing file it
///    is opened (either format — a legacy plain catalog or an `F2CK`
///    checkpoint container) in place of the caller's `fresh` engine;
/// 2. when [`ServeOptions::wal_dir`] is set the write-ahead log there is
///    replayed and attached, so every previously acknowledged insert is
///    recovered and every future one is durable before its `202`;
/// 3. a legacy pending sidecar is re-applied **read-only and only while
///    the WAL is still empty** — the one migration boot. After that the
///    log (or the container) owns every acknowledged row, and replaying
///    the sidecar again would duplicate them.
pub fn open_engine(
    fresh: F2db,
    opts: &ServeOptions,
) -> Result<(Arc<F2db>, EngineRecovery), F2dbError> {
    let mut opened_catalog = false;
    let mut db = match &opts.catalog_path {
        Some(path) if path.exists() => {
            opened_catalog = true;
            F2db::open_catalog(fresh.dataset().clone(), path)?
        }
        _ => fresh,
    };
    // Partition before WAL replay: a shard's log only carries owned
    // rows, and replaying them must advance on the owned count.
    if let Some(owned) = &opts.partition_bases {
        db = db.with_base_partition(owned)?;
    }
    let wal = match &opts.wal_dir {
        Some(dir) => {
            let wal_opts = fdc_wal::WalOptions {
                fsync: opts.wal_fsync,
                ..fdc_wal::WalOptions::default()
            };
            let (recovered, report) = db.attach_wal(dir, wal_opts)?;
            db = recovered;
            Some(report)
        }
        None => None,
    };
    // The sidecar predates the WAL: it only carries rows neither the
    // log nor a checkpoint container has seen, which is exactly "the
    // log is empty and the catalog is the legacy format". Re-applying
    // it past that point would insert the rows a second time.
    let wal_is_fresh = wal.as_ref().is_none_or(|r| r.wal.last_seq == 0);
    let sidecar_rows = match &opts.catalog_path {
        Some(path) if wal_is_fresh && !catalog_is_container(path) => restore_pending(&db, path)?,
        _ => 0,
    };
    // A WAL directory still carrying a follower's REPLICA marker must
    // not come up writable: its log is a replicated prefix owned by the
    // promotion protocol, and writing past it here would fork history.
    // The engine serves reads; writes answer a typed ReadOnly error.
    let replica_marker = opts
        .wal_dir
        .as_deref()
        .is_some_and(|d| replica_marker_path(d).exists());
    if replica_marker {
        db.set_read_only(true);
    }
    Ok((
        Arc::new(db),
        EngineRecovery {
            opened_catalog,
            wal,
            sidecar_rows,
            replica_marker,
        },
    ))
}

/// A connection waiting for a worker.
struct Conn {
    stream: TcpStream,
    enqueued: Instant,
}

/// State shared by the accept thread, workers and flusher.
struct Shared {
    db: Arc<F2db>,
    opts: ServeOptions,
    queue: Mutex<VecDeque<Conn>>,
    queue_cv: Condvar,
    stopping: AtomicBool,
    drained: AtomicU64,
    batcher: Batcher,
    /// The slow-request ring behind `GET /slow`.
    slow: SlowLog,
    /// Present when this server fronts a follower replica; routes
    /// consult it for lag, write rejection and promotion.
    replica: Option<Arc<Replica>>,
}

/// The running server: a bound listener plus its thread pool. Stop it
/// with [`Server::shutdown`] — dropping without a shutdown leaks the
/// threads (they park on the queue) but keeps the process safe.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    flusher_handle: Option<JoinHandle<(u64, u64)>>,
}

impl Server {
    /// Binds `127.0.0.1:port` (`0` picks an ephemeral port — read it
    /// back with [`Server::addr`]) and starts the accept thread, the
    /// worker pool and the insert flusher.
    pub fn start(db: Arc<F2db>, port: u16, opts: ServeOptions) -> std::io::Result<Server> {
        Server::start_inner(db, port, opts, None)
    }

    /// [`Server::start`] for a follower replica built by
    /// [`open_follower`]: the same worker pool, plus the replica state
    /// the routes consult (`/healthz` lag, write rejection, `POST
    /// /promote`).
    pub fn start_with_replica(
        db: Arc<F2db>,
        port: u16,
        opts: ServeOptions,
        replica: Arc<Replica>,
    ) -> std::io::Result<Server> {
        Server::start_inner(db, port, opts, Some(replica))
    }

    fn start_inner(
        db: Arc<F2db>,
        port: u16,
        opts: ServeOptions,
        replica: Option<Arc<Replica>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        let addr = listener.local_addr()?;
        let slow = SlowLog::new(opts.slow_threshold, opts.slow_log_cap);
        let shared = Arc::new(Shared {
            db,
            opts,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stopping: AtomicBool::new(false),
            drained: AtomicU64::new(0),
            batcher: Batcher::default(),
            slow,
            replica,
        });
        journal().publish(Event::ServeStart {
            addr: addr.to_string(),
        });

        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let worker_handles = (0..shared.opts.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let flusher_handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                shared
                    .batcher
                    .run_flusher(&shared.db, shared.opts.coalesce_window)
            })
        };
        Ok(Server {
            addr,
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
            flusher_handle: Some(flusher_handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts.
    pub fn db(&self) -> &Arc<F2db> {
        &self.shared.db
    }

    /// The slow-query log backing `GET /slow` — the shell's `\slow`
    /// meta command reads it in-process instead of scraping itself.
    pub fn slow_log(&self) -> &SlowLog {
        &self.shared.slow
    }

    /// Gracefully drains and stops the server: stop accepting → answer
    /// every queued request → join the workers → commit buffered insert
    /// rows → `maintain` → persist catalog + pending sidecar (when
    /// configured) → publish the `ServeShutdown` journal event.
    pub fn shutdown(mut self) -> Result<ShutdownReport, F2dbError> {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept thread with a no-op connection.
        drop(TcpStream::connect(self.addr));
        if let Some(h) = self.accept_handle.take() {
            h.join().expect("accept thread panicked");
        }
        // Workers drain the queue, then observe `stopping` and exit.
        self.shared.queue_cv.notify_all();
        for h in self.worker_handles.drain(..) {
            h.join().expect("worker thread panicked");
        }
        // No depositor is left; whatever is still buffered commits now.
        let flushed_rows = self.shared.batcher.flush_once(&self.shared.db);
        self.shared.batcher.stop();
        if let Some(h) = self.flusher_handle.take() {
            h.join().expect("flusher thread panicked");
        }
        // An unpromoted follower stops its fetch loop and leaves its
        // state exactly as replicated: no maintain, no catalog save —
        // the local log *is* the state, and a restart replays it.
        if let Some(replica) = &self.shared.replica {
            replica.seal();
        }
        if self.shared.db.is_read_only() {
            let drained_requests = self.shared.drained.load(Ordering::SeqCst);
            journal().publish(Event::ServeShutdown {
                addr: self.addr.to_string(),
                drained_requests,
                flushed_rows,
            });
            return Ok(ShutdownReport {
                addr: self.addr,
                drained_requests,
                flushed_rows,
                refitted: 0,
                saved_catalog: false,
                saved_pending_rows: 0,
                wal_checkpoint_seq: None,
            });
        }
        let refitted = self.shared.db.maintain()?;
        let mut saved_catalog = false;
        let mut saved_pending_rows = 0;
        if let Some(path) = self.shared.opts.catalog_path.clone() {
            self.shared.db.save_catalog(&path)?;
            let pending = self.shared.db.pending_rows();
            saved_pending_rows = pending.len();
            if self.shared.db.wal().is_some() {
                // The checkpoint container already carries the pending
                // rows; a sidecar would only invite a double apply. An
                // old one left over from the pre-WAL era is folded into
                // this save, so it can go.
                std::fs::remove_file(pending_sidecar_path(&path)).ok();
            } else {
                write_pending_sidecar(&pending_sidecar_path(&path), &pending)
                    .map_err(|e| F2dbError::Storage(e.to_string()))?;
            }
            saved_catalog = true;
        }
        let wal_checkpoint_seq = self.shared.db.wal_stats().map(|s| s.checkpoint_seq);
        let drained_requests = self.shared.drained.load(Ordering::SeqCst);
        journal().publish(Event::ServeShutdown {
            addr: self.addr.to_string(),
            drained_requests,
            flushed_rows,
        });
        Ok(ShutdownReport {
            addr: self.addr,
            drained_requests,
            flushed_rows,
            refitted,
            saved_catalog,
            saved_pending_rows,
            wal_checkpoint_seq,
        })
    }
}

// ---------------------------------------------------------------------------
// Pending-rows sidecar
// ---------------------------------------------------------------------------

/// Where the pending rows of an incomplete time stamp are persisted,
/// next to the catalog: `<catalog>.pending`.
pub fn pending_sidecar_path(catalog: &Path) -> PathBuf {
    let mut p = catalog.as_os_str().to_owned();
    p.push(".pending");
    PathBuf::from(p)
}

/// Writes pending rows to the sidecar (atomically *and* durably: temp
/// sibling, fsync, rename, parent-directory fsync). Values are stored
/// as f64 bit patterns so the restore is exact.
pub fn write_pending_sidecar(path: &Path, rows: &[(NodeId, f64)]) -> std::io::Result<()> {
    let mut text = String::from("fdc-pending v1\n");
    for &(node, value) in rows {
        text.push_str(&format!("{node} {:016x}\n", value.to_bits()));
    }
    fdc_wal::atomic_write_durable(path, text.as_bytes())
}

/// Whether the catalog file at `path` is an `F2CK` checkpoint container
/// (as opposed to a legacy plain catalog, or missing/unreadable).
fn catalog_is_container(path: &Path) -> bool {
    let mut magic = [0u8; 4];
    std::fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .map(|()| fdc_f2db::durability::is_checkpoint_container(&magic))
        .unwrap_or(false)
}

/// Reads a pending sidecar back. A missing file is an empty pending set
/// (a pre-sidecar shutdown or a clean one).
pub fn read_pending_sidecar(path: &Path) -> std::io::Result<Vec<(NodeId, f64)>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let mut lines = text.lines();
    if lines.next() != Some("fdc-pending v1") {
        return Err(bad("bad pending sidecar header"));
    }
    let mut rows = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (node, bits) = line
            .split_once(' ')
            .ok_or_else(|| bad("malformed pending sidecar line"))?;
        let node: NodeId = node
            .parse()
            .map_err(|_| bad("bad node id in pending sidecar"))?;
        let bits =
            u64::from_str_radix(bits, 16).map_err(|_| bad("bad value bits in pending sidecar"))?;
        rows.push((node, f64::from_bits(bits)));
    }
    Ok(rows)
}

/// Re-applies the pending sidecar written by a graceful shutdown to a
/// freshly re-opened database: the counterpart of [`F2db::open_catalog`]
/// for the rows of the incomplete next time stamp. Returns how many rows
/// were restored.
pub fn restore_pending(db: &F2db, catalog_path: &Path) -> Result<usize, F2dbError> {
    let rows = read_pending_sidecar(&pending_sidecar_path(catalog_path))
        .map_err(|e| F2dbError::Storage(e.to_string()))?;
    if !rows.is_empty() {
        db.insert_batch(&rows)?;
    }
    Ok(rows.len())
}

// ---------------------------------------------------------------------------
// Accept / worker loops
// ---------------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            // The shutdown wake-up connection (or a late client); the
            // listener closes when this loop returns.
            return;
        }
        let mut queue = shared.queue.lock().unwrap();
        if queue.len() >= shared.opts.queue_depth {
            drop(queue);
            fdc_obs::counter_with(names::SERVE_REJECTED, &[("reason", "queue_full")]).incr();
            fdc_obs::counter_with(
                names::SERVE_REQUESTS,
                &[("route", "admission"), ("status", "429")],
            )
            .incr();
            stream
                .set_write_timeout(Some(Duration::from_millis(500)))
                .ok();
            write_response(
                &mut stream,
                "429 Too Many Requests",
                "application/json",
                "{\"error\":\"connection queue full\"}",
                &[("Retry-After", "1")],
            )
            .ok();
            close_unread(stream, Duration::from_millis(250));
            continue;
        }
        queue.push_back(Conn {
            stream,
            enqueued: Instant::now(),
        });
        fdc_obs::gauge(names::SERVE_QUEUE_DEPTH).set(queue.len() as i64);
        drop(queue);
        shared.queue_cv.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(conn) = queue.pop_front() {
                    fdc_obs::gauge(names::SERVE_QUEUE_DEPTH).set(queue.len() as i64);
                    break conn;
                }
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                let (next, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap();
                queue = next;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            shared.drained.fetch_add(1, Ordering::SeqCst);
        }
        handle_connection(shared, conn);
    }
}

fn handle_connection(shared: &Shared, conn: Conn) {
    let Conn {
        mut stream,
        enqueued,
    } = conn;
    let queued_for = enqueued.elapsed();
    if queued_for > shared.opts.deadline {
        fdc_obs::counter_with(names::SERVE_REJECTED, &[("reason", "deadline")]).incr();
        respond(
            &mut stream,
            "admission",
            503,
            err_body("deadline exceeded while queued"),
            &[],
        );
        close_unread(stream, Duration::from_millis(500));
        return;
    }
    let request = match read_request(&mut stream, shared.opts.max_body, shared.opts.read_timeout) {
        Ok(r) => r,
        Err(RequestError::BodyTooLarge(_)) => {
            respond(
                &mut stream,
                "malformed",
                413,
                err_body("request body too large"),
                &[],
            );
            close_unread(stream, Duration::from_millis(500));
            return;
        }
        Err(e) => {
            respond(&mut stream, "malformed", 400, err_body(&e.to_string()), &[]);
            close_unread(stream, Duration::from_millis(500));
            return;
        }
    };
    let started = Instant::now();
    // Request ingress is where a trace is born (or adopted): a valid
    // `traceparent` header continues the caller's trace with the
    // caller's sampling decision; anything else mints a fresh root,
    // head-sampled at `ServeOptions::trace_sample`. The guard scopes
    // the context to this request on this worker thread.
    let ctx = request
        .trace_context()
        .unwrap_or_else(|| TraceContext::root(trace::should_sample(shared.opts.trace_sample)));
    let _ctx_guard = trace::activate(ctx);
    // The one binary route: ship chunks go out via
    // `write_response_bytes`, outside the string-bodied route table.
    if request.method == "GET" && request.path_query().0 == "/wal/fetch" {
        {
            let _span = fdc_obs::span!("serve.request");
            handle_wal_fetch(shared, &mut stream, request.path_query().1);
        }
        record_latency("wal_fetch", started.elapsed(), ctx);
        return;
    }
    // The other binary route: the mergeable-sketch bundle a router
    // folds into a fleet-wide view.
    if request.method == "GET" && request.path_query().0 == "/sketch" {
        {
            let _span = fdc_obs::span!("serve.request");
            handle_sketch(shared, &mut stream);
        }
        record_latency("sketch", started.elapsed(), ctx);
        return;
    }
    let (route, status, body, extra) = {
        let _span = fdc_obs::span!("serve.request");
        let remaining = shared.opts.deadline.saturating_sub(queued_for);
        route_request(shared, &request, remaining)
    };
    let extra_refs: Vec<(&str, &str)> = extra.iter().map(|(n, v)| (*n, v.as_str())).collect();
    respond(&mut stream, route, status, body, &extra_refs);
    let elapsed = started.elapsed();
    record_latency(route, elapsed, ctx);
    maybe_capture_slow(shared, &request, route, status, elapsed, ctx);
}

/// Records a request's latency into the per-route histogram; sampled
/// requests attach their trace id, so `/metrics` can emit the family's
/// worst-of-window observation as an OpenMetrics exemplar.
fn record_latency(route: &'static str, elapsed: Duration, ctx: TraceContext) {
    let h = fdc_obs::histogram_with(names::SERVE_REQUEST_NS, &[("route", route)]);
    if ctx.sampled {
        h.record_duration_with_trace(elapsed, ctx.trace_id);
    } else {
        h.record_duration(elapsed);
    }
}

/// After the response is on the wire: when the request ran past the
/// slow threshold, capture the investigation context — re-running
/// `EXPLAIN ANALYZE` for statement routes (off the client's critical
/// path, on the worker that just went slow), or snapshotting the
/// WAL/batcher wait state for writes — into the bounded slow log.
fn maybe_capture_slow(
    shared: &Shared,
    request: &Request,
    route: &'static str,
    status: u16,
    elapsed: Duration,
    ctx: TraceContext,
) {
    if elapsed < shared.slow.threshold() {
        return;
    }
    let sql = matches!(route, "query" | "explain")
        .then(|| sql_of(&request.body).ok())
        .flatten()
        .map(|(sql, _)| sql);
    let explain = sql
        .as_deref()
        .and_then(|s| shared.db.explain_analyze(s).ok())
        .map(|report| report.to_masked_string());
    let wait = (route == "insert").then(|| {
        let queue_len = shared.queue.lock().unwrap().len();
        let wal = match shared.db.wal_stats() {
            Some(w) => format!(
                "{{\"last_seq\":{},\"durable_seq\":{}}}",
                w.last_seq, w.durable_seq
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"buffered_rows\":{},\"queue_depth\":{queue_len},\"wal\":{wal}}}",
            shared.batcher.buffered()
        )
    });
    shared.slow.push(SlowEntry {
        unix_ms: slow::unix_ms(),
        route,
        status,
        latency_ns: elapsed.as_nanos() as u64,
        trace_id: ctx.sampled.then_some(ctx.trace_id),
        sql,
        explain,
        wait,
    });
    fdc_obs::counter(names::SERVE_SLOW_CAPTURED).incr();
}

/// Writes the response and records the route/status counter.
fn respond(
    stream: &mut TcpStream,
    route: &'static str,
    status: u16,
    body: String,
    extra: &[(&str, &str)],
) {
    let status_line = match status {
        200 => "200 OK",
        202 => "202 Accepted",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        409 => "409 Conflict",
        410 => "410 Gone",
        421 => "421 Misdirected Request",
        413 => "413 Payload Too Large",
        500 => "500 Internal Server Error",
        503 => "503 Service Unavailable",
        _ => "500 Internal Server Error",
    };
    fdc_obs::counter_with(
        names::SERVE_REQUESTS,
        &[("route", route), ("status", &status.to_string())],
    )
    .incr();
    write_response(stream, status_line, "application/json", &body, extra).ok();
}

fn err_body(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", json::escape(msg))
}

/// Closes a connection whose request was *not* fully read, without
/// destroying the response: closing with unread bytes in the receive
/// buffer sends an RST that discards the client's buffered response, so
/// after writing the response we half-close and drain whatever the
/// client sent (bounded in bytes and time) before dropping the socket.
fn close_unread(mut stream: TcpStream, timeout: Duration) {
    stream.shutdown(std::net::Shutdown::Write).ok();
    stream.set_read_timeout(Some(timeout)).ok();
    let mut buf = [0u8; 8192];
    let mut total = 0usize;
    while let Ok(n) = stream.read(&mut buf) {
        if n == 0 {
            break;
        }
        total += n;
        if total > (4 << 20) {
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Routing and handlers
// ---------------------------------------------------------------------------

type Routed = (&'static str, u16, String, Vec<(&'static str, String)>);

fn route_request(shared: &Shared, request: &Request, remaining: Duration) -> Routed {
    let (path, _query) = request.path_query();
    let no_extra = Vec::new;
    match (request.method.as_str(), path) {
        ("POST", "/query") => {
            let (status, body) = handle_query(shared, &request.body);
            ("query", status, body, no_extra())
        }
        ("POST", "/explain") => {
            let (status, body) = handle_explain(shared, &request.body);
            ("explain", status, body, no_extra())
        }
        ("POST", "/insert") => match follower_write_rejection(shared, "insert") {
            Some(routed) => routed,
            None => handle_insert(shared, &request.body, remaining),
        },
        ("POST", "/maintain") => match follower_write_rejection(shared, "maintain") {
            Some(routed) => routed,
            None => {
                let (status, body) = match shared.db.maintain() {
                    Ok(refitted) => (200, format!("{{\"refitted\":{refitted}}}")),
                    Err(e) => (500, err_body(&e.to_string())),
                };
                ("maintain", status, body, no_extra())
            }
        },
        ("POST", "/promote") => handle_promote(shared, &request.body),
        ("POST", "/plan") => {
            let (status, body) = handle_plan(shared, &request.body);
            ("plan", status, body, no_extra())
        }
        ("GET", "/stats") => ("stats", 200, stats_body(shared), no_extra()),
        ("GET", "/healthz") => handle_healthz(shared),
        ("GET", "/slow") => ("slow", 200, shared.slow.to_json(), no_extra()),
        (_, "/query" | "/explain" | "/insert" | "/maintain" | "/promote" | "/plan") => (
            "method",
            405,
            err_body("use POST"),
            vec![("Allow", "POST".to_string())],
        ),
        (_, "/stats" | "/healthz" | "/slow" | "/wal/fetch" | "/sketch") => (
            "method",
            405,
            err_body("use GET"),
            vec![("Allow", "GET".to_string())],
        ),
        _ => ("unknown", 404, err_body("no such route"), no_extra()),
    }
}

/// HTTP status for an engine error: wrong-shard errors are routing
/// mistakes (`421 Misdirected Request` — a router must not retry them
/// against this shard), everything else the client's fault.
fn f2db_status(e: &F2dbError) -> u16 {
    match e {
        F2dbError::WrongShard(_) => 421,
        _ => 400,
    }
}

/// Parses the optional `"nodes"` filter of `/query` and `/explain`
/// bodies: the scatter half of a routed query, restricting execution
/// to the node ids this shard was asked for.
fn nodes_of(doc: &json::Value) -> Result<Option<Vec<NodeId>>, String> {
    let Some(v) = doc.get("nodes") else {
        return Ok(None);
    };
    let arr = v
        .as_array()
        .ok_or("\"nodes\" must be an array of node ids")?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let n = item
            .as_f64()
            .filter(|f| f.fract() == 0.0 && *f >= 0.0 && *f <= (1u64 << 53) as f64)
            .ok_or("\"nodes\" must be an array of non-negative integers")?;
        out.push(n as NodeId);
    }
    Ok(Some(out))
}

/// Parses the optional `"approx"` object of `/query` and `/explain`
/// bodies: per-request approximation controls
/// (`{"budget": cells?, "target_ci": rel?, "confidence": level?}`).
/// Absent → the exact path, byte-identical to a plain query.
fn approx_of(doc: &json::Value) -> Result<Option<ApproxQuerySpec>, String> {
    let Some(v) = doc.get("approx") else {
        return Ok(None);
    };
    if !matches!(v, json::Value::Obj(_)) {
        return Err("\"approx\" must be an object".into());
    }
    let mut spec = ApproxQuerySpec::default();
    if let Some(b) = v.get("budget") {
        let n = b
            .as_f64()
            .filter(|f| f.fract() == 0.0 && *f >= 1.0 && *f <= (1u64 << 32) as f64)
            .ok_or("\"approx.budget\" must be a positive integer")?;
        spec.budget = Some(n as usize);
    }
    if let Some(t) = v.get("target_ci") {
        let f = t
            .as_f64()
            .filter(|f| f.is_finite() && *f > 0.0)
            .ok_or("\"approx.target_ci\" must be a positive number")?;
        spec.target_ci = Some(f);
    }
    if let Some(c) = v.get("confidence") {
        let f = c
            .as_f64()
            .filter(|f| f.is_finite() && *f > 0.0 && *f < 1.0)
            .ok_or("\"approx.confidence\" must be in (0, 1)")?;
        spec.confidence = Some(f);
    }
    Ok(Some(spec))
}

/// Parses a `{"sql": "..."}` body.
fn sql_of(body: &[u8]) -> Result<(String, json::Value), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text)?;
    let sql = doc
        .get("sql")
        .and_then(json::Value::as_str)
        .ok_or_else(|| "body must be a JSON object with a \"sql\" string".to_string())?
        .to_string();
    Ok((sql, doc))
}

fn handle_query(shared: &Shared, body: &[u8]) -> (u16, String) {
    let (sql, doc) = match sql_of(body) {
        Ok(v) => v,
        Err(m) => return (400, err_body(&m)),
    };
    let nodes = match nodes_of(&doc) {
        Ok(n) => n,
        Err(m) => return (400, err_body(&m)),
    };
    let approx = match approx_of(&doc) {
        Ok(a) => a,
        Err(m) => return (400, err_body(&m)),
    };
    match shared
        .db
        .query_filtered_with(&sql, nodes.as_deref(), approx.as_ref())
    {
        Ok(result) => {
            let rows: Vec<String> = result
                .rows
                .iter()
                .map(|r| {
                    let values: Vec<String> = r
                        .values
                        .iter()
                        .map(|(t, v)| format!("[{t},{}]", json::num(*v)))
                        .collect();
                    let approx = match &r.approx {
                        None => String::new(),
                        Some(a) => {
                            let half: Vec<String> =
                                a.ci_half.iter().map(|h| json::num(*h)).collect();
                            format!(
                                ",\"approx\":{{\"sampled\":{},\"population\":{},\"confidence\":{},\"ci_half\":[{}]}}",
                                a.sampled,
                                a.population,
                                json::num(a.confidence),
                                half.join(",")
                            )
                        }
                    };
                    format!(
                        "{{\"node\":{},\"label\":\"{}\",\"values\":[{}]{approx}}}",
                        r.node,
                        json::escape(&r.label),
                        values.join(",")
                    )
                })
                .collect();
            (200, format!("{{\"rows\":[{}]}}", rows.join(",")))
        }
        Err(e) => (f2db_status(&e), err_body(&e.to_string())),
    }
}

fn handle_explain(shared: &Shared, body: &[u8]) -> (u16, String) {
    let (sql, doc) = match sql_of(body) {
        Ok(v) => v,
        Err(m) => return (400, err_body(&m)),
    };
    let analyze = doc
        .get("analyze")
        .and_then(json::Value::as_bool)
        .unwrap_or(false);
    let nodes = match nodes_of(&doc) {
        Ok(n) => n,
        Err(m) => return (400, err_body(&m)),
    };
    let approx = match approx_of(&doc) {
        Ok(a) => a,
        Err(m) => return (400, err_body(&m)),
    };
    if approx.is_some() && analyze {
        return (
            400,
            err_body("\"approx\" and \"analyze\" cannot be combined"),
        );
    }
    let report = if analyze {
        shared.db.explain_analyze_filtered(&sql, nodes.as_deref())
    } else if let Some(spec) = &approx {
        shared.db.explain_with(&sql, Some(spec)).and_then(|mut r| {
            if let Some(f) = &nodes {
                let keep: std::collections::HashSet<NodeId> = f.iter().copied().collect();
                r.rows.retain(|row| keep.contains(&row.node));
                if r.rows.is_empty() {
                    return Err(F2dbError::Semantic(
                        "node filter excludes every node the query resolves to".into(),
                    ));
                }
            }
            Ok(r)
        })
    } else {
        shared.db.explain_filtered(&sql, nodes.as_deref())
    };
    match report {
        Ok(report) => {
            let rows: Vec<String> = report
                .rows
                .iter()
                .map(|r| {
                    let sources: Vec<String> = r
                        .sources
                        .iter()
                        .map(|s| {
                            format!(
                                "{{\"label\":\"{}\",\"invalid\":{}}}",
                                json::escape(&s.label),
                                s.invalid
                            )
                        })
                        .collect();
                    let analysis = match &r.analysis {
                        None => String::new(),
                        Some(a) => {
                            let values: Vec<String> =
                                a.values.iter().map(|v| json::num(*v)).collect();
                            format!(
                                ",\"elapsed_ns\":{},\"values\":[{}]",
                                a.elapsed.as_nanos(),
                                values.join(",")
                            )
                        }
                    };
                    let sampling = match &r.approx {
                        None => String::new(),
                        Some(ap) => {
                            let budget = ap
                                .budget
                                .map_or(String::from("null"), |b| b.to_string());
                            let target =
                                ap.target_ci.map_or(String::from("null"), json::num);
                            format!(
                                ",\"approx\":{{\"population\":{},\"sampled\":{},\"strata\":{},\"budget\":{budget},\"target_ci\":{target}}}",
                                ap.population, ap.sampled, ap.strata
                            )
                        }
                    };
                    format!(
                        "{{\"node\":{},\"label\":\"{}\",\"scheme\":\"{}\",\"weight\":{},\"sources\":[{}]{analysis}{sampling}}}",
                        r.node,
                        json::escape(&r.label),
                        r.scheme_kind,
                        json::num(r.weight),
                        sources.join(",")
                    )
                })
                .collect();
            (
                200,
                format!(
                    "{{\"horizon\":{},\"analyzed\":{},\"rows\":[{}]}}",
                    report.horizon,
                    report.total_elapsed.is_some(),
                    rows.join(",")
                ),
            )
        }
        Err(e) => (f2db_status(&e), err_body(&e.to_string())),
    }
}

fn handle_insert(shared: &Shared, body: &[u8], remaining: Duration) -> Routed {
    let no_extra = Vec::new;
    let parsed = (|| -> Result<Vec<(NodeId, f64)>, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let doc = json::parse(text)?;
        let row_of = |v: &json::Value| -> Result<(NodeId, f64), String> {
            let dims = v
                .get("dims")
                .and_then(json::Value::as_array)
                .ok_or("row needs a \"dims\" array")?;
            let dims: Vec<String> = dims
                .iter()
                .map(|d| d.as_str().map(str::to_string).ok_or("dims must be strings"))
                .collect::<Result<_, _>>()?;
            let value = v
                .get("value")
                .and_then(json::Value::as_f64)
                .ok_or("row needs a numeric \"value\"")?;
            let node = shared.db.base_node_for(&dims).map_err(|e| e.to_string())?;
            Ok((node, value))
        };
        match doc.get("rows").and_then(json::Value::as_array) {
            Some(rows) => {
                if rows.is_empty() {
                    return Err("\"rows\" must not be empty".into());
                }
                rows.iter().map(row_of).collect()
            }
            None => Ok(vec![row_of(&doc)?]),
        }
    })();
    let rows = match parsed {
        Ok(rows) => rows,
        Err(m) => return ("insert", 400, err_body(&m), no_extra()),
    };
    // A misrouted row is rejected *before* the batcher: mixing it into
    // the coalesced commit would fail everyone's flush, and the router
    // needs the typed 421 to fix its placement rather than retry here.
    if let Some(&(node, _)) = rows.iter().find(|(n, _)| !shared.db.owns_base(*n)) {
        return (
            "insert",
            421,
            err_body(&format!(
                "base node {node} is owned by another shard of this partitioned deployment"
            )),
            no_extra(),
        );
    }
    let accepted = rows.len();
    match shared.batcher.deposit_and_wait(&rows, remaining) {
        DepositOutcome::Committed => (
            "insert",
            202,
            format!("{{\"accepted\":{accepted}}}"),
            no_extra(),
        ),
        DepositOutcome::Failed(msg) => ("insert", 500, err_body(&msg), no_extra()),
        DepositOutcome::TimedOut => {
            fdc_obs::counter_with(names::SERVE_REJECTED, &[("reason", "deadline")]).incr();
            (
                "insert",
                503,
                err_body("insert flush deadline exceeded"),
                vec![("Retry-After", "1".to_string())],
            )
        }
    }
}

/// On an unpromoted follower, every write route answers `409` with an
/// explicit redirect-to-the-primary error instead of reaching the
/// engine's read-only guard through the batcher. `None` means the
/// write may proceed (not a replica, or already promoted).
fn follower_write_rejection(shared: &Shared, route: &'static str) -> Option<Routed> {
    let replica = shared.replica.as_ref()?;
    if replica.is_promoted() {
        return None;
    }
    Some((
        route,
        409,
        err_body(&format!(
            "read-only follower replica of {}; write to the primary or POST /promote first",
            replica.primary()
        )),
        Vec::new(),
    ))
}

/// `POST /promote` — runs the follower's promotion state machine. The
/// optional JSON body names the dead primary's WAL directory for the
/// tail replay: `{"tail_wal_dir": "/path/to/primary/wal"}`.
fn handle_promote(shared: &Shared, body: &[u8]) -> Routed {
    let no_extra = Vec::new;
    let Some(replica) = shared.replica.as_ref() else {
        return (
            "promote",
            400,
            err_body("this server is not a replica"),
            no_extra(),
        );
    };
    let tail = if body.is_empty() {
        None
    } else {
        let parsed = std::str::from_utf8(body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(json::parse);
        match parsed {
            Ok(doc) => doc
                .get("tail_wal_dir")
                .and_then(json::Value::as_str)
                .map(PathBuf::from),
            Err(m) => return ("promote", 400, err_body(&m), no_extra()),
        }
    };
    match replica.promote(tail.as_deref()) {
        Ok(report) => (
            "promote",
            200,
            format!(
                "{{\"promoted\":true,\"applied_seq\":{},\"tail_records\":{},\
                 \"last_seq\":{},\"promotion_ns\":{}}}",
                report.applied_seq, report.tail_records, report.last_seq, report.promotion_ns
            ),
            no_extra(),
        ),
        Err(e) => ("promote", 409, err_body(&e.to_string()), no_extra()),
    }
}

/// `POST /plan` — the placement plan of a query: for every node the
/// query resolves to, the consistent-hash placement keys of its
/// derivation closure under `key_dims` leading dimensions. A router
/// calls this once per distinct query, then scatters the node ids to
/// the shards those keys place; a node whose keys straddle shards is a
/// *split node* the partition cannot serve.
fn handle_plan(shared: &Shared, body: &[u8]) -> (u16, String) {
    let (sql, doc) = match sql_of(body) {
        Ok(v) => v,
        Err(m) => return (400, err_body(&m)),
    };
    let key_dims = match doc.get("key_dims") {
        None => 0usize,
        Some(v) => match v.as_f64().filter(|f| f.fract() == 0.0 && *f >= 0.0) {
            Some(f) => f as usize,
            None => return (400, err_body("\"key_dims\" must be a non-negative integer")),
        },
    };
    let sites = match shared.db.query_derivation(&sql) {
        Ok(s) => s,
        Err(e) => return (f2db_status(&e), err_body(&e.to_string())),
    };
    let mut rendered = Vec::with_capacity(sites.len());
    for site in &sites {
        let mut keys: Vec<String> = Vec::new();
        for &b in &site.closure_base {
            match shared.db.partition_key(b, key_dims) {
                Ok(k) => {
                    if !keys.contains(&k) {
                        keys.push(k);
                    }
                }
                Err(e) => return (500, err_body(&e.to_string())),
            }
        }
        keys.sort_unstable();
        let keys: Vec<String> = keys
            .iter()
            .map(|k| format!("\"{}\"", json::escape(k)))
            .collect();
        rendered.push(format!(
            "{{\"node\":{},\"label\":\"{}\",\"keys\":[{}]}}",
            site.node,
            json::escape(&site.label),
            keys.join(",")
        ));
    }
    (
        200,
        format!(
            "{{\"key_dims\":{key_dims},\"sites\":[{}]}}",
            rendered.join(",")
        ),
    )
}

/// `GET /sketch` — this process's mergeable observability state as one
/// binary [`SketchBundle`]: the drift monitor's per-key accuracy
/// partials (restricted to resident nodes, so a fleet-wide fold is a
/// disjoint union) and the t-digest behind every per-route latency
/// histogram. The router folds one bundle per shard into `/stats` and
/// `/metrics` views no single process could compute from quantiles.
fn handle_sketch(shared: &Shared, stream: &mut TcpStream) {
    let accuracy = match shared.db.drift_monitor() {
        Some(acc) => acc
            .summaries()
            .into_iter()
            .filter(|s| shared.db.is_resident(s.key as NodeId))
            .collect(),
        None => Vec::new(),
    };
    let prefix = format!("{}{{", names::SERVE_REQUEST_NS);
    let snap = fdc_obs::snapshot();
    let mut digests = Vec::new();
    for (key, _) in &snap.histograms {
        if key.starts_with(&prefix) {
            // The registry interns labeled series under their full key,
            // so the lookup lands on the live histogram, not a new one.
            digests.push((
                key.clone(),
                fdc_obs::registry().histogram(key).merged_digest(),
            ));
        }
    }
    let bundle = fdc_obs::SketchBundle { accuracy, digests };
    fdc_obs::counter_with(
        names::SERVE_REQUESTS,
        &[("route", "sketch"), ("status", "200")],
    )
    .incr();
    fdc_obs::httpcore::write_response_bytes(
        stream,
        "200 OK",
        "application/octet-stream",
        &bundle.encode(),
        &[],
    )
    .ok();
}

/// `GET /healthz` — degrades to `503` on a follower whose replication
/// lag exceeds [`ServeOptions::replica_lag_bound`], so a load balancer
/// stops routing reads at a replica serving stale forecasts.
fn handle_healthz(shared: &Shared) -> Routed {
    let no_extra = Vec::new;
    match shared.replica.as_ref().filter(|r| !r.is_promoted()) {
        Some(replica) => {
            let lag = replica.lag();
            let (status, state) = if lag > shared.opts.replica_lag_bound {
                (503, "degraded")
            } else {
                (200, "ok")
            };
            (
                "healthz",
                status,
                format!("{{\"status\":\"{state}\",\"replication_lag_seq\":{lag}}}"),
                no_extra(),
            )
        }
        None => ("healthz", 200, "{\"status\":\"ok\"}".into(), no_extra()),
    }
}

/// Largest chunk `GET /wal/fetch` will build, whatever the follower
/// asks for.
const SHIP_MAX_BYTES_CAP: usize = 4 << 20;

/// `GET /wal/fetch?after=N&max_bytes=M` — the primary side of log
/// shipping. Answers a binary [`fdc_wal::ShipChunk`] of durable frames
/// past `after`; a fetch below the checkpoint watermark is `410 Gone`
/// (the frames were truncated — re-bootstrap the follower).
fn handle_wal_fetch(shared: &Shared, stream: &mut TcpStream, query: &str) {
    let Some(wal) = shared.db.wal() else {
        respond(
            stream,
            "wal_fetch",
            404,
            err_body("no write-ahead log attached"),
            &[],
        );
        return;
    };
    let (after, max_bytes) = match (query_u64(query, "after"), query_u64(query, "max_bytes")) {
        (Ok(after), Ok(max)) => (
            after.unwrap_or(0),
            (max.unwrap_or(256 << 10) as usize).clamp(1, SHIP_MAX_BYTES_CAP),
        ),
        (Err(m), _) | (_, Err(m)) => {
            respond(stream, "wal_fetch", 400, err_body(&m), &[]);
            return;
        }
    };
    match wal.ship_chunk(after, max_bytes) {
        Ok(chunk) => {
            // A traced frame carries the originating insert's context;
            // adopting the first one puts this ship span in the *same
            // trace* as the insert's serve/WAL-commit spans, so the
            // merged timeline shows the write leaving the primary.
            let _ship_ctx = chunk
                .frames
                .iter()
                .find_map(|(_, payload)| WalRecord::peek_trace(payload))
                .map(|(trace_id, span_id)| {
                    trace::activate(TraceContext {
                        trace_id,
                        span_id,
                        sampled: true,
                    })
                });
            let _ship_span = fdc_obs::span!("serve.wal_ship");
            fdc_obs::gauge(names::WAL_DURABLE_SEQ).set(chunk.durable_seq as i64);
            let body = fdc_wal::encode_chunk(&chunk);
            fdc_obs::counter_with(
                names::SERVE_REQUESTS,
                &[("route", "wal_fetch"), ("status", "200")],
            )
            .incr();
            fdc_obs::httpcore::write_response_bytes(
                stream,
                "200 OK",
                "application/octet-stream",
                &body,
                &[],
            )
            .ok();
        }
        Err(e @ fdc_wal::ShipError::WatermarkGap { .. }) => {
            respond(stream, "wal_fetch", 410, err_body(&e.to_string()), &[]);
        }
        Err(e) => respond(stream, "wal_fetch", 500, err_body(&e.to_string()), &[]),
    }
}

/// Parses an optional `name=<u64>` pair out of a query string.
fn query_u64(query: &str, name: &str) -> Result<Option<u64>, String> {
    for pair in query.split('&') {
        let Some((k, v)) = pair.split_once('=') else {
            continue;
        };
        if k == name {
            return v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("query parameter {name:?} must be an unsigned integer"));
        }
    }
    Ok(None)
}

/// Per-route request-latency quantiles from the digest-backed
/// `serve.request.ns{route=...}` histograms, as a JSON object keyed by
/// route. Empty object until the first request is recorded.
fn latency_json() -> String {
    let snap = fdc_obs::snapshot();
    let prefix = format!("{}{{route=\"", names::SERVE_REQUEST_NS);
    let mut out = String::from("{");
    for (key, h) in &snap.histograms {
        let Some(rest) = key.strip_prefix(&prefix) else {
            continue;
        };
        let Some(route) = rest.strip_suffix("\"}") else {
            continue;
        };
        if out.len() > 1 {
            out.push(',');
        }
        // The exemplar ties the route's worst recent observation to a
        // trace id — the "what was that p999 spike" jump-off point.
        let exemplar = match h.exemplar {
            Some(ex) => format!(
                "{{\"trace_id\":\"{:032x}\",\"value\":{}}}",
                ex.trace_id, ex.value
            ),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "\"{route}\":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{},\
             \"exemplar\":{exemplar}}}",
            h.count, h.p50, h.p95, h.p99, h.p999
        ));
    }
    out.push('}');
    out
}

/// Drift-monitor summary: totals plus per-key rows keyed by the
/// dimension-value coordinate (not the raw catalog node id, which is
/// meaningless without a graph dump). Rows are capped at 50; the
/// `"more"` member counts what was cut, so the footer renders as
/// `… (N more)`. `null` when drift monitoring is disabled.
fn drift_json(shared: &Shared) -> String {
    const MAX_ROWS: usize = 50;
    match shared.db.drift_monitor() {
        Some(acc) => {
            let summaries = acc.summaries();
            let drifting = summaries.iter().filter(|s| s.drifting).count();
            let ds = shared.db.dataset();
            let g = ds.graph();
            let keys: Vec<String> = summaries
                .iter()
                .take(MAX_ROWS)
                .map(|s| {
                    let label = if (s.key as usize) < ds.node_count() {
                        g.coord(s.key as usize).display(g.schema())
                    } else {
                        format!("node {}", s.key)
                    };
                    format!(
                        "{{\"cell\":\"{}\",\"n\":{},\"mae\":{},\"smape\":{},\"drifting\":{}}}",
                        json::escape(&label),
                        s.total(),
                        json::num(s.err.abs_mean()),
                        json::num(s.smape.mean()),
                        s.drifting
                    )
                })
                .collect();
            format!(
                "{{\"tracked\":{},\"drifting\":{},\"keys\":[{}],\"more\":{}}}",
                summaries.len(),
                drifting,
                keys.join(","),
                summaries.len().saturating_sub(MAX_ROWS)
            )
        }
        None => "null".to_string(),
    }
}

fn stats_body(shared: &Shared) -> String {
    let stats = shared.db.stats();
    let queue_len = shared.queue.lock().unwrap().len();
    let wal = match shared.db.wal_stats() {
        Some(w) => format!(
            "{{\"last_seq\":{},\"durable_seq\":{},\"checkpoint_seq\":{},\"segments\":{},\
             \"appends\":{},\"fsyncs\":{}}}",
            w.last_seq, w.durable_seq, w.checkpoint_seq, w.segments, w.appends, w.fsyncs,
        ),
        None => "null".to_string(),
    };
    let replication = match &shared.replica {
        Some(r) => {
            let last_error = match r.last_error() {
                Some(e) => format!("\"{}\"", json::escape(&e)),
                None => "null".to_string(),
            };
            format!(
                "{{\"role\":\"{}\",\"primary\":\"{}\",\"applied_seq\":{},\
                 \"primary_durable_seq\":{},\"lag_seq\":{},\"fetch_errors\":{},\
                 \"last_error\":{last_error}}}",
                if r.is_promoted() {
                    "promoted"
                } else {
                    "follower"
                },
                json::escape(r.primary()),
                r.applied_seq(),
                r.primary_durable_seq(),
                r.lag(),
                r.fetch_errors(),
            )
        }
        None => "null".to_string(),
    };
    let partition = match shared.db.partition_summary() {
        Some((owned, resident)) => {
            format!("{{\"owned_bases\":{owned},\"resident_nodes\":{resident}}}")
        }
        None => "null".to_string(),
    };
    format!(
        "{{\"queries\":{},\"inserts\":{},\"insert_batches\":{},\"time_advances\":{},\
         \"model_updates\":{},\"invalidations\":{},\"reestimations\":{},\
         \"pending_inserts\":{},\"buffered_rows\":{},\"queue_depth\":{},\
         \"series_len\":{},\"models\":{},\"wal\":{},\"replication\":{},\"latency\":{},\
         \"drift\":{},\"partition\":{partition}}}",
        stats.queries,
        stats.inserts,
        stats.insert_batches,
        stats.time_advances,
        stats.model_updates,
        stats.invalidations,
        stats.reestimations,
        shared.db.pending_inserts(),
        shared.batcher.buffered(),
        queue_len,
        shared.db.dataset().series_len(),
        shared.db.model_count(),
        wal,
        replication,
        latency_json(),
        drift_json(shared),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_round_trips_exact_bits() {
        let dir = std::env::temp_dir().join(format!("fdc_sidecar_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let catalog = dir.join("catalog.bin");
        let sidecar = pending_sidecar_path(&catalog);
        // The third value's decimal rendering would lose bits if the
        // sidecar stored decimals instead of bit patterns.
        let rows = vec![
            (3usize, 1.5),
            (7, -0.0),
            (11, f64::from_bits(0x3FF0_0000_0000_0001)),
        ];
        write_pending_sidecar(&sidecar, &rows).unwrap();
        let restored = read_pending_sidecar(&sidecar).unwrap();
        assert_eq!(restored.len(), rows.len());
        for ((n1, v1), (n2, v2)) in rows.iter().zip(&restored) {
            assert_eq!(n1, n2);
            assert_eq!(v1.to_bits(), v2.to_bits());
        }
        // Missing sidecar reads as empty, malformed one errors.
        assert!(read_pending_sidecar(&dir.join("nope")).unwrap().is_empty());
        std::fs::write(&sidecar, "not a sidecar\n").unwrap();
        assert!(read_pending_sidecar(&sidecar).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
