//! `/query` and `/explain` over a real socket with per-request
//! approximation controls: opted-in rows carry `"approx"` metadata,
//! plain requests stay byte-for-byte free of it, and malformed
//! controls are rejected before touching the engine.

mod common;

use common::http;
use fdc_cube::Configuration;
use fdc_datagen::{generate_highcard, HighCardSpec};
use fdc_f2db::{ApproxOptions, F2db};
use fdc_forecast::ModelSpec;
use fdc_serve::{ServeOptions, Server};
use std::sync::Arc;

const SQL: &str = "SELECT time, SUM(v) FROM facts GROUP BY time AS OF now() + '3 steps'";

fn approx_db() -> Arc<F2db> {
    let ds = generate_highcard(&HighCardSpec {
        base_cells: 400,
        groups: 20,
        length: 16,
        ..HighCardSpec::new(400, 0x5EE)
    })
    .dataset;
    let empty = Configuration::new(ds.node_count());
    Arc::new(
        F2db::load(ds, &empty)
            .unwrap()
            .with_approx(ApproxOptions {
                strata: 6,
                samples_per_stratum: 16,
                min_population: 100,
                spec: Some(ModelSpec::Ses),
                ..ApproxOptions::default()
            })
            .unwrap(),
    )
}

#[test]
fn approx_controls_round_trip_over_http() {
    let db = approx_db();
    let server = Server::start(Arc::clone(&db), 0, ServeOptions::default()).unwrap();
    let addr = server.addr();

    // Opted-in query: rows carry sampling metadata.
    let body = format!("{{\"sql\": \"{SQL}\", \"approx\": {{}}}}");
    let r = http(addr, "POST", "/query", &body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"approx\":{\"sampled\":"), "{}", r.body);
    assert!(r.body.contains("\"population\":400"), "{}", r.body);
    assert!(r.body.contains("\"ci_half\":["), "{}", r.body);

    // A budget caps the evaluated cells (proportional allocation keeps
    // at least two cells per stratum, so compare against the full run).
    let sampled_of = |body: &str| -> u64 {
        let tail = &body[body.find("\"sampled\":").unwrap() + 10..];
        tail[..tail.find(',').unwrap()].parse().unwrap()
    };
    let full_sampled = sampled_of(&r.body);
    let body = format!("{{\"sql\": \"{SQL}\", \"approx\": {{\"budget\": 12}}}}");
    let r = http(addr, "POST", "/query", &body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(
        sampled_of(&r.body) < full_sampled,
        "budget did not bind: {}",
        r.body
    );

    // EXPLAIN with controls: the plan row is a sampled one.
    let body =
        format!("{{\"sql\": \"{SQL}\", \"approx\": {{\"budget\": 24, \"target_ci\": 0.05}}}}");
    let r = http(addr, "POST", "/explain", &body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"scheme\":\"sampled\""), "{}", r.body);
    assert!(r.body.contains("\"budget\":24"), "{}", r.body);
    assert!(r.body.contains("\"target_ci\":0.05"), "{}", r.body);

    // Malformed controls are a 400, not an engine error.
    for bad in [
        format!("{{\"sql\": \"{SQL}\", \"approx\": 3}}"),
        format!("{{\"sql\": \"{SQL}\", \"approx\": {{\"budget\": 0}}}}"),
        format!("{{\"sql\": \"{SQL}\", \"approx\": {{\"confidence\": 1.5}}}}"),
    ] {
        let r = http(addr, "POST", "/query", &bad).unwrap();
        assert_eq!(r.status, 400, "{}", r.body);
    }

    // `analyze` and `approx` cannot be combined.
    let body = format!("{{\"sql\": \"{SQL}\", \"analyze\": true, \"approx\": {{}}}}");
    let r = http(addr, "POST", "/explain", &body).unwrap();
    assert_eq!(r.status, 400, "{}", r.body);

    server.shutdown().unwrap();
}

#[test]
fn plain_requests_carry_no_approx_bytes() {
    let db = approx_db();
    let server = Server::start(Arc::clone(&db), 0, ServeOptions::default()).unwrap();
    let addr = server.addr();
    // The engine has a plane attached, but a request that does not opt
    // in must not even mention approximation in its answer.
    let body = format!("{{\"sql\": \"{SQL}\"}}");
    let r = http(addr, "POST", "/query", &body).unwrap();
    // The empty configuration has no exact scheme for the top node, so
    // the exact path errors — proving the plane was not consulted.
    assert_ne!(r.status, 200);
    assert!(!r.body.contains("approx"), "{}", r.body);
    server.shutdown().unwrap();
}
