//! Route-level integration tests: every endpoint over a real socket,
//! plus the two admission-control rejections (`429` queue-full, `503`
//! deadline) provoked deterministically with artificially slow queries.

mod common;

use common::{base_dims, full_round_body, http, row_json, small_db};
use fdc_forecast::FitOptions;
use fdc_serve::{ServeOptions, Server};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn routes_answer_over_a_real_socket() {
    let db = small_db();
    let dims = base_dims(&db);
    let len_before = db.dataset().series_len();
    let server = Server::start(
        Arc::clone(&db),
        0,
        ServeOptions {
            max_body: 64 * 1024,
            coalesce_window: Duration::from_millis(1),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Health and stats.
    let r = http(addr, "GET", "/healthz", "").unwrap();
    assert_eq!((r.status, r.body.as_str()), (200, "{\"status\":\"ok\"}"));
    let r = http(addr, "GET", "/stats", "").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body.contains("\"series_len\""), "{}", r.body);

    // Forecast query.
    let r = http(
        addr,
        "POST",
        "/query",
        r#"{"sql": "SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '3 quarters'"}"#,
    )
    .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.starts_with("{\"rows\":[{\"node\":"), "{}", r.body);
    assert!(r.body.contains("\"values\":[[32,"), "{}", r.body);

    // Explain, static and analyzed.
    let r = http(
        addr,
        "POST",
        "/explain",
        r#"{"sql": "SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '2 quarters'"}"#,
    )
    .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"analyzed\":false"), "{}", r.body);
    assert!(r.body.contains("\"scheme\":"), "{}", r.body);
    let r = http(
        addr,
        "POST",
        "/explain",
        r#"{"sql": "SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '2 quarters'", "analyze": true}"#,
    )
    .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"analyzed\":true"), "{}", r.body);
    assert!(r.body.contains("\"elapsed_ns\":"), "{}", r.body);

    // Single-row insert: acknowledged but no advance yet.
    let r = http(addr, "POST", "/insert", &row_json(&dims[0], 42.0)).unwrap();
    assert_eq!((r.status, r.body.as_str()), (202, "{\"accepted\":1}"));
    assert_eq!(db.pending_inserts(), 1);

    // Batch insert completing the round: the time stamp advances.
    let rest: Vec<String> = dims[1..].iter().map(|d| row_json(d, 42.0)).collect();
    let r = http(
        addr,
        "POST",
        "/insert",
        &format!("{{\"rows\":[{}]}}", rest.join(",")),
    )
    .unwrap();
    assert_eq!(r.status, 202, "{}", r.body);
    assert_eq!(db.dataset().series_len(), len_before + 1);
    assert_eq!(db.pending_inserts(), 0);

    // A full round in one request advances again.
    let r = http(addr, "POST", "/insert", &full_round_body(&dims, 43.0)).unwrap();
    assert_eq!(r.status, 202);
    assert_eq!(db.dataset().series_len(), len_before + 2);

    // Maintain.
    let r = http(addr, "POST", "/maintain", "").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body.starts_with("{\"refitted\":"), "{}", r.body);

    // Error paths.
    let r = http(addr, "POST", "/query", "{not json").unwrap();
    assert_eq!(r.status, 400);
    let r = http(addr, "POST", "/query", r#"{"sql": "SELECT nonsense"}"#).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("error"), "{}", r.body);
    let r = http(addr, "POST", "/insert", r#"{"rows": []}"#).unwrap();
    assert_eq!(r.status, 400);
    let r = http(
        addr,
        "POST",
        "/insert",
        r#"{"dims": ["nope", "NSW"], "value": 1.0}"#,
    )
    .unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    let r = http(addr, "GET", "/no/such/route", "").unwrap();
    assert_eq!(r.status, 404);
    let r = http(addr, "GET", "/query", "").unwrap();
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("POST"));
    let r = http(addr, "POST", "/stats", "").unwrap();
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("GET"));
    let oversized = format!("{{\"sql\": \"{}\"}}", "x".repeat(80 * 1024));
    let r = http(addr, "POST", "/query", &oversized).unwrap();
    assert_eq!(r.status, 413);

    // Batch metrics: the full-round request committed all its rows in
    // one engine commit — more than one row per advance-lock trip.
    let stats = db.stats();
    assert!(stats.insert_batches >= 2);
    assert!(stats.inserts / stats.insert_batches > 1);

    // After real traffic, /stats carries digest-backed per-route
    // latency quantiles and a drift summary (null: monitoring is off).
    let r = http(addr, "GET", "/stats", "").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body.contains("\"latency\":{"), "{}", r.body);
    assert!(r.body.contains("\"query\":{\"count\":"), "{}", r.body);
    assert!(r.body.contains("\"p999\":"), "{}", r.body);
    assert!(r.body.contains("\"drift\":null"), "{}", r.body);

    let report = server.shutdown().unwrap();
    assert_eq!(report.flushed_rows, 0);
    assert!(!report.saved_catalog);
}

/// A database whose queries are artificially slow: every model is
/// invalid and each lazy re-fit stalls, so one `/query` holds a worker
/// for hundreds of milliseconds — long enough to fill a depth-1 queue
/// deterministically.
fn slow_db(stall_us: u64) -> Arc<fdc_f2db::F2db> {
    Arc::new(common::small_db_raw().with_fit_options(FitOptions {
        artificial_stall_us: stall_us,
        ..FitOptions::default()
    }))
}

const SLOW_QUERY: &str =
    r#"{"sql": "SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '1 quarter'"}"#;

#[test]
fn queue_overflow_answers_429_with_retry_after() {
    let db = slow_db(400_000);
    let server = Server::start(
        Arc::clone(&db),
        0,
        ServeOptions {
            workers: 1,
            queue_depth: 1,
            deadline: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    db.invalidate_all();
    // First request: picked up by the only worker, stalls in lazy
    // re-estimation.
    let first = std::thread::spawn(move || http(addr, "POST", "/query", SLOW_QUERY).unwrap());
    std::thread::sleep(Duration::from_millis(150));
    // Second request: sits in the (now full) queue.
    let second = std::thread::spawn(move || http(addr, "POST", "/query", SLOW_QUERY).unwrap());
    std::thread::sleep(Duration::from_millis(100));
    // Third request: queue full → immediate 429 from the accept thread.
    let r = http(addr, "POST", "/query", SLOW_QUERY).unwrap();
    assert_eq!(r.status, 429, "{}", r.body);
    assert_eq!(r.header("retry-after"), Some("1"));

    assert_eq!(first.join().unwrap().status, 200);
    assert_eq!(second.join().unwrap().status, 200);
    server.shutdown().unwrap();
}

#[test]
fn stale_queued_request_answers_503() {
    let db = slow_db(500_000);
    let server = Server::start(
        Arc::clone(&db),
        0,
        ServeOptions {
            workers: 1,
            queue_depth: 8,
            deadline: Duration::from_millis(200),
            // The oracle below counts engine query executions; keep the
            // slow log's auto-`EXPLAIN ANALYZE` (which re-runs the
            // statement) out of the tally.
            slow_threshold: Duration::MAX,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    db.invalidate_all();
    // Occupy the only worker for well over the deadline.
    let first = std::thread::spawn(move || http(addr, "POST", "/query", SLOW_QUERY).unwrap());
    std::thread::sleep(Duration::from_millis(100));
    // This one will wait in the queue longer than the deadline and must
    // be answered 503 without running the query.
    let queries_before = db.stats().queries;
    let r = http(addr, "POST", "/query", SLOW_QUERY).unwrap();
    assert_eq!(r.status, 503, "{}", r.body);
    let first = first.join().unwrap();
    assert_eq!(first.status, 200);
    // The 503 request never reached the query processor.
    assert_eq!(db.stats().queries, queries_before + 1);
    server.shutdown().unwrap();
}
