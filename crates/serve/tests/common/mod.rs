//! Shared fixture and a minimal blocking HTTP client for the server
//! integration tests.

#![allow(dead_code)]

use fdc_core::{Advisor, AdvisorOptions};
use fdc_datagen::tourism_proxy;
use fdc_f2db::F2db;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// The tourism-proxy engine every test serves (unwrapped, so callers
/// can still apply builder options).
pub fn small_db_raw() -> F2db {
    let ds = tourism_proxy(1);
    let outcome = Advisor::new(
        &ds,
        AdvisorOptions {
            parallelism: Some(2),
            ..AdvisorOptions::default()
        },
    )
    .unwrap()
    .run();
    F2db::load(ds, &outcome.configuration).unwrap()
}

/// [`small_db_raw`] wrapped for sharing with a server.
pub fn small_db() -> Arc<F2db> {
    Arc::new(small_db_raw())
}

/// The dimension-value strings of every base series, in base-node order —
/// what an `/insert` body's `dims` arrays must carry.
pub fn base_dims(db: &F2db) -> Vec<Vec<String>> {
    let ds = db.dataset();
    let g = ds.graph();
    let schema = g.schema();
    g.base_nodes()
        .iter()
        .map(|&n| {
            g.coord(n)
                .values()
                .iter()
                .enumerate()
                .map(|(d, &idx)| schema.dimensions()[d].values()[idx as usize].clone())
                .collect()
        })
        .collect()
}

/// An `/insert` body carrying one value for every base series — a "full
/// round" that completes exactly one time stamp when committed.
pub fn full_round_body(dims: &[Vec<String>], value: f64) -> String {
    let rows: Vec<String> = dims.iter().map(|d| row_json(d, value)).collect();
    format!("{{\"rows\":[{}]}}", rows.join(","))
}

/// A single `{"dims": [...], "value": v}` row object.
pub fn row_json(dims: &[String], value: f64) -> String {
    let quoted: Vec<String> = dims.iter().map(|d| format!("\"{d}\"")).collect();
    format!("{{\"dims\":[{}],\"value\":{value}}}", quoted.join(","))
}

/// A parsed HTTP response.
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one request over a fresh connection (the server speaks one
/// request per connection) and parses the response.
pub fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
    http_with_headers(addr, method, path, body, &[])
}

/// [`http`] with caller-supplied extra request headers (e.g. a crafted
/// `traceparent` for propagation tests).
pub fn http_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra: &[(&str, &str)],
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let extra_lines: String = extra.iter().map(|(n, v)| format!("{n}: {v}\r\n")).collect();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: fdc\r\nContent-Type: application/json\r\n{extra_lines}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no response head"))?;
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let headers = lines
        .filter_map(|l| {
            l.split_once(':')
                .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(Response {
        status,
        headers,
        body: body.to_string(),
    })
}
