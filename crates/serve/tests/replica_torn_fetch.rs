//! Propagation under failure: a fake primary serves torn `/wal/fetch`
//! responses (valid ship chunks cut mid-frame) and the follower must
//! fail *cleanly* — errors counted and surfaced, watermark unmoved,
//! and, the tracing contract this file exists for, **no leaked span or
//! stale thread-local context** on the fetch thread. The fetch loop's
//! span guards are RAII, so every `replica.round` span must close at
//! depth 0 even when the round errors out mid-body; a leaked guard
//! would stack every later round at depth ≥ 1, which the collector
//! assertions below would catch.

mod common;

use common::small_db_raw;
use fdc_f2db::WalRecord;
use fdc_serve::{open_follower, ServeOptions};
use fdc_wal::{encode_chunk, ShipChunk};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Torn responses served before the fake primary turns honest. Chosen
/// so several head-sampled (1-in-64) fetch rounds land *inside* the
/// torn phase — those are the rounds whose error path must not leak
/// the open `replica.round` span.
const TORN_ROUNDS: usize = 192;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdc_torn_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A primary that speaks just enough HTTP to poison the fetch loop:
/// the first [`TORN_ROUNDS`] requests answer a ship chunk truncated
/// mid-frame; later requests answer honestly — the full chunk when the
/// follower is at `after=0`, an empty caught-up chunk otherwise.
fn spawn_fake_primary(record: Vec<u8>) -> (SocketAddr, Arc<AtomicUsize>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let served = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&served);
    std::thread::Builder::new()
        .name("fake-primary".into())
        .spawn(move || {
            let full = encode_chunk(&ShipChunk {
                durable_seq: 1,
                checkpoint_seq: 0,
                frames: vec![(1, record)],
            });
            let torn = full[..full.len() - 7].to_vec();
            let empty = encode_chunk(&ShipChunk {
                durable_seq: 1,
                checkpoint_seq: 0,
                frames: Vec::new(),
            });
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                let mut head = Vec::new();
                let mut buf = [0u8; 512];
                while !head.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => head.extend_from_slice(&buf[..n]),
                    }
                }
                let request = String::from_utf8_lossy(&head).into_owned();
                let round = counter.fetch_add(1, Ordering::SeqCst);
                let body: &[u8] = if round < TORN_ROUNDS {
                    &torn
                } else if request.contains("after=0") {
                    &full
                } else {
                    &empty
                };
                let _ = stream.write_all(
                    format!(
                        "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                        body.len()
                    )
                    .as_bytes(),
                );
                let _ = stream.write_all(body);
            }
        })
        .unwrap();
    (addr, served)
}

#[test]
fn torn_fetch_responses_surface_errors_without_leaking_spans() {
    // The test binary's global span subscriber is ours alone.
    let collector = fdc_obs::TraceCollector::new();
    fdc_obs::set_subscriber(collector.clone());

    let db = small_db_raw();
    let node = db.dataset().graph().base_nodes()[0];
    let record = WalRecord::InsertBatch {
        rows: vec![(node, 77.5)],
        trace: Some((0xABCD, 0x1234)),
    }
    .encode();
    let (primary, served) = spawn_fake_primary(record);

    let dir = tmp_dir("follower");
    let opts = ServeOptions {
        wal_dir: Some(dir.join("wal")),
        wal_fsync: false,
        replica_of: Some(primary.to_string()),
        replica_poll: Duration::from_millis(1),
        ..ServeOptions::default()
    };
    let (_db, replica) = open_follower(db, &opts).expect("open follower");

    // Phase 1 — torn chunks. Every round fails; the watermark must not
    // move and the decode error must be surfaced verbatim. The checks
    // run while the torn phase is still in progress (16 torn rounds of
    // headroom) so they cannot race the primary turning honest.
    let started = Instant::now();
    while served.load(Ordering::SeqCst) < TORN_ROUNDS - 16 {
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "fake primary only served {} rounds",
            served.load(Ordering::SeqCst)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        replica.fetch_errors() >= (TORN_ROUNDS / 2) as u64,
        "only {} fetch errors after {TORN_ROUNDS} torn responses",
        replica.fetch_errors()
    );
    assert_eq!(
        replica.applied_seq(),
        0,
        "a torn chunk moved the applied watermark"
    );
    let last = replica.last_error().expect("torn rounds left no error");
    assert!(
        last.contains("mid-frame") || last.contains("truncated"),
        "unexpected fetch error: {last}"
    );

    // Phase 2 — the primary turns honest and the loop recovers on the
    // next valid chunk with no restart.
    let started = Instant::now();
    while replica.applied_seq() < 1 {
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "follower never recovered after the torn phase (applied={}, errors={})",
            replica.applied_seq(),
            replica.fetch_errors()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(replica.primary_durable_seq(), 1);
    assert_eq!(replica.lag(), 0);

    replica.seal();

    // The tracing contract. Torn rounds included head-sampled ones, so
    // the export must hold `replica.round` spans — and every one of
    // them at depth 0: the fetch thread's outermost span. A leaked
    // guard from any errored round would have pushed later rounds to
    // depth ≥ 1.
    let doc = collector.to_json();
    let span_name = |chunk: &str| chunk.split('"').next().unwrap_or("").to_string();
    let rounds: Vec<&str> = doc
        .split("{\"name\":\"")
        .skip(1)
        .filter(|chunk| span_name(chunk) == "replica.round")
        .collect();
    assert!(
        rounds.len() >= 2,
        "expected several sampled replica.round spans, got {}: {doc}",
        rounds.len()
    );
    for chunk in &rounds {
        assert!(
            chunk.contains("\"args\":{\"depth\":0"),
            "a replica.round span closed at depth > 0 — an errored round \
             leaked its span: {chunk}"
        );
    }
    // The valid record carried an embedded trace, so the apply span
    // joined it — the single-process version of the cross-process join.
    assert!(
        doc.contains("replica.apply"),
        "no replica.apply span in the export: {doc}"
    );
    let apply = doc
        .split("{\"name\":\"")
        .skip(1)
        .find(|c| span_name(c).ends_with("replica.apply"))
        .unwrap();
    assert!(
        apply.contains("\"trace_id\":\"0000000000000000000000000000abcd\""),
        "replica.apply did not adopt the record's embedded trace: {apply}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
