//! Crash-injection harness: a real server process, real SIGKILL, real
//! recovery.
//!
//! Each seed spawns this very test binary as a child process (the
//! [`crash_child`] test below, selected with `--exact` and armed by an
//! environment variable). The child opens a WAL-backed engine through
//! [`fdc_serve::open_engine`], starts the HTTP server and prints
//! `READY <addr>`. The parent then hammers `/insert` from several
//! threads — every row carrying a globally unique value — and SIGKILLs
//! the child at a seed-chosen moment mid-load, exactly like a power
//! failure: no drain, no flush, no atexit.
//!
//! Afterwards the parent verifies the durability contract from the
//! surviving bytes alone:
//!
//! 1. **no acknowledged write is lost** — every value the parent saw a
//!    `202` for is present in the replayed log exactly once;
//! 2. **no write is duplicated** — no value appears twice;
//! 3. **replay is deterministic** — a second replay of the recovered
//!    directory yields byte-identical records and truncates nothing;
//! 4. **the engine restarts** on the same directory and applies every
//!    replayed row.
//!
//! With `FDC_STRESS_ARTIFACT_DIR` set (as in CI's crash-smoke job) each
//! seed writes a JSON summary there as a build artifact.

mod common;

use common::{http, row_json};
use fdc_core::{Advisor, AdvisorOptions};
use fdc_cube::Dataset;
use fdc_datagen::tourism_proxy;
use fdc_f2db::{F2db, WalRecord};
use fdc_serve::{open_engine, ServeOptions, Server};
use fdc_wal::{Wal, WalOptions};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const CHILD_ENV: &str = "FDC_CRASH_CHILD";
const DIR_ENV: &str = "FDC_CRASH_DIR";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fdc_crash_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn engine_opts(dir: &Path) -> ServeOptions {
    ServeOptions {
        catalog_path: Some(dir.join("catalog.f2db")),
        wal_dir: Some(dir.join("wal")),
        coalesce_window: Duration::from_millis(1),
        ..ServeOptions::default()
    }
}

fn build_engine() -> F2db {
    let ds = tourism_proxy(1);
    let outcome = Advisor::new(
        &ds,
        AdvisorOptions {
            parallelism: Some(2),
            ..AdvisorOptions::default()
        },
    )
    .unwrap()
    .run();
    F2db::load(ds, &outcome.configuration).unwrap()
}

/// The dimension-value strings of every base series, straight from the
/// dataset (the parent needs them without paying for an advisor run).
fn base_dims(ds: &Dataset) -> Vec<Vec<String>> {
    let g = ds.graph();
    let schema = g.schema();
    g.base_nodes()
        .iter()
        .map(|&n| {
            g.coord(n)
                .values()
                .iter()
                .enumerate()
                .map(|(d, &idx)| schema.dimensions()[d].values()[idx as usize].clone())
                .collect()
        })
        .collect()
}

/// Not a test of its own: the server process the harness SIGKILLs. Runs
/// only when re-invoked by a parent with [`CHILD_ENV`] set; under a
/// plain `cargo test` it returns immediately.
#[test]
fn crash_child() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    let dir = PathBuf::from(std::env::var(DIR_ENV).expect("child needs FDC_CRASH_DIR"));
    let opts = engine_opts(&dir);
    let (db, _recovery) = open_engine(build_engine(), &opts).expect("child open_engine");
    let server = Server::start(db, 0, opts).expect("child server");
    // The parent parses this line; everything else on stdout is libtest
    // chatter it skips over.
    println!("READY {}", server.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    // Wait for the axe. The server threads do all the work; a graceful
    // exit never happens on this path.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn spawn_child(dir: &Path) -> (std::process::Child, SocketAddr) {
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(exe)
        .args(["crash_child", "--exact", "--nocapture"])
        .env(CHILD_ENV, "1")
        .env(DIR_ENV, dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child server");
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            // libtest prints `test crash_child ... ` without a newline
            // first, so READY can land mid-line.
            Some(Ok(line)) => {
                if let Some((_, rest)) = line.split_once("READY ") {
                    break rest.trim().parse::<SocketAddr>().expect("child addr");
                }
            }
            other => panic!("child exited before READY: {other:?}"),
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// One replay of the crashed log, flattened for the assertions.
struct Replay {
    /// Raw `(seq, payload)` records, in log order.
    records: Vec<(u64, Vec<u8>)>,
    /// Torn bytes this open truncated.
    truncated: u64,
    /// Every row value across all decoded `InsertBatch` records, as
    /// bit patterns (exact-equality keys for f64).
    values: Vec<u64>,
}

fn replay_wal(wal_dir: &Path) -> Replay {
    let (_wal, rec) = Wal::open(
        wal_dir,
        WalOptions {
            fsync: false,
            ..WalOptions::default()
        },
    )
    .expect("replay after crash");
    let mut values = Vec::new();
    for (_seq, payload) in &rec.records {
        let WalRecord::InsertBatch { rows } = WalRecord::decode(payload).expect("decodable record");
        values.extend(rows.iter().map(|(_node, v)| v.to_bits()));
    }
    Replay {
        records: rec.records,
        truncated: rec.truncated_bytes,
        values,
    }
}

fn run_crash(seed: u64) {
    let mut rng = fdc_rng::Rng::seed_from_u64(seed);
    let dir = tmp_dir(&format!("{seed:x}"));
    let dims = base_dims(&tourism_proxy(1));
    let (mut child, addr) = spawn_child(&dir);

    // Hammer /insert from several threads; every row value is unique, so
    // a value doubles as the identity of its write. A thread records a
    // value as acknowledged only after reading the 202.
    let stop = AtomicBool::new(false);
    let acked_count = std::sync::atomic::AtomicUsize::new(0);
    let threads = 3usize;
    let acked: Vec<u64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let dims = &dims;
                let stop = &stop;
                let acked_count = &acked_count;
                scope.spawn(move || {
                    let mut acked = Vec::new();
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let value = (t as u64 * 1_000_000 + i) as f64 + 0.5;
                        let body = row_json(&dims[(i as usize + t) % dims.len()], value);
                        match http(addr, "POST", "/insert", &body) {
                            Ok(r) if r.status == 202 => {
                                acked.push(value.to_bits());
                                acked_count.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(_) => {}      // backpressure — not acknowledged
                            Err(_) => break, // the axe fell mid-request
                        }
                        i += 1;
                    }
                    acked
                })
            })
            .collect();

        // A kill before anything was acknowledged proves nothing, so
        // wait until the load is real before picking the crash moment.
        let armed = std::time::Instant::now();
        while acked_count.load(Ordering::Relaxed) < 20 && armed.elapsed() < Duration::from_secs(20)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        // SIGKILL at a seed-chosen moment mid-load: Child::kill is
        // SIGKILL on unix — no drain, no flush, no atexit.
        std::thread::sleep(Duration::from_millis(40 + rng.usize_below(240) as u64));
        child.kill().expect("sigkill child");
        child.wait().expect("reap child");
        stop.store(true, Ordering::Relaxed);
        workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect()
    });
    assert!(
        acked.len() >= 20,
        "seed {seed:#x}: only {} writes acknowledged before the kill — harness too weak",
        acked.len()
    );

    // 1 + 2: every acked value present exactly once, nothing duplicated.
    let wal_dir = dir.join("wal");
    let Replay {
        records,
        truncated,
        values,
    } = replay_wal(&wal_dir);
    let mut sorted = values.clone();
    sorted.sort_unstable();
    let len_before = sorted.len();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        len_before,
        "seed {seed:#x}: a write was duplicated in the log"
    );
    for v in &acked {
        assert!(
            sorted.binary_search(v).is_ok(),
            "seed {seed:#x}: acknowledged write {} lost ({} acked, {} recovered)",
            f64::from_bits(*v),
            acked.len(),
            values.len()
        );
    }

    // 3: replaying the recovered directory again is byte-deterministic —
    // identical records, nothing further to truncate.
    let second = replay_wal(&wal_dir);
    assert_eq!(
        second.records, records,
        "seed {seed:#x}: replay not deterministic"
    );
    assert_eq!(
        second.truncated, 0,
        "seed {seed:#x}: second replay truncated"
    );

    // 4: the engine restarts on the crashed directory and applies every
    // row the log carries.
    let (db, recovery) = open_engine(build_engine(), &engine_opts(&dir)).expect("restart");
    let report = recovery.wal.expect("wal attached on restart");
    assert_eq!(
        report.replayed_rows as usize,
        values.len(),
        "seed {seed:#x}: restart applied a different row count"
    );
    assert_eq!(db.stats().inserts, values.len());

    if let Some(artifact_dir) = std::env::var("FDC_STRESS_ARTIFACT_DIR")
        .ok()
        .filter(|d| !d.is_empty())
    {
        std::fs::create_dir_all(&artifact_dir).expect("artifact dir");
        let summary = format!(
            "{{\"seed\":\"{seed:#x}\",\"acked\":{},\"recovered_rows\":{},\"wal_records\":{},\"torn_bytes_truncated\":{}}}\n",
            acked.len(),
            values.len(),
            records.len(),
            truncated
        );
        std::fs::write(
            PathBuf::from(artifact_dir).join(format!("crash-recovery-{seed:x}.json")),
            summary,
        )
        .expect("artifact write");
    }

    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_seed_1_loses_no_acknowledged_write() {
    run_crash(0xF2DB_C4A5_0001);
}

#[test]
fn crash_seed_2_loses_no_acknowledged_write() {
    run_crash(0xF2DB_C4A5_0002);
}

#[test]
fn crash_seed_3_loses_no_acknowledged_write() {
    run_crash(0xF2DB_C4A5_0003);
}
