//! Crash-injection harness: a real server process, real SIGKILL, real
//! recovery.
//!
//! Each seed spawns this very test binary as a child process (the
//! [`crash_child`] test below, selected with `--exact` and armed by an
//! environment variable). The child opens a WAL-backed engine through
//! [`fdc_serve::open_engine`], starts the HTTP server and prints
//! `READY <addr>`. The parent then hammers `/insert` from several
//! threads — every row carrying a globally unique value — and SIGKILLs
//! the child at a seed-chosen moment mid-load, exactly like a power
//! failure: no drain, no flush, no atexit.
//!
//! Afterwards the parent verifies the durability contract from the
//! surviving bytes alone:
//!
//! 1. **no acknowledged write is lost** — every value the parent saw a
//!    `202` for is present in the replayed log exactly once;
//! 2. **no write is duplicated** — no value appears twice;
//! 3. **replay is deterministic** — a second replay of the recovered
//!    directory yields byte-identical records and truncates nothing;
//! 4. **the engine restarts** on the same directory and applies every
//!    replayed row.
//!
//! With `FDC_STRESS_ARTIFACT_DIR` set (as in CI's crash-smoke job) each
//! seed writes a JSON summary there as a build artifact.

mod common;

use common::{http, http_with_headers, row_json};
use fdc_core::{Advisor, AdvisorOptions};
use fdc_cube::Dataset;
use fdc_datagen::tourism_proxy;
use fdc_f2db::{F2db, WalRecord};
use fdc_serve::{open_engine, ServeOptions, Server};
use fdc_wal::{Wal, WalOptions};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const CHILD_ENV: &str = "FDC_CRASH_CHILD";
const DIR_ENV: &str = "FDC_CRASH_DIR";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fdc_crash_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn engine_opts(dir: &Path) -> ServeOptions {
    ServeOptions {
        catalog_path: Some(dir.join("catalog.f2db")),
        wal_dir: Some(dir.join("wal")),
        coalesce_window: Duration::from_millis(1),
        ..ServeOptions::default()
    }
}

fn build_engine() -> F2db {
    let ds = tourism_proxy(1);
    let outcome = Advisor::new(
        &ds,
        AdvisorOptions {
            parallelism: Some(2),
            ..AdvisorOptions::default()
        },
    )
    .unwrap()
    .run();
    F2db::load(ds, &outcome.configuration).unwrap()
}

/// The dimension-value strings of every base series, straight from the
/// dataset (the parent needs them without paying for an advisor run).
fn base_dims(ds: &Dataset) -> Vec<Vec<String>> {
    let g = ds.graph();
    let schema = g.schema();
    g.base_nodes()
        .iter()
        .map(|&n| {
            g.coord(n)
                .values()
                .iter()
                .enumerate()
                .map(|(d, &idx)| schema.dimensions()[d].values()[idx as usize].clone())
                .collect()
        })
        .collect()
}

/// Not a test of its own: the server process the harness SIGKILLs. Runs
/// only when re-invoked by a parent with [`CHILD_ENV`] set; under a
/// plain `cargo test` it returns immediately.
#[test]
fn crash_child() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    let dir = PathBuf::from(std::env::var(DIR_ENV).expect("child needs FDC_CRASH_DIR"));
    // With FDC_TRACE_OUT set by the parent, every span this process
    // closes lands in a Chrome-trace file the parent merges with the
    // follower's for the cross-process trace assertions.
    fdc_obs::install_env_exporter();
    let opts = engine_opts(&dir);
    let (db, _recovery) = open_engine(build_engine(), &opts).expect("child open_engine");
    let server = Server::start(db, 0, opts).expect("child server");
    // The parent parses this line; everything else on stdout is libtest
    // chatter it skips over.
    println!("READY {}", server.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    // Wait for the axe. The server threads do all the work; a graceful
    // exit never happens on this path.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn spawn_child(dir: &Path) -> (std::process::Child, SocketAddr) {
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(exe)
        .args(["crash_child", "--exact", "--nocapture"])
        .env(CHILD_ENV, "1")
        .env(DIR_ENV, dir)
        .env("FDC_TRACE_OUT", dir.join("trace.json"))
        .env("FDC_TRACE_NAME", "primary")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child server");
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            // libtest prints `test crash_child ... ` without a newline
            // first, so READY can land mid-line.
            Some(Ok(line)) => {
                if let Some((_, rest)) = line.split_once("READY ") {
                    break rest.trim().parse::<SocketAddr>().expect("child addr");
                }
            }
            other => panic!("child exited before READY: {other:?}"),
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// One replay of the crashed log, flattened for the assertions.
struct Replay {
    /// Raw `(seq, payload)` records, in log order.
    records: Vec<(u64, Vec<u8>)>,
    /// Torn bytes this open truncated.
    truncated: u64,
    /// Every row value across all decoded `InsertBatch` records, as
    /// bit patterns (exact-equality keys for f64).
    values: Vec<u64>,
}

fn replay_wal(wal_dir: &Path) -> Replay {
    let (_wal, rec) = Wal::open(
        wal_dir,
        WalOptions {
            fsync: false,
            ..WalOptions::default()
        },
    )
    .expect("replay after crash");
    let mut values = Vec::new();
    for (_seq, payload) in &rec.records {
        let WalRecord::InsertBatch { rows, .. } =
            WalRecord::decode(payload).expect("decodable record");
        values.extend(rows.iter().map(|(_node, v)| v.to_bits()));
    }
    Replay {
        records: rec.records,
        truncated: rec.truncated_bytes,
        values,
    }
}

fn run_crash(seed: u64) {
    let mut rng = fdc_rng::Rng::seed_from_u64(seed);
    let dir = tmp_dir(&format!("{seed:x}"));
    let dims = base_dims(&tourism_proxy(1));
    let (mut child, addr) = spawn_child(&dir);

    // Hammer /insert from several threads; every row value is unique, so
    // a value doubles as the identity of its write. A thread records a
    // value as acknowledged only after reading the 202.
    let stop = AtomicBool::new(false);
    let acked_count = std::sync::atomic::AtomicUsize::new(0);
    let threads = 3usize;
    let acked: Vec<u64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let dims = &dims;
                let stop = &stop;
                let acked_count = &acked_count;
                scope.spawn(move || {
                    let mut acked = Vec::new();
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let value = (t as u64 * 1_000_000 + i) as f64 + 0.5;
                        let body = row_json(&dims[(i as usize + t) % dims.len()], value);
                        match http(addr, "POST", "/insert", &body) {
                            Ok(r) if r.status == 202 => {
                                acked.push(value.to_bits());
                                acked_count.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(_) => {}      // backpressure — not acknowledged
                            Err(_) => break, // the axe fell mid-request
                        }
                        i += 1;
                    }
                    acked
                })
            })
            .collect();

        // A kill before anything was acknowledged proves nothing, so
        // wait until the load is real before picking the crash moment.
        let armed = std::time::Instant::now();
        while acked_count.load(Ordering::Relaxed) < 20 && armed.elapsed() < Duration::from_secs(20)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        // SIGKILL at a seed-chosen moment mid-load: Child::kill is
        // SIGKILL on unix — no drain, no flush, no atexit.
        std::thread::sleep(Duration::from_millis(40 + rng.usize_below(240) as u64));
        child.kill().expect("sigkill child");
        child.wait().expect("reap child");
        stop.store(true, Ordering::Relaxed);
        workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect()
    });
    assert!(
        acked.len() >= 20,
        "seed {seed:#x}: only {} writes acknowledged before the kill — harness too weak",
        acked.len()
    );

    // 1 + 2: every acked value present exactly once, nothing duplicated.
    let wal_dir = dir.join("wal");
    let Replay {
        records,
        truncated,
        values,
    } = replay_wal(&wal_dir);
    let mut sorted = values.clone();
    sorted.sort_unstable();
    let len_before = sorted.len();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        len_before,
        "seed {seed:#x}: a write was duplicated in the log"
    );
    for v in &acked {
        assert!(
            sorted.binary_search(v).is_ok(),
            "seed {seed:#x}: acknowledged write {} lost ({} acked, {} recovered)",
            f64::from_bits(*v),
            acked.len(),
            values.len()
        );
    }

    // 3: replaying the recovered directory again is byte-deterministic —
    // identical records, nothing further to truncate.
    let second = replay_wal(&wal_dir);
    assert_eq!(
        second.records, records,
        "seed {seed:#x}: replay not deterministic"
    );
    assert_eq!(
        second.truncated, 0,
        "seed {seed:#x}: second replay truncated"
    );

    // 4: the engine restarts on the crashed directory and applies every
    // row the log carries.
    let (db, recovery) = open_engine(build_engine(), &engine_opts(&dir)).expect("restart");
    let report = recovery.wal.expect("wal attached on restart");
    assert_eq!(
        report.replayed_rows as usize,
        values.len(),
        "seed {seed:#x}: restart applied a different row count"
    );
    assert_eq!(db.stats().inserts, values.len());

    if let Some(artifact_dir) = std::env::var("FDC_STRESS_ARTIFACT_DIR")
        .ok()
        .filter(|d| !d.is_empty())
    {
        std::fs::create_dir_all(&artifact_dir).expect("artifact dir");
        let summary = format!(
            "{{\"seed\":\"{seed:#x}\",\"acked\":{},\"recovered_rows\":{},\"wal_records\":{},\"torn_bytes_truncated\":{}}}\n",
            acked.len(),
            values.len(),
            records.len(),
            truncated
        );
        std::fs::write(
            PathBuf::from(artifact_dir).join(format!("crash-recovery-{seed:x}.json")),
            summary,
        )
        .expect("artifact write");
    }

    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Primary-kill failover: a real primary, a real follower, a real SIGKILL
// ---------------------------------------------------------------------------
//
// The replica suite spawns TWO children: the [`crash_child`] primary
// above and the [`replica_child`] follower below, wired together by
// `--replica-of`-style options. The parent hammers the primary under
// seeded load while the follower ships the primary's WAL, SIGKILLs the
// primary mid-group-commit, promotes the follower over the dead
// primary's log tail, and then proves from the surviving bytes that
//
// 1. **no acknowledged write was lost** — every primary `202` and every
//    post-promotion `202` is in the promoted follower's log;
// 2. **no write was duplicated** — each value appears exactly once;
// 3. **the follower log is a prefix-extension of the primary log** —
//    byte-identical records up to the primary's last recovered
//    sequence, followed only by post-promotion writes;
// 4. **catalog state is byte-deterministic** — two independent replays
//    of the promoted log encode identical catalogs, and apply exactly
//    the rows the log carries.

const REPLICA_CHILD_ENV: &str = "FDC_REPLICA_CHILD";
const REPLICA_DIR_ENV: &str = "FDC_REPLICA_DIR";
const PRIMARY_ADDR_ENV: &str = "FDC_PRIMARY_ADDR";

/// Not a test of its own: the follower process of the failover suite.
/// Runs only when re-invoked by a parent with [`REPLICA_CHILD_ENV`]
/// set.
#[test]
fn replica_child() {
    if std::env::var(REPLICA_CHILD_ENV).is_err() {
        return;
    }
    let dir = PathBuf::from(std::env::var(REPLICA_DIR_ENV).expect("child needs FDC_REPLICA_DIR"));
    let primary = std::env::var(PRIMARY_ADDR_ENV).expect("child needs FDC_PRIMARY_ADDR");
    fdc_obs::install_env_exporter();
    let opts = ServeOptions {
        wal_dir: Some(dir.join("wal")),
        replica_of: Some(primary),
        replica_poll: Duration::from_millis(2),
        coalesce_window: Duration::from_millis(1),
        ..ServeOptions::default()
    };
    let (db, replica) = fdc_serve::open_follower(build_engine(), &opts).expect("open_follower");
    let server = Server::start_with_replica(db, 0, opts, replica).expect("child follower server");
    println!("READY {}", server.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn spawn_replica_child(dir: &Path, primary: SocketAddr) -> (std::process::Child, SocketAddr) {
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(exe)
        .args(["replica_child", "--exact", "--nocapture"])
        .env(REPLICA_CHILD_ENV, "1")
        .env(REPLICA_DIR_ENV, dir)
        .env(PRIMARY_ADDR_ENV, primary.to_string())
        .env("FDC_TRACE_OUT", dir.join("trace.json"))
        .env("FDC_TRACE_NAME", "follower")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn follower server");
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some((_, rest)) = line.split_once("READY ") {
                    break rest.trim().parse::<SocketAddr>().expect("follower addr");
                }
            }
            other => panic!("follower exited before READY: {other:?}"),
        }
    };
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// Span paths that closed under `trace_hex`, scraped from a Chrome-trace
/// document: each event serializes as `{"name":"<path>",...}` with the
/// trace id (when the span was sampled) among its `args`.
fn span_names_with_trace(doc: &str, trace_hex: &str) -> std::collections::BTreeSet<String> {
    doc.split("{\"name\":\"")
        .skip(1)
        .filter(|chunk| chunk.contains(trace_hex))
        .map(|chunk| chunk.split('"').next().unwrap_or("").to_string())
        .collect()
}

/// The four hops a traced `/insert` must light up across the pair: the
/// request span and the WAL group-commit span on the primary, the ship
/// span on the primary's `/wal/fetch` answer, and the apply span on the
/// follower — all under one trace id.
const TRACED_INSERT_CHAIN: [&str; 4] = [
    "serve.request",
    "f2db.wal_commit",
    "serve.wal_ship",
    "replica.apply",
];

/// First `"key":<u64>` value in a JSON body, without a parser — the
/// stats/promote bodies are flat enough for this.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn run_replica_kill(seed: u64) {
    let mut rng = fdc_rng::Rng::seed_from_u64(seed);
    let p_dir = tmp_dir(&format!("rp_{seed:x}"));
    let f_dir = tmp_dir(&format!("rf_{seed:x}"));
    // A recognizable, seed-unique trace id for the crafted traceparent
    // the tracing assertions below hunt for in both processes' exports.
    let trace_id: u128 = (0xF2DB_u128 << 96) | u128::from(seed);
    let trace_hex = format!("{trace_id:032x}");
    let traceparent = format!("00-{trace_hex}-00f067aa0ba902b7-01");
    let dims = base_dims(&tourism_proxy(1));
    let (mut primary, p_addr) = spawn_child(&p_dir);
    let (mut follower, f_addr) = spawn_replica_child(&f_dir, p_addr);

    // The follower rejects writes explicitly — not a 500 from deep in
    // the engine, a typed redirect-to-the-primary answer.
    let rejected = http(f_addr, "POST", "/insert", &row_json(&dims[0], 424_242.5)).unwrap();
    assert_eq!(
        rejected.status, 409,
        "follower accepted a write: {}",
        rejected.body
    );
    assert!(
        rejected.body.contains("read-only follower"),
        "rejection is not explicit: {}",
        rejected.body
    );

    // Load the primary from several threads (unique values = write
    // identities) while a sampler thread watches the follower's
    // replication lag through /stats.
    let stop = AtomicBool::new(false);
    let sampler_stop = AtomicBool::new(false);
    let acked_count = std::sync::atomic::AtomicUsize::new(0);
    let follower_applied = std::sync::atomic::AtomicU64::new(0);
    let threads = 3usize;
    let (acked, lag_samples) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let dims = &dims;
                let stop = &stop;
                let acked_count = &acked_count;
                scope.spawn(move || {
                    let mut acked = Vec::new();
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let value = (t as u64 * 1_000_000 + i) as f64 + 0.5;
                        let body = row_json(&dims[(i as usize + t) % dims.len()], value);
                        match http(p_addr, "POST", "/insert", &body) {
                            Ok(r) if r.status == 202 => {
                                acked.push(value.to_bits());
                                acked_count.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(_) => {}
                            Err(_) => break,
                        }
                        i += 1;
                    }
                    acked
                })
            })
            .collect();
        let sampler = {
            let sampler_stop = &sampler_stop;
            let follower_applied = &follower_applied;
            scope.spawn(move || {
                let mut lags = Vec::new();
                while !sampler_stop.load(Ordering::Relaxed) {
                    if let Ok(r) = http(f_addr, "GET", "/stats", "") {
                        if let Some(lag) = json_u64(&r.body, "lag_seq") {
                            lags.push(lag);
                        }
                        if let Some(applied) = json_u64(&r.body, "applied_seq") {
                            follower_applied.store(applied, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                lags
            })
        };

        // Arm only once the load is real AND replication is visibly
        // flowing — a kill before the follower applied anything would
        // prove tail replay, not shipping.
        let armed = std::time::Instant::now();
        while (acked_count.load(Ordering::Relaxed) < 20
            || follower_applied.load(Ordering::Relaxed) == 0)
            && armed.elapsed() < Duration::from_secs(30)
        {
            std::thread::sleep(Duration::from_millis(5));
        }

        // Tentpole acceptance: send crafted-traceparent inserts until
        // the trace id lights up the full cross-process chain in the
        // two trace exports. Retries are needed because a coalesced
        // flush carries one representative trace — under concurrent
        // load another depositor's context may win a given generation.
        let trace_started = std::time::Instant::now();
        let mut ti = 0u64;
        loop {
            // Values disjoint from the load threads' range, unique per
            // attempt, so the duplicate-detection oracle still holds.
            let value = 8_500_000.5 + ti as f64;
            let body = row_json(&dims[ti as usize % dims.len()], value);
            let _ = http_with_headers(
                p_addr,
                "POST",
                "/insert",
                &body,
                &[("traceparent", traceparent.as_str())],
            );
            ti += 1;
            std::thread::sleep(Duration::from_millis(20));
            let p_doc = std::fs::read_to_string(p_dir.join("trace.json")).unwrap_or_default();
            let f_doc = std::fs::read_to_string(f_dir.join("trace.json")).unwrap_or_default();
            let mut names = span_names_with_trace(&p_doc, &trace_hex);
            names.extend(span_names_with_trace(&f_doc, &trace_hex));
            let covered = TRACED_INSERT_CHAIN
                .iter()
                .all(|needle| names.iter().any(|n| n.contains(needle)));
            if covered {
                break;
            }
            assert!(
                trace_started.elapsed() < Duration::from_secs(30),
                "seed {seed:#x}: traced insert chain incomplete after {ti} attempts; \
                 spans under trace {trace_hex}: {names:?}"
            );
        }

        std::thread::sleep(Duration::from_millis(40 + rng.usize_below(240) as u64));
        primary.kill().expect("sigkill primary");
        primary.wait().expect("reap primary");
        stop.store(true, Ordering::Relaxed);
        let acked: Vec<u64> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        sampler_stop.store(true, Ordering::Relaxed);
        (acked, sampler.join().unwrap())
    });
    assert!(
        acked.len() >= 20,
        "seed {seed:#x}: only {} writes acknowledged before the kill — harness too weak",
        acked.len()
    );
    assert!(
        follower_applied.load(Ordering::Relaxed) > 0,
        "seed {seed:#x}: follower never applied a shipped frame before the kill"
    );

    // Promote the follower over the dead primary's log tail.
    let promote_started = std::time::Instant::now();
    let promoted = http(
        f_addr,
        "POST",
        "/promote",
        &format!("{{\"tail_wal_dir\":\"{}\"}}", p_dir.join("wal").display()),
    )
    .unwrap();
    let promote_wall_ns = promote_started.elapsed().as_nanos() as u64;
    assert_eq!(promoted.status, 200, "promotion failed: {}", promoted.body);
    let tail_records = json_u64(&promoted.body, "tail_records").expect("tail_records");
    let promotion_ns = json_u64(&promoted.body, "promotion_ns").expect("promotion_ns");
    let promoted_last_seq = json_u64(&promoted.body, "last_seq").expect("last_seq");

    // The state machine only moves forward: a second promote is a 409.
    let again = http(f_addr, "POST", "/promote", "").unwrap();
    assert_eq!(
        again.status, 409,
        "double promote answered {}",
        again.status
    );

    // The promoted follower is a primary now: healthy, labelled, and
    // accepting both queries and writes.
    let health = http(f_addr, "GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200, "{}", health.body);
    let stats = http(f_addr, "GET", "/stats", "").unwrap();
    assert!(
        stats.body.contains("\"role\":\"promoted\""),
        "stats after promotion: {}",
        stats.body
    );
    let query = http(
        f_addr,
        "POST",
        "/query",
        r#"{"sql": "SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '2 quarters'"}"#,
    )
    .unwrap();
    assert_eq!(query.status, 200, "query after promotion: {}", query.body);
    let mut post_acked = Vec::new();
    for i in 0..10u64 {
        let value = (9_000_000 + i) as f64 + 0.5;
        let r = http(
            f_addr,
            "POST",
            "/insert",
            &row_json(&dims[i as usize % dims.len()], value),
        )
        .unwrap();
        assert_eq!(r.status, 202, "post-promotion insert: {}", r.body);
        post_acked.push(value.to_bits());
    }
    assert!(
        !f_dir.join("wal").join("REPLICA").exists(),
        "promotion left the REPLICA marker behind"
    );

    // Kill the follower too (its log is complete and fsynced) and
    // verify the whole contract from the surviving bytes.
    follower.kill().expect("sigkill follower");
    follower.wait().expect("reap follower");

    // The two Chrome-trace exports splice into one Perfetto document:
    // both process tracks present, and the crafted insert's trace id
    // still covering the whole primary→follower chain.
    let p_doc = std::fs::read_to_string(p_dir.join("trace.json")).expect("primary trace export");
    let f_doc = std::fs::read_to_string(f_dir.join("trace.json")).expect("follower trace export");
    let merged = fdc_obs::merge_trace_documents(&[p_doc.as_str(), f_doc.as_str()]);
    for label in ["\"primary\"", "\"follower\""] {
        assert!(
            merged.contains(label),
            "seed {seed:#x}: merged trace is missing the {label} process track"
        );
    }
    let merged_names = span_names_with_trace(&merged, &trace_hex);
    for needle in TRACED_INSERT_CHAIN {
        assert!(
            merged_names.iter().any(|n| n.contains(needle)),
            "seed {seed:#x}: merged trace lost the {needle} span of trace {trace_hex}: \
             {merged_names:?}"
        );
    }

    let p_replay = replay_wal(&p_dir.join("wal"));
    let f_replay = replay_wal(&f_dir.join("wal"));
    let f_last = f_replay.records.last().map_or(0, |(s, _)| *s);
    assert!(
        f_last > promoted_last_seq,
        "seed {seed:#x}: post-promotion writes never reached the promoted log \
         (last seq {f_last}, promoted at {promoted_last_seq})"
    );
    // 3: byte-identical prefix — the promoted log IS the primary's
    // recovered log, extended only by post-promotion writes.
    assert!(
        f_replay.records.len() >= p_replay.records.len(),
        "seed {seed:#x}: follower log shorter than the primary's"
    );
    assert_eq!(
        &f_replay.records[..p_replay.records.len()],
        &p_replay.records[..],
        "seed {seed:#x}: follower log diverges from the primary log"
    );

    // 1 + 2: every acked value (primary-side and post-promotion)
    // present exactly once.
    let mut sorted = f_replay.values.clone();
    sorted.sort_unstable();
    let len_before = sorted.len();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        len_before,
        "seed {seed:#x}: a write was duplicated in the promoted log"
    );
    for v in acked.iter().chain(&post_acked) {
        assert!(
            sorted.binary_search(v).is_ok(),
            "seed {seed:#x}: acknowledged write {} lost across failover \
             ({} acked on the primary, {} post-promotion, {} recovered)",
            f64::from_bits(*v),
            acked.len(),
            post_acked.len(),
            f_replay.values.len()
        );
    }

    // 4: two independent single-process replays of the promoted log,
    // from the same model configuration, produce byte-identical
    // catalogs and apply exactly the rows the log carries. (The advisor
    // itself is free to pick differently between runs, so the oracle
    // pins one configuration and varies only the replay.)
    let ds = tourism_proxy(1);
    let outcome = Advisor::new(
        &ds,
        AdvisorOptions {
            parallelism: Some(2),
            ..AdvisorOptions::default()
        },
    )
    .unwrap()
    .run();
    let f_opts = engine_opts(&f_dir);
    let fresh = || F2db::load(ds.clone(), &outcome.configuration).unwrap();
    let (oracle1, recovery1) = open_engine(fresh(), &f_opts).expect("oracle replay 1");
    assert_eq!(
        recovery1.wal.expect("wal attached").replayed_rows as usize,
        f_replay.values.len(),
        "seed {seed:#x}: oracle replay applied a different row count"
    );
    let bytes1 = oracle1.catalog().encode();
    drop(oracle1);
    let (oracle2, _) = open_engine(fresh(), &f_opts).expect("oracle replay 2");
    let bytes2 = oracle2.catalog().encode();
    assert_eq!(
        bytes1, bytes2,
        "seed {seed:#x}: catalog replay is not byte-deterministic"
    );
    drop(oracle2);

    if let Some(artifact_dir) = std::env::var("FDC_STRESS_ARTIFACT_DIR")
        .ok()
        .filter(|d| !d.is_empty())
    {
        std::fs::create_dir_all(&artifact_dir).expect("artifact dir");
        let mut lags = lag_samples.clone();
        lags.sort_unstable();
        let pct = |p: f64| -> u64 {
            if lags.is_empty() {
                0
            } else {
                lags[((lags.len() - 1) as f64 * p) as usize]
            }
        };
        let summary = format!(
            "{{\"seed\":\"{seed:#x}\",\"acked_primary\":{},\"acked_post_promotion\":{},\
             \"tail_records\":{tail_records},\"promoted_last_seq\":{promoted_last_seq},\
             \"promotion_ns\":{promotion_ns},\"promotion_wall_ns\":{promote_wall_ns},\
             \"lag_samples\":{},\"lag_p50\":{},\"lag_p95\":{},\"lag_max\":{},\
             \"follower_records\":{},\"primary_records\":{}}}\n",
            acked.len(),
            post_acked.len(),
            lags.len(),
            pct(0.50),
            pct(0.95),
            lags.last().copied().unwrap_or(0),
            f_replay.records.len(),
            p_replay.records.len(),
        );
        let artifact_dir = PathBuf::from(artifact_dir);
        std::fs::write(
            artifact_dir.join(format!("replica-kill-{seed:x}.json")),
            summary,
        )
        .expect("artifact write");
        // The merged two-process trace, loadable in Perfetto as-is.
        std::fs::write(
            artifact_dir.join(format!("replica-kill-trace-{seed:x}.json")),
            &merged,
        )
        .expect("merged trace artifact write");
    }

    std::fs::remove_dir_all(&p_dir).ok();
    std::fs::remove_dir_all(&f_dir).ok();
}

#[test]
fn replica_kill_seed_1_promotes_without_losing_acked_writes() {
    run_replica_kill(0xF2DB_FA11_0001);
}

#[test]
fn replica_kill_seed_2_promotes_without_losing_acked_writes() {
    run_replica_kill(0xF2DB_FA11_0002);
}

#[test]
fn replica_kill_seed_3_promotes_without_losing_acked_writes() {
    run_replica_kill(0xF2DB_FA11_0003);
}

/// Follower directories are poisoned against accidental writes: a
/// `REPLICA` marker in the WAL dir makes [`open_engine`] come up
/// read-only, every write is a typed [`fdc_f2db::F2dbError::ReadOnly`],
/// and deleting the marker (what promotion does) restores a writable
/// engine on the same directory.
#[test]
fn replica_marker_opens_the_engine_read_only_and_rejects_writes() {
    let dir = tmp_dir("replica_marker");
    let wal_dir = dir.join("wal");
    std::fs::create_dir_all(&wal_dir).unwrap();
    std::fs::write(fdc_serve::replica_marker_path(&wal_dir), b"").unwrap();
    let (db, recovery) = open_engine(build_engine(), &engine_opts(&dir)).expect("open with marker");
    assert!(recovery.replica_marker, "marker went undetected");
    assert!(db.is_read_only());
    let err = db.insert_batch(&[]).unwrap_err();
    assert!(
        matches!(err, fdc_f2db::F2dbError::ReadOnly(_)),
        "expected a typed ReadOnly rejection, got {err}"
    );
    drop(db);
    std::fs::remove_file(fdc_serve::replica_marker_path(&wal_dir)).unwrap();
    let (db, recovery) =
        open_engine(build_engine(), &engine_opts(&dir)).expect("reopen without marker");
    assert!(!recovery.replica_marker);
    assert!(!db.is_read_only());
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_seed_1_loses_no_acknowledged_write() {
    run_crash(0xF2DB_C4A5_0001);
}

#[test]
fn crash_seed_2_loses_no_acknowledged_write() {
    run_crash(0xF2DB_C4A5_0002);
}

#[test]
fn crash_seed_3_loses_no_acknowledged_write() {
    run_crash(0xF2DB_C4A5_0003);
}
