//! Graceful-drain stress: concurrent inserts racing shutdown must lose
//! no acknowledged write.
//!
//! The contract under test (ISSUE 4, satellite 3): a `202 Accepted` is
//! only sent after the rows are committed into the engine, the shutdown
//! drains the queue and flushes the coalescing buffer before persisting,
//! and the pending sidecar carries rows of the incomplete next time
//! stamp across the restart. So after `open_catalog` + sidecar restore,
//! every acknowledged row must be accounted for.
//!
//! Client workloads are seeded (`fdc-rng`, `concurrency_stress.rs`
//! style) so the values — and therefore any mismatch — are reproducible;
//! only the interleaving with shutdown varies run to run, and the
//! assertions hold for every interleaving.

mod common;

use common::{base_dims, full_round_body, http, row_json, small_db};
use fdc_f2db::F2db;
use fdc_rng::Rng;
use fdc_serve::{restore_pending, ServeOptions, Server};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn concurrent_inserts_racing_shutdown_lose_no_acked_write() {
    let db = small_db();
    let dims = base_dims(&db);
    let initial_len = db.dataset().series_len();
    let initial_advances = db.catalog().advances();

    let dir = std::env::temp_dir().join(format!("fdc_drain_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let catalog_path = dir.join("catalog.bin");
    let server = Server::start(
        Arc::clone(&db),
        0,
        ServeOptions {
            workers: 4,
            queue_depth: 64,
            coalesce_window: Duration::from_millis(1),
            deadline: Duration::from_secs(10),
            catalog_path: Some(catalog_path.clone()),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // 6 seeded clients hammer full-round batch inserts; each 202 is one
    // committed time stamp (a full round advances exactly once). The
    // main thread yanks the server out from under them mid-flight.
    let acked = Arc::new(AtomicU64::new(0));
    let timed_out = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..6)
        .map(|client| {
            let dims = dims.clone();
            let acked = Arc::clone(&acked);
            let timed_out = Arc::clone(&timed_out);
            std::thread::spawn(move || {
                let mut rng = Rng::seed_from_u64(0xD4A1_0000 + client);
                for _ in 0..40 {
                    let body = full_round_body(&dims, rng.f64_range(10.0, 500.0));
                    match http(addr, "POST", "/insert", &body) {
                        Ok(r) if r.status == 202 => {
                            acked.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok(r) if r.status == 503 => {
                            // Deadline hit; the rows will still commit,
                            // but the write was not acknowledged.
                            timed_out.fetch_add(1, Ordering::SeqCst);
                        }
                        // 429 or a connection refused/reset by the
                        // stopping server: the write was rejected before
                        // acknowledgement — clients stop here.
                        _ => break,
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(120));
    let report = server.shutdown().unwrap();
    for h in handles {
        h.join().unwrap();
    }
    let acked = acked.load(Ordering::SeqCst);
    let timed_out = timed_out.load(Ordering::SeqCst);
    assert!(acked > 0, "stress produced no acknowledged writes");

    // Every full-round 202 advanced the graph exactly once; unacked
    // deposits (503 timeouts, the final drain flush, a response lost on
    // the wire after its commit) may only ever add rounds — an
    // acknowledged one must never go missing.
    let committed = (db.dataset().series_len() - initial_len) as u64;
    assert!(
        committed >= acked,
        "{acked} acked rounds but only {committed} committed \
         ({timed_out} timed out, {} rows in final flush)",
        report.flushed_rows
    );
    assert_eq!(
        db.pending_inserts() as u64,
        report.saved_pending_rows as u64
    );

    // Restart: open the persisted catalog against the final data set and
    // re-apply the sidecar. The advance counter — persisted in the
    // catalog — must account for every acknowledged round.
    let restored = F2db::open_catalog(db.dataset().clone(), &catalog_path).unwrap();
    assert_eq!(restored.model_count(), db.model_count());
    assert_eq!(restored.catalog().advances(), initial_advances + committed);
    assert!(restored.catalog().advances() >= initial_advances + acked);
    let restored_rows = restore_pending(&restored, &catalog_path).unwrap();
    assert_eq!(restored_rows, report.saved_pending_rows);
    assert_eq!(restored.pending_inserts(), report.saved_pending_rows);

    // The restored engine answers queries.
    restored
        .query("SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '2 quarters'")
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Deterministic variant: acknowledged single-row inserts that do *not*
/// complete a time stamp survive the restart via the pending sidecar.
#[test]
fn acked_partial_rows_survive_restart_via_sidecar() {
    let db = small_db();
    let dims = base_dims(&db);
    assert!(dims.len() >= 3, "fixture must have several base series");
    let keep = dims.len() - 1; // one short of a full round: never advances

    let dir = std::env::temp_dir().join(format!("fdc_drain_partial_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let catalog_path = dir.join("catalog.bin");
    let server = Server::start(
        Arc::clone(&db),
        0,
        ServeOptions {
            coalesce_window: Duration::from_millis(1),
            catalog_path: Some(catalog_path.clone()),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let mut rng = Rng::seed_from_u64(0x51DE_CA12);
    let mut expected: Vec<f64> = Vec::new();
    for d in &dims[..keep] {
        let v = rng.f64_range(1.0, 9.0);
        let r = http(addr, "POST", "/insert", &row_json(d, v)).unwrap();
        assert_eq!(r.status, 202, "{}", r.body);
        expected.push(v);
    }
    let len_before = db.dataset().series_len();
    let report = server.shutdown().unwrap();
    assert_eq!(report.saved_pending_rows, keep);
    assert!(report.saved_catalog);
    // No advance happened (the round is incomplete) …
    assert_eq!(db.dataset().series_len(), len_before);

    // … yet after a restart every acknowledged row is back in pending,
    // and completing the round commits them.
    let restored = F2db::open_catalog(db.dataset().clone(), &catalog_path).unwrap();
    assert_eq!(restore_pending(&restored, &catalog_path).unwrap(), keep);
    assert_eq!(restored.pending_inserts(), keep);
    let last = restored.base_node_for(&dims[keep]).unwrap();
    assert!(restored.insert_value(last, 5.0).unwrap());
    assert_eq!(restored.dataset().series_len(), len_before + 1);
    std::fs::remove_dir_all(&dir).ok();
}
