//! # fdc-rng — deterministic pseudo-random numbers without dependencies
//!
//! Every stochastic component of the workspace (synthetic data
//! generation, simulated annealing, multi-source proposal sampling,
//! benchmark workloads) needs reproducible randomness. This crate
//! provides a single small generator — xoshiro256\*\* seeded through
//! splitmix64 — so runs are bit-for-bit repeatable across platforms and
//! the workspace stays free of external dependencies.
//!
//! The generator is *not* cryptographically secure and must never be
//! used for anything security-sensitive.

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// State is seeded via splitmix64 so that any `u64` seed (including 0)
/// produces a well-mixed initial state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// Expands a seed into one 64-bit state word (splitmix64 step).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Equal seeds produce
    /// identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent generator for a parallel sub-task. The
    /// child stream is decorrelated from the parent by re-mixing the
    /// parent's next output with the salt.
    pub fn fork(&mut self, salt: u64) -> Rng {
        Rng::seed_from_u64(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output (xoshiro256\*\* scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. `lo` must be `<= hi`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is
    /// negligible for the small ranges used in this workspace but the
    /// widening multiply avoids it almost entirely anyway.
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize_below(0)");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.usize_below(hi - lo)
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Standard normal deviate via the Box–Muller transform (polar-free
    /// form; two uniforms per pair, the spare is discarded for
    /// simplicity — callers that need pairs can cache their own).
    pub fn standard_normal(&mut self) -> f64 {
        // Guard against ln(0).
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_produce_equal_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = Rng::seed_from_u64(0);
        // A naive xoshiro seeded with all zeros would emit only zeros.
        assert!((0..16).any(|_| r.next_u64() != 0));
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.f64_range(-3.5, 11.25);
            assert!((-3.5..11.25).contains(&v));
        }
    }

    #[test]
    fn usize_below_covers_all_residues() {
        let mut r = Rng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.usize_below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn usize_range_respects_bounds() {
        let mut r = Rng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v = r.usize_range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn fork_decorrelates_from_parent() {
        let mut parent = Rng::seed_from_u64(17);
        let mut child = parent.fork(1);
        let matches = (0..128)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn standard_normal_has_sane_moments() {
        let mut r = Rng::seed_from_u64(19);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
