//! Property tests for recovery and fault-injection tests for the
//! append path.
//!
//! The recovery property (the heart of the durability contract): for a
//! log image cut off at *any* byte offset — every possible torn write —
//! replay recovers **exactly the maximal prefix of whole records**, no
//! more, no less, and the log continues appending from there. The
//! companion property pins the other side of the contract: once the
//! checkpoint watermark covers a record, flipping *any* byte of it
//! turns recovery into a hard, versioned error instead of silent loss.
//!
//! The fault-injection tests drive the [`WalStorage`] seam with the
//! three classic disk betrayals: a short write that errors mid-frame, a
//! *lying* write that reports success but drops bytes, and an fsync
//! error. In every case the log must poison itself (never acknowledge
//! past a failure) and recovery must come back to a consistent prefix.

use fdc_rng::Rng;
use fdc_wal::{
    decode_chunk, encode_chunk, encode_frame, sync_dir, ShipError, Wal, WalError, WalFile,
    WalOptions, WalStorage, SEGMENT_HEADER, SHIP_VERSION, WAL_VERSION,
};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fdc_prop_wal_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The 8-byte header every segment file starts with.
fn segment_header() -> Vec<u8> {
    let mut h = Vec::with_capacity(SEGMENT_HEADER);
    h.extend_from_slice(b"FDCWAL");
    h.extend_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// Random payloads for one seed: sizes 0..64, arbitrary bytes.
fn random_payloads(seed: u64, n: usize) -> Vec<Vec<u8>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.usize_below(64);
            (0..len).map(|_| rng.next_u64() as u8).collect()
        })
        .collect()
}

/// Builds a single-segment log image: header + frames for `payloads`
/// with sequence numbers from 1. Returns `(image, frame_ends)` where
/// `frame_ends[i]` is the offset just past frame `i`.
fn build_image(payloads: &[Vec<u8>]) -> (Vec<u8>, Vec<usize>) {
    let mut image = segment_header();
    let mut ends = Vec::with_capacity(payloads.len());
    for (i, p) in payloads.iter().enumerate() {
        image.extend_from_slice(&encode_frame(i as u64 + 1, p));
        ends.push(image.len());
    }
    (image, ends)
}

#[test]
fn truncation_at_every_offset_recovers_exactly_the_durable_prefix() {
    for seed in [0xFDC_0A11u64, 0xFDC_0A22, 0xFDC_0A33] {
        let payloads = random_payloads(seed, 10);
        let (image, frame_ends) = build_image(&payloads);
        let dir = tmp_dir(&format!("cut_{seed:x}"));
        // fsync off: the property is about the bytes on disk, and the
        // ~500 opens per seed should not each pay a real disk flush.
        let opts = || WalOptions {
            fsync: false,
            ..WalOptions::default()
        };
        for cut in 0..=image.len() {
            fs::create_dir_all(&dir).unwrap();
            fs::write(dir.join("wal-0000000000000001.log"), &image[..cut]).unwrap();
            let (wal, rec) = Wal::open(&dir, opts())
                .unwrap_or_else(|e| panic!("seed {seed:#x} cut {cut}: open failed: {e}"));
            // The maximal prefix of whole frames that fit in `cut` bytes.
            let expect = frame_ends.iter().filter(|&&end| end <= cut).count();
            assert_eq!(
                rec.records.len(),
                expect,
                "seed {seed:#x} cut {cut}: recovered {} records, expected {expect}",
                rec.records.len()
            );
            for (i, (seq, payload)) in rec.records.iter().enumerate() {
                assert_eq!(*seq, i as u64 + 1);
                assert_eq!(payload, &payloads[i], "seed {seed:#x} cut {cut} record {i}");
            }
            // Whatever was past the last whole frame is physically
            // gone. A cut inside the 8-byte segment header drops the
            // whole shell; otherwise the header survives.
            let expect_truncated = match expect {
                0 if cut < SEGMENT_HEADER => cut,
                0 => cut - SEGMENT_HEADER,
                n => cut - frame_ends[n - 1],
            };
            assert_eq!(
                rec.truncated_bytes, expect_truncated as u64,
                "seed {seed:#x} cut {cut}"
            );
            // The log continues from the surviving prefix.
            let next = wal.append(b"resume").unwrap();
            assert_eq!(next, expect as u64 + 1, "seed {seed:#x} cut {cut}");
            drop(wal);
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn flipping_any_byte_of_a_checkpointed_record_is_a_versioned_hard_error() {
    let payloads = random_payloads(0xFDC_0B44, 3);
    let (image, frame_ends) = build_image(&payloads);
    let dir = tmp_dir("flip");
    // Hand-built fixture: segment bytes assembled here, watermark
    // covering every record written the way `checkpoint` writes it.
    for flip_at in SEGMENT_HEADER..frame_ends[frame_ends.len() - 1] {
        fs::create_dir_all(&dir).unwrap();
        let mut bytes = image.clone();
        bytes[flip_at] ^= 0x40;
        fs::write(dir.join("wal-0000000000000001.log"), &bytes).unwrap();
        fs::write(
            dir.join("wal.checkpoint"),
            format!("fdc-wal-checkpoint v1\n{}\n", payloads.len()),
        )
        .unwrap();
        let err = match Wal::open(&dir, WalOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("flip at {flip_at} went unnoticed"),
        };
        match err {
            WalError::Corrupt { version, detail } => {
                assert_eq!(version, WAL_VERSION, "flip at {flip_at}");
                assert!(
                    detail.contains("watermark"),
                    "flip at {flip_at}: unexpected detail {detail}"
                );
            }
            other => panic!("flip at {flip_at}: expected Corrupt, got {other}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Fault injection through the WalStorage seam
// ---------------------------------------------------------------------------

/// How a [`FaultFile`] betrays its caller.
#[derive(Clone, Copy)]
enum Fault {
    /// `write_all` lands only the first half of the buffer and errors.
    ShortWrite,
    /// `write_all` lands only the first half but reports success.
    LyingWrite,
    /// `sync_all` errors.
    SyncError,
}

/// Shared fault plan: inject `fault` starting at the Nth `write_all`
/// (counting across all files, segment headers included) or, for
/// [`Fault::SyncError`], at the Nth `sync_all`.
struct FaultState {
    fault: Fault,
    after: usize,
    writes: AtomicUsize,
    syncs: AtomicUsize,
}

struct FaultStorage {
    state: Arc<FaultState>,
}

impl FaultStorage {
    fn new(fault: Fault, after: usize) -> FaultStorage {
        FaultStorage {
            state: Arc::new(FaultState {
                fault,
                after,
                writes: AtomicUsize::new(0),
                syncs: AtomicUsize::new(0),
            }),
        }
    }
}

struct FaultFile {
    inner: fs::File,
    state: Arc<FaultState>,
}

impl WalFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let n = self.state.writes.fetch_add(1, Ordering::SeqCst);
        let inject = n >= self.state.after;
        match self.state.fault {
            Fault::ShortWrite if inject => {
                io::Write::write_all(&mut self.inner, &buf[..buf.len() / 2])?;
                Err(io::Error::other("injected short write"))
            }
            Fault::LyingWrite if inject => {
                io::Write::write_all(&mut self.inner, &buf[..buf.len() / 2])
            }
            _ => io::Write::write_all(&mut self.inner, buf),
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let n = self.state.syncs.fetch_add(1, Ordering::SeqCst);
        match self.state.fault {
            Fault::SyncError if n >= self.state.after => {
                Err(io::Error::other("injected fsync error"))
            }
            _ => self.inner.sync_all(),
        }
    }
}

impl WalStorage for FaultStorage {
    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(FaultFile {
            inner: fs::File::create(path)?,
            state: Arc::clone(&self.state),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(FaultFile {
            inner: fs::OpenOptions::new().append(true).open(path)?,
            state: Arc::clone(&self.state),
        }))
    }
}

fn faulty_opts(fault: Fault, after: usize) -> WalOptions {
    WalOptions {
        storage: Arc::new(FaultStorage::new(fault, after)),
        ..WalOptions::default()
    }
}

#[test]
fn short_write_poisons_the_log_and_recovery_keeps_the_whole_prefix() {
    let dir = tmp_dir("short_write");
    {
        // Write #0 is the segment header; appends are #1, #2, #3 — the
        // third append dies half-written.
        let (wal, _) = Wal::open(&dir, faulty_opts(Fault::ShortWrite, 3)).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"second").unwrap();
        let err = wal.append(b"half-lands").unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "{err}");
        // The log never acknowledges past a failure.
        let err = wal.append(b"after the failure").unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
    }
    // Recovery truncates the half-written frame, keeps both good ones.
    let (wal, rec) = Wal::open(&dir, WalOptions::default()).unwrap();
    assert_eq!(
        rec.records,
        vec![(1, b"first".to_vec()), (2, b"second".to_vec())]
    );
    assert!(rec.truncated_bytes > 0);
    assert_eq!(wal.append(b"healed").unwrap(), 3);
    drop(wal);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn lying_write_is_caught_by_the_checksum_on_replay() {
    let dir = tmp_dir("lying_write");
    {
        // The second append reports success but lands only half its
        // frame — the classic firmware lie fsync cannot catch.
        let (wal, _) = Wal::open(&dir, faulty_opts(Fault::LyingWrite, 2)).unwrap();
        wal.append(b"truthful").unwrap();
        wal.append(b"liar liar").unwrap();
    }
    let (_, rec) = Wal::open(&dir, WalOptions::default()).unwrap();
    // The torn frame fails its checksum and is dropped; the prefix
    // before the lie survives.
    assert_eq!(rec.records, vec![(1, b"truthful".to_vec())]);
    assert!(rec.truncated_bytes > 0);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsync_error_fails_the_acknowledgement_and_poisons_the_log() {
    let dir = tmp_dir("sync_error");
    let (wal, _) = Wal::open(&dir, faulty_opts(Fault::SyncError, 0)).unwrap();
    let err = wal.append(b"never durable").unwrap_err();
    assert!(err.to_string().contains("fsync error"), "{err}");
    // Poisoned: later appends fail fast without touching the file.
    let err = wal.append(b"still down").unwrap_err();
    assert!(err.to_string().contains("fsync error"), "{err}");
    drop(wal);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn segment_rotation_image_survives_truncation_too() {
    // The single-segment property above, but across a rotation: build a
    // real multi-segment log, then cut the *last* segment at every
    // offset and check the earlier segments always replay whole.
    let dir = tmp_dir("multi_seg");
    let opts = || WalOptions {
        segment_bytes: 96,
        fsync: false,
        ..WalOptions::default()
    };
    {
        let (wal, _) = Wal::open(&dir, opts()).unwrap();
        for i in 0..6u8 {
            wal.append(&[i; 40]).unwrap();
        }
        assert!(wal.stats().segments >= 3, "{:?}", wal.stats());
    }
    let mut segments: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .collect();
    segments.sort();
    let last = segments.last().unwrap().clone();
    let last_bytes = fs::read(&last).unwrap();
    let prior_records: usize = segments[..segments.len() - 1]
        .iter()
        .map(|p| count_frames(&fs::read(p).unwrap()))
        .sum();
    for cut in 0..=last_bytes.len() {
        let scratch = tmp_dir("multi_seg_cut");
        fs::create_dir_all(&scratch).unwrap();
        for p in &segments[..segments.len() - 1] {
            fs::copy(p, scratch.join(p.file_name().unwrap())).unwrap();
        }
        fs::write(scratch.join(last.file_name().unwrap()), &last_bytes[..cut]).unwrap();
        sync_dir(&scratch).unwrap();
        let (_, rec) =
            Wal::open(&scratch, opts()).unwrap_or_else(|e| panic!("cut {cut}: open failed: {e}"));
        let expect = prior_records + count_frames(&last_bytes[..cut]);
        assert_eq!(rec.records.len(), expect, "cut {cut}");
        // Contiguous sequence numbers from 1, across the segment files.
        for (i, (seq, _)) in rec.records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1, "cut {cut}");
        }
        fs::remove_dir_all(&scratch).unwrap();
    }
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Log shipping: the replay property and fault injection on the fetch path
// ---------------------------------------------------------------------------

/// The replay property for shipping: for every torn primary image
/// (the truncate-at-every-offset generator above), any follower
/// segment size, and any per-fetch byte budget, `ship → apply`
/// reconstructs **exactly** the records a local replay of the primary
/// recovers — same sequences, same payloads, nothing skipped or
/// invented at chunk or segment boundaries.
#[test]
fn ship_apply_replays_identically_to_local_replay_for_every_torn_image() {
    for seed in [0xFDC_5417u64, 0xFDC_5428] {
        let mut rng = Rng::seed_from_u64(seed ^ 0x5419);
        let payloads = random_payloads(seed, 8);
        let (image, _) = build_image(&payloads);
        let p_dir = tmp_dir(&format!("ship_p_{seed:x}"));
        let f_dir = tmp_dir(&format!("ship_f_{seed:x}"));
        let opts = |segment_bytes| WalOptions {
            segment_bytes,
            fsync: false,
            ..WalOptions::default()
        };
        for cut in 0..=image.len() {
            fs::create_dir_all(&p_dir).unwrap();
            fs::write(p_dir.join("wal-0000000000000001.log"), &image[..cut]).unwrap();
            let (primary, p_rec) = Wal::open(&p_dir, opts(1 << 20))
                .unwrap_or_else(|e| panic!("seed {seed:#x} cut {cut}: primary open: {e}"));
            // The follower rotates on different boundaries than the
            // primary ever did.
            let (follower, _) = Wal::open(&f_dir, opts(48 + rng.next_u64() % 200)).unwrap();
            let mut applied = 0;
            while applied < primary.stats().durable_seq {
                let budget = 1 + rng.usize_below(96);
                let chunk = primary.ship_chunk(applied, budget).unwrap();
                assert!(
                    !chunk.frames.is_empty(),
                    "seed {seed:#x} cut {cut}: shipping stalled at {applied}"
                );
                applied = follower.apply_chunk(&chunk).unwrap();
            }
            drop(follower);
            let (_, f_rec) = Wal::open(&f_dir, opts(1 << 20)).unwrap();
            assert_eq!(f_rec.records, p_rec.records, "seed {seed:#x} cut {cut}");
            drop(primary);
            fs::remove_dir_all(&p_dir).unwrap();
            fs::remove_dir_all(&f_dir).unwrap();
        }
    }
}

/// A fetch response cut off at any byte — a dropped connection, a
/// proxy timeout — must decode to a versioned error, never to a
/// shorter-but-valid chunk the follower would silently apply. The
/// chunk here comes off a real rotated log, so frame boundaries cross
/// segment files.
#[test]
fn a_torn_fetch_response_from_a_rotated_log_is_a_versioned_error() {
    let dir = tmp_dir("ship_torn_fetch");
    let (wal, _) = Wal::open(
        &dir,
        WalOptions {
            segment_bytes: 96,
            fsync: false,
            ..WalOptions::default()
        },
    )
    .unwrap();
    let payloads = random_payloads(0xFDC_F417, 6);
    for p in &payloads {
        wal.append(p).unwrap();
    }
    assert!(wal.stats().segments >= 2, "{:?}", wal.stats());
    let chunk = wal.ship_chunk(0, usize::MAX).unwrap();
    assert_eq!(chunk.frames.len(), payloads.len());
    let wire = encode_chunk(&chunk);
    assert_eq!(decode_chunk(&wire).unwrap(), chunk);
    for cut in 0..wire.len() {
        match decode_chunk(&wire[..cut]) {
            Ok(c) => panic!(
                "cut {cut}: decoded {} frames from a torn response",
                c.frames.len()
            ),
            Err(ShipError::Truncated { version, .. } | ShipError::Corrupt { version, .. }) => {
                assert_eq!(version, SHIP_VERSION, "cut {cut}");
            }
            Err(other) => panic!("cut {cut}: expected a versioned decode error, got {other}"),
        }
    }
    drop(wal);
    fs::remove_dir_all(&dir).ok();
}

/// Replay attack / duplicate delivery: applying the same chunk twice
/// is a typed [`ShipError::StaleSequence`] and appends nothing — the
/// follower's log is byte-for-byte what a single delivery leaves.
#[test]
fn a_replayed_chunk_is_a_stale_sequence_error_and_appends_nothing() {
    let p_dir = tmp_dir("ship_replay_p");
    let f_dir = tmp_dir("ship_replay_f");
    let opts = || WalOptions {
        fsync: false,
        ..WalOptions::default()
    };
    let (primary, _) = Wal::open(&p_dir, opts()).unwrap();
    let payloads = random_payloads(0xFDC_D0B1, 6);
    for p in &payloads {
        primary.append(p).unwrap();
    }
    let chunk = primary.ship_chunk(0, usize::MAX).unwrap();
    let (follower, _) = Wal::open(&f_dir, opts()).unwrap();
    assert_eq!(follower.apply_chunk(&chunk).unwrap(), 6);
    match follower.apply_chunk(&chunk) {
        Err(ShipError::StaleSequence {
            version,
            expected,
            found,
        }) => {
            assert_eq!(version, SHIP_VERSION);
            assert_eq!(expected, 7);
            assert_eq!(found, 1);
        }
        other => panic!("expected StaleSequence, got {other:?}"),
    }
    assert_eq!(follower.stats().last_seq, 6);
    drop(follower);
    let (_, f_rec) = Wal::open(&f_dir, opts()).unwrap();
    let expected: Vec<(u64, Vec<u8>)> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| (i as u64 + 1, p.clone()))
        .collect();
    assert_eq!(f_rec.records, expected);
    drop(primary);
    fs::remove_dir_all(&p_dir).ok();
    fs::remove_dir_all(&f_dir).ok();
}

/// A follower that falls behind a checkpoint-truncated segment gets a
/// typed [`ShipError::WatermarkGap`] carrying the watermark it must
/// rebase to — never frames that silently start past its position.
#[test]
fn fetching_past_a_checkpoint_truncated_segment_is_a_watermark_gap() {
    let dir = tmp_dir("ship_gap");
    let (wal, _) = Wal::open(
        &dir,
        WalOptions {
            segment_bytes: 96,
            fsync: false,
            ..WalOptions::default()
        },
    )
    .unwrap();
    for i in 0..8u8 {
        wal.append(&[i; 40]).unwrap();
    }
    let truncated = wal.checkpoint(6).unwrap();
    assert!(truncated > 0, "checkpoint removed no segments");
    match wal.ship_chunk(0, usize::MAX) {
        Err(ShipError::WatermarkGap {
            version,
            requested_after,
            checkpoint_seq,
        }) => {
            assert_eq!(version, SHIP_VERSION);
            assert_eq!(requested_after, 0);
            assert_eq!(checkpoint_seq, 6);
        }
        other => panic!("expected WatermarkGap, got {other:?}"),
    }
    // Rebasing to the advertised watermark resumes cleanly.
    let chunk = wal.ship_chunk(6, usize::MAX).unwrap();
    assert_eq!(
        chunk.frames.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        vec![7, 8]
    );
    drop(wal);
    fs::remove_dir_all(&dir).ok();
}

/// Fault injection through the [`WalStorage`] seam on the *apply*
/// side: a short write mid-chunk surfaces as [`ShipError::Io`], the
/// follower's log recovers to a contiguous prefix of the primary's
/// records (no silent gap), and shipping resumes from the surviving
/// watermark to full catch-up.
#[test]
fn apply_chunk_over_faulty_storage_fails_loudly_and_resumes_after_repair() {
    let p_dir = tmp_dir("ship_fault_p");
    let f_dir = tmp_dir("ship_fault_f");
    let (primary, _) = Wal::open(
        &p_dir,
        WalOptions {
            fsync: false,
            ..WalOptions::default()
        },
    )
    .unwrap();
    let payloads = random_payloads(0xFDC_FA17, 6);
    for p in &payloads {
        primary.append(p).unwrap();
    }
    let expected: Vec<(u64, Vec<u8>)> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| (i as u64 + 1, p.clone()))
        .collect();
    let chunk = primary.ship_chunk(0, usize::MAX).unwrap();
    {
        // Write #0 is the segment header; the first frame write after
        // it dies half-written, whatever batching the group commit
        // chose.
        let (follower, _) = Wal::open(&f_dir, faulty_opts(Fault::ShortWrite, 1)).unwrap();
        let err = follower.apply_chunk(&chunk).unwrap_err();
        assert!(matches!(err, ShipError::Io(_)), "{err}");
    }
    // No silent gap: recovery keeps a contiguous prefix of the
    // primary's records and nothing else.
    let (follower, f_rec) = Wal::open(
        &f_dir,
        WalOptions {
            fsync: false,
            ..WalOptions::default()
        },
    )
    .unwrap();
    let kept = f_rec.records.len();
    assert!(kept < expected.len(), "the injected fault lost nothing?");
    assert_eq!(f_rec.records, expected[..kept]);
    // Resume from the surviving watermark; the follower catches up to
    // an identical log.
    let resume = primary.ship_chunk(f_rec.last_seq, usize::MAX).unwrap();
    assert_eq!(follower.apply_chunk(&resume).unwrap(), 6);
    drop(follower);
    let (_, f_rec) = Wal::open(
        &f_dir,
        WalOptions {
            fsync: false,
            ..WalOptions::default()
        },
    )
    .unwrap();
    assert_eq!(f_rec.records, expected);
    drop(primary);
    fs::remove_dir_all(&p_dir).ok();
    fs::remove_dir_all(&f_dir).ok();
}

/// Whole frames decodable from a segment image (header included).
fn count_frames(bytes: &[u8]) -> usize {
    if bytes.len() < SEGMENT_HEADER {
        return 0;
    }
    let mut offset = SEGMENT_HEADER;
    let mut n = 0;
    while offset < bytes.len() {
        match fdc_wal::decode_frame(&bytes[offset..], None) {
            Ok(frame) => {
                offset += frame.encoded_len;
                n += 1;
            }
            Err(_) => break,
        }
    }
    n
}
