//! Log shipping: the wire chunk a primary serves to follower replicas
//! and the follower-side apply path.
//!
//! A follower tracks an *applied watermark* — the highest sequence it
//! has durably appended to its own log — and repeatedly asks the
//! primary for "everything past `after`". The primary answers with a
//! [`ShipChunk`]: a versioned header carrying its durable and
//! checkpoint watermarks plus a contiguous run of re-encoded frames
//! starting at `after + 1`. Three invariants keep the protocol honest:
//!
//! * **Only durable frames ship.** [`Wal::ship_chunk`] never serves a
//!   frame past the primary's fsync watermark, so a follower can never
//!   hold a record the primary might still lose in a crash — the
//!   follower's log is always a prefix of the primary's durable log,
//!   which is what makes promoted-follower state byte-deterministic.
//! * **Gaps are errors, never silence.** A fetch whose `after` lies
//!   below the primary's checkpoint watermark would skip records that
//!   were truncated away; that is [`ShipError::WatermarkGap`], and the
//!   follower must bootstrap from a checkpoint image instead. On the
//!   apply side a chunk that rewinds ([`ShipError::StaleSequence`]) or
//!   skips ahead ([`ShipError::SequenceGap`]) is rejected before any
//!   frame lands.
//! * **Every frame is re-verified on apply.** [`decode_chunk`] checks
//!   the chunk header version, each frame's CRC, and sequence
//!   contiguity, so a truncated or bit-flipped fetch response fails
//!   with a versioned error instead of poisoning the follower log.

use std::fmt;
use std::fs;
use std::io;

use crate::record;
use crate::wal::{segment_path, Wal, WalError, SEGMENT_HEADER};

/// Wire version of the ship chunk format, embedded in every chunk
/// header and named by every [`ShipError`].
pub const SHIP_VERSION: u16 = 1;

/// `b"FDCSHIP\0"` + version + durable + checkpoint + first_seq + count.
pub const CHUNK_HEADER: usize = 8 + 2 + 8 + 8 + 8 + 4;

const CHUNK_MAGIC: &[u8; 8] = b"FDCSHIP\0";

/// Everything that can go wrong shipping or applying a chunk. Every
/// variant names the protocol version so an operator can tell a
/// version skew from damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipError {
    /// The chunk bytes end mid-header or mid-frame (a truncated fetch
    /// response).
    Truncated {
        /// The reader's protocol version ([`SHIP_VERSION`]).
        version: u16,
        /// What was missing.
        detail: String,
    },
    /// The chunk was written by a protocol version this reader does not
    /// speak.
    UnsupportedVersion {
        /// The reader's protocol version.
        version: u16,
        /// The version found in the chunk header.
        found: u16,
    },
    /// The chunk is structurally damaged: bad magic, a frame that fails
    /// its CRC, or trailing garbage after the advertised frame count.
    Corrupt {
        /// The reader's protocol version.
        version: u16,
        /// What was found and where.
        detail: String,
    },
    /// The requested frames were already truncated by a primary
    /// checkpoint — the follower is too far behind to catch up by log
    /// shipping alone and must re-bootstrap from a checkpoint image.
    WatermarkGap {
        /// The reader's protocol version.
        version: u16,
        /// The follower's applied watermark in the failed fetch.
        requested_after: u64,
        /// The primary's checkpoint watermark; frames at or below it
        /// may no longer exist.
        checkpoint_seq: u64,
    },
    /// The chunk replays a frame at or before the follower's applied
    /// watermark (a stale or duplicated response).
    StaleSequence {
        /// The reader's protocol version.
        version: u16,
        /// The sequence the follower expected next.
        expected: u64,
        /// The stale sequence the chunk starts at.
        found: u64,
    },
    /// The chunk skips past the follower's next expected sequence —
    /// applying it would leave a hole in the follower log.
    SequenceGap {
        /// The reader's protocol version.
        version: u16,
        /// The sequence the follower expected next.
        expected: u64,
        /// The sequence the chunk starts at.
        found: u64,
    },
    /// An I/O error reading segments or appending to the follower log.
    Io(String),
}

impl fmt::Display for ShipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShipError::Truncated { version, detail } => {
                write!(f, "ship chunk truncated (protocol v{version}): {detail}")
            }
            ShipError::UnsupportedVersion { version, found } => write!(
                f,
                "ship chunk has protocol version {found}, reader speaks v{version}"
            ),
            ShipError::Corrupt { version, detail } => {
                write!(f, "ship chunk corrupt (protocol v{version}): {detail}")
            }
            ShipError::WatermarkGap {
                version,
                requested_after,
                checkpoint_seq,
            } => write!(
                f,
                "ship fetch after seq {requested_after} falls below the primary's checkpoint \
                 watermark {checkpoint_seq} (protocol v{version}): the frames were truncated; \
                 re-bootstrap the follower from a checkpoint image"
            ),
            ShipError::StaleSequence {
                version,
                expected,
                found,
            } => write!(
                f,
                "ship chunk starts at stale seq {found}, follower expects {expected} \
                 (protocol v{version})"
            ),
            ShipError::SequenceGap {
                version,
                expected,
                found,
            } => write!(
                f,
                "ship chunk starts at seq {found}, skipping past the follower's next \
                 expected seq {expected} (protocol v{version})"
            ),
            ShipError::Io(msg) => write!(f, "ship i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ShipError {}

impl From<io::Error> for ShipError {
    fn from(e: io::Error) -> ShipError {
        ShipError::Io(e.to_string())
    }
}

impl From<WalError> for ShipError {
    fn from(e: WalError) -> ShipError {
        match e {
            WalError::Io(msg) => ShipError::Io(msg),
            WalError::Corrupt { detail, .. } => ShipError::Corrupt {
                version: SHIP_VERSION,
                detail,
            },
        }
    }
}

fn corrupt(detail: impl Into<String>) -> ShipError {
    ShipError::Corrupt {
        version: SHIP_VERSION,
        detail: detail.into(),
    }
}

fn truncated(detail: impl Into<String>) -> ShipError {
    ShipError::Truncated {
        version: SHIP_VERSION,
        detail: detail.into(),
    }
}

/// One fetch response: the primary's watermarks plus a contiguous run
/// of `(seq, payload)` frames. `frames` may be empty when the follower
/// is caught up — the watermarks still advance so lag can be measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipChunk {
    /// The primary's durable (fsynced) watermark at snapshot time.
    pub durable_seq: u64,
    /// The primary's checkpoint watermark at snapshot time.
    pub checkpoint_seq: u64,
    /// Contiguous frames, each `(seq, payload)`, starting at the
    /// requested `after + 1`.
    pub frames: Vec<(u64, Vec<u8>)>,
}

impl ShipChunk {
    /// The sequence of the first frame, if any.
    pub fn first_seq(&self) -> Option<u64> {
        self.frames.first().map(|(s, _)| *s)
    }

    /// The sequence of the last frame, if any.
    pub fn last_seq(&self) -> Option<u64> {
        self.frames.last().map(|(s, _)| *s)
    }
}

/// Serializes a chunk: magic, version, watermarks, frame count, then
/// each frame in the standard CRC wal-frame encoding. Deterministic —
/// the same frames always produce the same bytes.
pub fn encode_chunk(chunk: &ShipChunk) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        CHUNK_HEADER
            + chunk
                .frames
                .iter()
                .map(|(_, p)| record::FRAME_HEADER + p.len())
                .sum::<usize>(),
    );
    out.extend_from_slice(CHUNK_MAGIC);
    out.extend_from_slice(&SHIP_VERSION.to_le_bytes());
    out.extend_from_slice(&chunk.durable_seq.to_le_bytes());
    out.extend_from_slice(&chunk.checkpoint_seq.to_le_bytes());
    let first = chunk.first_seq().unwrap_or(0);
    out.extend_from_slice(&first.to_le_bytes());
    out.extend_from_slice(&(chunk.frames.len() as u32).to_le_bytes());
    for (seq, payload) in &chunk.frames {
        out.extend_from_slice(&record::encode_frame(*seq, payload));
    }
    out
}

/// Decodes and fully verifies a chunk: header magic and version, every
/// frame's length and CRC, and sequence contiguity from the advertised
/// first sequence. A response cut short mid-frame is
/// [`ShipError::Truncated`]; trailing bytes past the advertised count
/// are [`ShipError::Corrupt`].
pub fn decode_chunk(bytes: &[u8]) -> Result<ShipChunk, ShipError> {
    if bytes.len() < CHUNK_HEADER {
        return Err(truncated(format!(
            "{} bytes is shorter than the {CHUNK_HEADER}-byte chunk header",
            bytes.len()
        )));
    }
    if &bytes[..8] != CHUNK_MAGIC {
        return Err(corrupt("chunk has bad magic"));
    }
    let found = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    if found != SHIP_VERSION {
        return Err(ShipError::UnsupportedVersion {
            version: SHIP_VERSION,
            found,
        });
    }
    let durable_seq = u64::from_le_bytes(bytes[10..18].try_into().unwrap());
    let checkpoint_seq = u64::from_le_bytes(bytes[18..26].try_into().unwrap());
    let first_seq = u64::from_le_bytes(bytes[26..34].try_into().unwrap());
    let count = u32::from_le_bytes(bytes[34..38].try_into().unwrap()) as usize;
    let mut frames = Vec::with_capacity(count);
    let mut offset = CHUNK_HEADER;
    for i in 0..count {
        let seq = first_seq + i as u64;
        let frame = record::decode_frame(&bytes[offset..], Some(seq)).map_err(|e| match e {
            record::FrameError::TruncatedHeader | record::FrameError::TruncatedBody => truncated(
                format!("chunk ends mid-frame at offset {offset} (frame {i} of {count})"),
            ),
            other => corrupt(format!(
                "frame {i} of {count} at offset {offset} (seq {seq}): {other:?}"
            )),
        })?;
        offset += frame.encoded_len;
        frames.push((seq, frame.payload));
    }
    if offset != bytes.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after the {count} advertised frames",
            bytes.len() - offset
        )));
    }
    Ok(ShipChunk {
        durable_seq,
        checkpoint_seq,
        frames,
    })
}

impl Wal {
    /// Primary side of log shipping: collects durable frames with
    /// sequence greater than `after`, stopping once `max_bytes` of
    /// frame bytes are gathered (always at least one frame when any is
    /// available). Returns [`ShipError::WatermarkGap`] when `after`
    /// falls below the checkpoint watermark — those frames may have
    /// been truncated, so resuming silently would skip records.
    ///
    /// Segment files are read outside the log mutex; only the segment
    /// list and watermarks are snapshotted under it.
    pub fn ship_chunk(&self, after: u64, max_bytes: usize) -> Result<ShipChunk, ShipError> {
        let (segments, durable_seq, checkpoint_seq) = self.ship_snapshot();
        if after < checkpoint_seq {
            return Err(ShipError::WatermarkGap {
                version: SHIP_VERSION,
                requested_after: after,
                checkpoint_seq,
            });
        }
        let mut chunk = ShipChunk {
            durable_seq,
            checkpoint_seq,
            frames: Vec::new(),
        };
        if after >= durable_seq {
            return Ok(chunk);
        }
        let mut want = after + 1;
        let mut budget = 0usize;
        'segments: for (i, first) in segments.iter().enumerate() {
            // Skip segments that end before the first wanted frame.
            if let Some(next_first) = segments.get(i + 1) {
                if *next_first <= want {
                    continue;
                }
            }
            let path = segment_path(self.dir(), *first);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // A checkpoint truncated this segment between the
                    // snapshot and the read; report the gap with the
                    // current watermark.
                    let (_, _, cp) = self.ship_snapshot();
                    return Err(ShipError::WatermarkGap {
                        version: SHIP_VERSION,
                        requested_after: after,
                        checkpoint_seq: cp,
                    });
                }
                Err(e) => return Err(e.into()),
            };
            if bytes.len() < SEGMENT_HEADER {
                return Err(corrupt(format!(
                    "segment {} too short for its header",
                    path.display()
                )));
            }
            let mut offset = SEGMENT_HEADER;
            let mut seq = *first;
            while offset < bytes.len() {
                if seq > durable_seq {
                    break 'segments;
                }
                let frame = record::decode_frame(&bytes[offset..], Some(seq)).map_err(|e| {
                    corrupt(format!(
                        "durable frame failed to decode in {} at offset {offset} \
                         (seq {seq}): {e:?}",
                        path.display()
                    ))
                })?;
                offset += frame.encoded_len;
                if seq >= want {
                    let frame_bytes = record::FRAME_HEADER + frame.payload.len();
                    if budget + frame_bytes > max_bytes && !chunk.frames.is_empty() {
                        break 'segments;
                    }
                    budget += frame_bytes;
                    chunk.frames.push((seq, frame.payload));
                    want = seq + 1;
                }
                seq += 1;
            }
        }
        fdc_obs::counter(fdc_obs::names::WAL_SHIP_CHUNKS).incr();
        fdc_obs::counter(fdc_obs::names::WAL_SHIP_FRAMES).add(chunk.frames.len() as u64);
        fdc_obs::counter(fdc_obs::names::WAL_SHIP_BYTES).add(budget as u64);
        Ok(chunk)
    }

    /// Follower side of log shipping: appends the chunk's frames to
    /// this log, verifying they pick up exactly where it ends. A chunk
    /// that rewinds is [`ShipError::StaleSequence`]; one that skips
    /// ahead is [`ShipError::SequenceGap`] — in both cases nothing is
    /// appended. Blocks until the last frame is durable (group commit
    /// covers the whole chunk) and returns the new applied watermark.
    pub fn apply_chunk(&self, chunk: &ShipChunk) -> Result<u64, ShipError> {
        let expected = self.stats().last_seq + 1;
        let Some(first) = chunk.first_seq() else {
            return Ok(expected - 1);
        };
        if first < expected {
            return Err(ShipError::StaleSequence {
                version: SHIP_VERSION,
                expected,
                found: first,
            });
        }
        if first > expected {
            return Err(ShipError::SequenceGap {
                version: SHIP_VERSION,
                expected,
                found: first,
            });
        }
        let mut last = None;
        for (seq, payload) in &chunk.frames {
            let append = self.submit(payload)?;
            debug_assert_eq!(append.seq, *seq);
            last = Some(append);
        }
        match last {
            Some(append) => Ok(append.wait()?),
            None => Ok(expected - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WalOptions;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fdc_ship_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts(segment_bytes: u64) -> WalOptions {
        WalOptions {
            segment_bytes,
            ..WalOptions::default()
        }
    }

    #[test]
    fn chunk_round_trips_through_the_codec() {
        let chunk = ShipChunk {
            durable_seq: 9,
            checkpoint_seq: 2,
            frames: vec![(3, b"aa".to_vec()), (4, Vec::new()), (5, vec![7u8; 40])],
        };
        let bytes = encode_chunk(&chunk);
        assert_eq!(decode_chunk(&bytes).unwrap(), chunk);
        // Empty chunks round-trip too.
        let empty = ShipChunk {
            durable_seq: 12,
            checkpoint_seq: 12,
            frames: Vec::new(),
        };
        assert_eq!(decode_chunk(&encode_chunk(&empty)).unwrap(), empty);
    }

    #[test]
    fn every_truncation_point_is_a_versioned_error() {
        let chunk = ShipChunk {
            durable_seq: 5,
            checkpoint_seq: 0,
            frames: vec![(1, b"hello".to_vec()), (2, b"world!".to_vec())],
        };
        let bytes = encode_chunk(&chunk);
        for cut in 0..bytes.len() {
            let err = decode_chunk(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ShipError::Truncated {
                        version: SHIP_VERSION,
                        ..
                    } | ShipError::Corrupt {
                        version: SHIP_VERSION,
                        ..
                    }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn version_skew_and_trailing_bytes_are_rejected() {
        let chunk = ShipChunk {
            durable_seq: 1,
            checkpoint_seq: 0,
            frames: vec![(1, b"x".to_vec())],
        };
        let mut bytes = encode_chunk(&chunk);
        bytes[8] = 0xFE;
        assert!(matches!(
            decode_chunk(&bytes).unwrap_err(),
            ShipError::UnsupportedVersion {
                version: SHIP_VERSION,
                found: 0xFE
            }
        ));
        let mut trailing = encode_chunk(&chunk);
        trailing.push(0);
        assert!(matches!(
            decode_chunk(&trailing).unwrap_err(),
            ShipError::Corrupt { .. }
        ));
    }

    #[test]
    fn ship_serves_only_durable_frames_and_respects_the_budget() {
        let dir = tmp_dir("serve");
        let (wal, _) = Wal::open(&dir, opts(64)).unwrap();
        for i in 0..10u8 {
            wal.append(&[i; 20]).unwrap();
        }
        assert_eq!(wal.stats().durable_seq, 10);
        // Everything in one big chunk.
        let chunk = wal.ship_chunk(0, usize::MAX).unwrap();
        assert_eq!(chunk.durable_seq, 10);
        assert_eq!(
            chunk.frames.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            (1..=10).collect::<Vec<_>>()
        );
        // A tight budget still makes progress: at least one frame.
        let tight = wal.ship_chunk(0, 1).unwrap();
        assert_eq!(tight.frames.len(), 1);
        assert_eq!(tight.first_seq(), Some(1));
        // Resume from the middle.
        let rest = wal.ship_chunk(7, usize::MAX).unwrap();
        assert_eq!(
            rest.frames.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![8, 9, 10]
        );
        // Caught up: empty chunk, watermarks still present.
        let done = wal.ship_chunk(10, usize::MAX).unwrap();
        assert!(done.frames.is_empty());
        assert_eq!(done.durable_seq, 10);
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fetch_below_the_checkpoint_watermark_is_a_gap_error() {
        let dir = tmp_dir("gap");
        let (wal, _) = Wal::open(&dir, opts(64)).unwrap();
        for i in 0..8u8 {
            wal.append(&[i; 40]).unwrap();
        }
        wal.checkpoint(6).unwrap();
        let err = wal.ship_chunk(3, usize::MAX).unwrap_err();
        match err {
            ShipError::WatermarkGap {
                version,
                requested_after,
                checkpoint_seq,
            } => {
                assert_eq!(version, SHIP_VERSION);
                assert_eq!(requested_after, 3);
                assert_eq!(checkpoint_seq, 6);
            }
            other => panic!("expected WatermarkGap, got {other:?}"),
        }
        // At the watermark is fine: frames past it still exist.
        let ok = wal.ship_chunk(6, usize::MAX).unwrap();
        assert_eq!(
            ok.frames.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![7, 8]
        );
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_rejects_stale_and_gapped_chunks_without_appending() {
        let p_dir = tmp_dir("apply_primary");
        let f_dir = tmp_dir("apply_follower");
        let (primary, _) = Wal::open(&p_dir, opts(1 << 20)).unwrap();
        let (follower, _) = Wal::open(&f_dir, opts(1 << 20)).unwrap();
        for i in 0..6u8 {
            primary.append(&[i; 10]).unwrap();
        }
        let chunk = primary.ship_chunk(0, usize::MAX).unwrap();
        assert_eq!(follower.apply_chunk(&chunk).unwrap(), 6);
        // Replaying the same chunk is stale, not a silent no-op.
        let err = follower.apply_chunk(&chunk).unwrap_err();
        assert!(
            matches!(
                err,
                ShipError::StaleSequence {
                    version: SHIP_VERSION,
                    expected: 7,
                    found: 1
                }
            ),
            "{err:?}"
        );
        // A chunk skipping ahead is a gap.
        for i in 0..4u8 {
            primary.append(&[i; 10]).unwrap();
        }
        let ahead = primary.ship_chunk(8, usize::MAX).unwrap();
        let err = follower.apply_chunk(&ahead).unwrap_err();
        assert!(
            matches!(
                err,
                ShipError::SequenceGap {
                    version: SHIP_VERSION,
                    expected: 7,
                    found: 9
                }
            ),
            "{err:?}"
        );
        // Neither error appended anything.
        assert_eq!(follower.stats().last_seq, 6);
        drop((primary, follower));
        std::fs::remove_dir_all(&p_dir).ok();
        std::fs::remove_dir_all(&f_dir).ok();
    }

    #[test]
    fn shipped_follower_replays_identically_to_the_primary() {
        let p_dir = tmp_dir("identical_p");
        let f_dir = tmp_dir("identical_f");
        {
            let (primary, _) = Wal::open(&p_dir, opts(96)).unwrap();
            // Follower uses a different segment size: physical layout
            // differs, logical stream must not.
            let (follower, _) = Wal::open(&f_dir, opts(200)).unwrap();
            for i in 0..20u32 {
                primary.append(&i.to_le_bytes()).unwrap();
            }
            let mut applied = 0;
            loop {
                let chunk = primary.ship_chunk(applied, 64).unwrap();
                if chunk.frames.is_empty() {
                    break;
                }
                applied = follower.apply_chunk(&chunk).unwrap();
            }
            assert_eq!(applied, 20);
        }
        let (_, p_rec) = Wal::open(&p_dir, opts(96)).unwrap();
        let (_, f_rec) = Wal::open(&f_dir, opts(200)).unwrap();
        assert_eq!(p_rec.records, f_rec.records);
        std::fs::remove_dir_all(&p_dir).ok();
        std::fs::remove_dir_all(&f_dir).ok();
    }
}
