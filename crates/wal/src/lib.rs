//! `fdc-wal` — an append-only, segmented write-ahead log with CRC32
//! records, group commit and torn-tail crash recovery.
//!
//! F²DB acknowledges an insert once its batch commits in memory; this
//! crate is what makes that acknowledgement survive a crash. The engine
//! appends one record per committed batch and only acks once the
//! record's group-commit fsync has completed; on restart, replaying the
//! records past the last checkpoint reconstructs exactly the
//! acknowledged-but-not-checkpointed state. See DESIGN.md §10 for the
//! full durability model.
//!
//! The crate is std-only, like the rest of the workspace. The pieces:
//!
//! * [`record`] — length-prefixed, CRC32-checksummed frame codec.
//! * [`storage`] — the [`WalFile`]/[`WalStorage`] traits that let
//!   recovery tests inject short writes, torn records and fsync errors.
//! * [`Wal`] — the log: open/replay, two-phase [`Wal::submit`] +
//!   [`Append::wait`] group commit, segment rotation, checkpointing.
//! * [`ship`] — log shipping to follower replicas: the versioned
//!   [`ShipChunk`] wire codec, [`Wal::ship_chunk`] (primary side,
//!   serves only fsync-durable frames) and [`Wal::apply_chunk`]
//!   (follower side, rejects stale or gapped chunks with typed
//!   errors). See DESIGN.md §11 for the replication protocol.
//! * [`atomic_write_durable`] / [`sync_dir`] / [`sweep_stale_tmp`] —
//!   the write-a-file-durably helpers the catalog save path shares, so
//!   "temp + rename" actually survives power failure (the rename is
//!   only durable once the *parent directory* is fsynced).

pub mod record;
pub mod ship;
pub mod storage;
mod wal;

pub use record::{crc32, decode_frame, encode_frame, Frame, FrameError, FRAME_HEADER, MAX_PAYLOAD};
pub use ship::{decode_chunk, encode_chunk, ShipChunk, ShipError, CHUNK_HEADER, SHIP_VERSION};
pub use storage::{StdWalStorage, WalFile, WalStorage};
pub use wal::{
    Append, Wal, WalError, WalOptions, WalRecovery, WalStats, CHECKPOINT_FILE, SEGMENT_HEADER,
    WAL_VERSION,
};

use std::fs;
use std::io;
use std::path::Path;

/// Fsyncs a directory so renames and unlinks inside it survive power
/// failure. POSIX makes directory entries durable only after the
/// directory itself is synced; a rename followed by a crash can
/// otherwise resurrect the old file. No-op on platforms where
/// directories cannot be opened for sync.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Writes `bytes` to `path` atomically *and durably*: temp sibling →
/// `sync_all` → rename → parent-directory `sync_all`. After this
/// returns, either the old content or the new content survives any
/// crash — never a mix, and never the pre-rename state masquerading as
/// committed.
pub fn atomic_write_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    {
        let mut file = fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            sync_dir(parent)?;
        }
    }
    Ok(())
}

/// Removes stale `<file>.tmp.*` siblings of `path` — the orphans a
/// crash mid-[`atomic_write_durable`] (or mid catalog save) leaves
/// behind. Returns how many were removed. Safe to call on every open:
/// a live writer's temp file carries the *current* pid, and two
/// processes opening the same catalog concurrently is already outside
/// the supported single-writer model.
pub fn sweep_stale_tmp(path: &Path) -> io::Result<usize> {
    let Some(parent) = path.parent() else {
        return Ok(0);
    };
    let parent = if parent.as_os_str().is_empty() {
        Path::new(".")
    } else {
        parent
    };
    let Some(file_name) = path.file_name().and_then(|n| n.to_str()) else {
        return Ok(0);
    };
    let prefix = format!("{file_name}.tmp.");
    let own = format!("{file_name}.tmp.{}", std::process::id());
    let mut removed = 0;
    for entry in fs::read_dir(parent)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(&prefix) && name != own && fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fdc_wal_lib_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = tmp_dir("atomic");
        let path = dir.join("state.bin");
        atomic_write_durable(&path, b"v1").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"v1");
        atomic_write_durable(&path, b"v2 longer").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"v2 longer");
        // No temp residue.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_removes_only_matching_stale_tmps() {
        let dir = tmp_dir("sweep");
        let path = dir.join("catalog.f2db");
        fs::write(&path, b"live").unwrap();
        // Stale orphans from two dead pids.
        fs::write(dir.join("catalog.f2db.tmp.1"), b"old").unwrap();
        fs::write(dir.join("catalog.f2db.tmp.99999999"), b"old").unwrap();
        // Unrelated files must survive.
        fs::write(dir.join("other.f2db.tmp.1"), b"keep").unwrap();
        fs::write(dir.join("catalog.f2db.bak"), b"keep").unwrap();
        let removed = sweep_stale_tmp(&path).unwrap();
        assert_eq!(removed, 2);
        assert!(path.exists());
        assert!(dir.join("other.f2db.tmp.1").exists());
        assert!(dir.join("catalog.f2db.bak").exists());
        assert!(!dir.join("catalog.f2db.tmp.1").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_spares_own_pid_tmp() {
        let dir = tmp_dir("sweep_own");
        let path = dir.join("catalog.f2db");
        let own = dir.join(format!("catalog.f2db.tmp.{}", std::process::id()));
        fs::write(&own, b"in flight").unwrap();
        let removed = sweep_stale_tmp(&path).unwrap();
        assert_eq!(removed, 0);
        assert!(own.exists());
        fs::remove_dir_all(&dir).ok();
    }
}
