//! The log itself: segments, append, group commit, replay, checkpoint.
//!
//! A log is a directory of segment files named `wal-<first-seq>.log`
//! (sixteen hex digits), each starting with an 8-byte header
//! (`b"FDCWAL"` + a little-endian version) followed by frames in
//! sequence order, plus a `wal.checkpoint` marker file holding the
//! durable watermark. Appends go to the last segment; when it crosses
//! [`WalOptions::segment_bytes`] the writer rotates to a fresh file, so
//! checkpoint truncation can reclaim space by deleting whole files.
//!
//! ## Group commit
//!
//! An append is two phases. [`Wal::submit`] writes the frame into the
//! current segment under the log mutex — cheap, the OS buffers it — and
//! registers a completion channel. [`Append::wait`] then blocks until a
//! dedicated sync thread has run one `sync_all` covering the frame. The
//! sync thread drains *all* registered waiters before each fsync, so N
//! concurrent appenders cost one disk flush, not N; the achieved group
//! size is recorded in the `wal.group_size` histogram. With
//! `fsync: false` the wait is a no-op (benchmark mode — durability is
//! reduced to "what the OS got around to writing").
//!
//! ## Replay and the torn tail
//!
//! [`Wal::open`] reads every segment in name order and decodes frames
//! sequentially, verifying lengths, checksums and sequence contiguity.
//! A frame that fails to decode is one of two very different things:
//!
//! * **a torn tail** — the crash interrupted the last write. Only
//!   possible at the *end of the last segment*: past the checkpoint
//!   watermark (nothing before the watermark was ever acknowledged
//!   un-fsynced) *and* with no intact frame after it (a torn write is
//!   the end of the stream, so nothing decodable can follow). Recovery
//!   truncates the file at the last good frame and carries on.
//! * **corruption** — a bad frame anywhere else: mid-log, in a non-last
//!   segment, at a sequence the checkpoint already covered, or followed
//!   by a later frame that still decodes (a bit flip in an acknowledged
//!   record, not an interrupted write). That is data loss no replay can
//!   paper over, so `open` fails with the versioned
//!   [`WalError::Corrupt`] and leaves the files untouched for
//!   forensics. So is a first live segment starting past the watermark
//!   + 1: a file holding acknowledged records went missing.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use crate::record::{self, MAX_PAYLOAD};
use crate::storage::{StdWalStorage, WalFile, WalStorage};
use crate::{atomic_write_durable, sweep_stale_tmp, sync_dir};

/// On-disk format version, embedded in every segment header and in
/// [`WalError::Corrupt`] so an error message names the format it failed
/// to read.
pub const WAL_VERSION: u16 = 1;

/// Segment header: `b"FDCWAL"` + little-endian [`WAL_VERSION`].
pub const SEGMENT_HEADER: usize = 8;

const SEGMENT_MAGIC: &[u8; 6] = b"FDCWAL";

/// Name of the checkpoint marker file inside the log directory.
pub const CHECKPOINT_FILE: &str = "wal.checkpoint";

/// Everything that can go wrong appending to or recovering a log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An I/O error (message carries the `std::io::Error` rendering).
    Io(String),
    /// The log is damaged in a way replay must not silently repair:
    /// corruption before the durable watermark, a bad frame that is not
    /// a torn tail, a gap in the segment sequence, or an unreadable
    /// header. `version` is the format version this reader speaks.
    Corrupt {
        /// The reader's format version ([`WAL_VERSION`]).
        version: u16,
        /// What was found and where.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(msg) => write!(f, "wal i/o error: {msg}"),
            WalError::Corrupt { version, detail } => {
                write!(f, "wal corrupt (format v{version}): {detail}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> WalError {
        WalError::Io(e.to_string())
    }
}

fn corrupt(detail: impl Into<String>) -> WalError {
    WalError::Corrupt {
        version: WAL_VERSION,
        detail: detail.into(),
    }
}

/// Tuning knobs for [`Wal::open`].
#[derive(Clone)]
pub struct WalOptions {
    /// Rotate to a new segment once the current one exceeds this many
    /// bytes. Small values make checkpoint truncation reclaim space
    /// sooner at the cost of more files.
    pub segment_bytes: u64,
    /// Whether acknowledgements wait for `sync_all`. `false` is a
    /// benchmark mode: appends still go through the OS but an ack no
    /// longer implies durability.
    pub fsync: bool,
    /// The storage backend — [`StdWalStorage`] in production, a
    /// fault-injecting implementation in recovery tests.
    pub storage: Arc<dyn WalStorage>,
}

impl Default for WalOptions {
    fn default() -> WalOptions {
        WalOptions {
            segment_bytes: 1 << 20,
            fsync: true,
            storage: Arc::new(StdWalStorage),
        }
    }
}

impl fmt::Debug for WalOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalOptions")
            .field("segment_bytes", &self.segment_bytes)
            .field("fsync", &self.fsync)
            .finish()
    }
}

/// What [`Wal::open`] found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecovery {
    /// Replayed records past the checkpoint watermark, in sequence
    /// order: `(seq, payload)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Highest sequence number present in the log (0 if empty).
    pub last_seq: u64,
    /// The checkpoint watermark replay started from.
    pub checkpoint_seq: u64,
    /// Torn-tail bytes physically truncated from the last segment.
    pub truncated_bytes: u64,
    /// Segment files found.
    pub segments: usize,
    /// Stale `*.tmp.*` orphans swept from the directory.
    pub swept_tmp: usize,
}

/// A point-in-time snapshot of the log's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Highest sequence number appended (0 if none yet).
    pub last_seq: u64,
    /// Highest sequence number known durable: covered by a completed
    /// `sync_all` (equals `last_seq` when fsync is off — durability is
    /// then whatever the OS got around to writing). Log shipping serves
    /// only frames at or below this watermark, so a follower never
    /// applies a record the primary could still lose in a crash.
    pub durable_seq: u64,
    /// The durable watermark recorded by the last checkpoint.
    pub checkpoint_seq: u64,
    /// Live segment files.
    pub segments: u64,
    /// Records appended this process lifetime.
    pub appends: u64,
    /// Frame bytes appended this process lifetime.
    pub appended_bytes: u64,
    /// Group-commit fsyncs performed this process lifetime.
    pub fsyncs: u64,
}

struct Inner {
    file: Box<dyn WalFile>,
    /// First sequence number of every live segment, in order; the last
    /// entry is the segment currently appended to.
    segments: Vec<u64>,
    /// Bytes written to the current segment, header included.
    segment_written: u64,
    next_seq: u64,
    /// Highest sequence covered by a completed fsync (== `next_seq - 1`
    /// when fsync is off).
    durable_seq: u64,
    checkpoint_seq: u64,
    appends: u64,
    appended_bytes: u64,
    fsyncs: u64,
    /// Set on the first write or fsync failure; all later appends and
    /// waits fail with it (the log never acknowledges past an error).
    failed: Option<String>,
}

#[derive(Default)]
struct SyncQueue {
    waiters: Vec<mpsc::SyncSender<Result<(), String>>>,
    stop: bool,
}

struct Shared {
    dir: PathBuf,
    opts: WalOptions,
    inner: Mutex<Inner>,
    queue: Mutex<SyncQueue>,
    work: Condvar,
    /// Serializes whole checkpoints (marker rename must stay monotonic)
    /// so their durable I/O can run *outside* `inner` — submitters and
    /// the group-commit sync thread never wait behind checkpoint
    /// fsyncs. Never acquired while holding `inner`.
    checkpoint_lock: Mutex<()>,
}

/// An append-only, segmented, checksummed write-ahead log with group
/// commit. See the module docs for the format and the durability rules.
pub struct Wal {
    shared: Arc<Shared>,
    syncer: Option<thread::JoinHandle<()>>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("Wal")
            .field("dir", &self.shared.dir)
            .field("stats", &stats)
            .finish()
    }
}

/// A submitted record: the sequence number is assigned and the bytes
/// are in the OS, but not yet known durable. [`Append::wait`] blocks
/// until the group-commit fsync covering this record completes.
#[must_use = "an append is not durable until wait() returns"]
pub struct Append {
    /// The record's assigned sequence number.
    pub seq: u64,
    ticket: Option<mpsc::Receiver<Result<(), String>>>,
}

impl Append {
    /// Blocks until the record is durable (or the log has failed).
    /// Returns the record's sequence number.
    pub fn wait(self) -> Result<u64, WalError> {
        match self.ticket {
            None => Ok(self.seq),
            Some(rx) => match rx.recv() {
                Ok(Ok(())) => Ok(self.seq),
                Ok(Err(msg)) => Err(WalError::Io(msg)),
                Err(_) => Err(WalError::Io("wal sync thread exited".to_string())),
            },
        }
    }
}

fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:016x}.log")
}

pub(crate) fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(segment_file_name(first_seq))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn segment_header_bytes() -> [u8; SEGMENT_HEADER] {
    let mut h = [0u8; SEGMENT_HEADER];
    h[..6].copy_from_slice(SEGMENT_MAGIC);
    h[6..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

fn read_checkpoint_marker(dir: &Path) -> Result<u64, WalError> {
    let path = dir.join(CHECKPOINT_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    // Format: `fdc-wal-checkpoint v1\n<seq>\n`. The marker is written
    // atomically, so a malformed one is corruption, not a torn write.
    let mut lines = text.lines();
    match lines.next() {
        Some("fdc-wal-checkpoint v1") => {}
        other => {
            return Err(corrupt(format!(
                "checkpoint marker has unrecognized header {other:?}"
            )))
        }
    }
    let seq_line = lines
        .next()
        .ok_or_else(|| corrupt("checkpoint marker missing sequence line"))?;
    seq_line
        .trim()
        .parse::<u64>()
        .map_err(|_| corrupt(format!("checkpoint marker has bad sequence {seq_line:?}")))
}

impl Wal {
    /// Opens (creating if necessary) the log in `dir`, replays it, and
    /// returns the live log plus everything recovery found. Torn tails
    /// are truncated; real corruption fails with [`WalError::Corrupt`].
    pub fn open(dir: &Path, opts: WalOptions) -> Result<(Wal, WalRecovery), WalError> {
        let started = Instant::now();
        fs::create_dir_all(dir)?;
        let swept_tmp = sweep_stale_tmp(&dir.join(CHECKPOINT_FILE)).unwrap_or(0);
        let checkpoint_seq = read_checkpoint_marker(dir)?;

        // Collect segments by the first-sequence encoded in their name.
        let mut segs: BTreeMap<u64, PathBuf> = BTreeMap::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(first) = parse_segment_name(name) {
                segs.insert(first, entry.path());
            }
        }

        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut last_seq = checkpoint_seq;
        let mut truncated_bytes = 0u64;
        let seg_list: Vec<(u64, PathBuf)> = segs.into_iter().collect();
        // Checkpoint truncation only ever deletes whole fully-covered
        // segments from the front, so the first live segment must begin
        // at or below the watermark + 1. One starting above it means a
        // segment holding acknowledged, uncheckpointed records vanished
        // (external deletion, restore from a partial backup) — replay
        // must not silently resume past the gap.
        if let Some((first, path)) = seg_list.first() {
            if *first > checkpoint_seq + 1 {
                return Err(corrupt(format!(
                    "first live segment {} starts at seq {first}, but the durable watermark \
                     is {checkpoint_seq}: a segment holding acknowledged records is missing",
                    path.display()
                )));
            }
        }
        let mut expected_first: Option<u64> = None;
        for (i, (first, path)) in seg_list.iter().enumerate() {
            let is_last = i == seg_list.len() - 1;
            if let Some(expected) = expected_first {
                if *first != expected {
                    return Err(corrupt(format!(
                        "segment {} starts at seq {first} but the previous segment ended at {}",
                        path.display(),
                        expected - 1
                    )));
                }
            }
            let bytes = fs::read(path)?;
            if bytes.len() < SEGMENT_HEADER {
                if is_last && *first > checkpoint_seq {
                    // A crash between creating the file and flushing its
                    // header: an empty shell holding no records.
                    truncated_bytes += bytes.len() as u64;
                    truncate_segment(path, 0)?;
                    fs::remove_file(path)?;
                    break;
                }
                return Err(corrupt(format!(
                    "segment {} too short for its header",
                    path.display()
                )));
            }
            if &bytes[..6] != SEGMENT_MAGIC {
                return Err(corrupt(format!("segment {} has bad magic", path.display())));
            }
            let ver = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
            if ver != WAL_VERSION {
                return Err(corrupt(format!(
                    "segment {} has format version {ver}, reader speaks {WAL_VERSION}",
                    path.display()
                )));
            }
            let mut offset = SEGMENT_HEADER;
            let mut seq = *first;
            while offset < bytes.len() {
                match record::decode_frame(&bytes[offset..], Some(seq)) {
                    Ok(frame) => {
                        if seq > checkpoint_seq {
                            records.push((seq, frame.payload));
                        }
                        offset += frame.encoded_len;
                        seq += 1;
                    }
                    Err(err) => {
                        let at = format!("{} offset {offset} (seq {seq}): {err:?}", path.display());
                        if !is_last {
                            return Err(corrupt(format!("bad frame inside non-last segment {at}")));
                        }
                        if seq <= checkpoint_seq {
                            return Err(corrupt(format!(
                                "bad frame at or before durable watermark {checkpoint_seq}: {at}"
                            )));
                        }
                        // A torn tail is the *end* of the write stream:
                        // nothing decodable can follow it. If a later
                        // offset still holds an intact frame with a
                        // plausible sequence number, the bad frame is a
                        // damaged acknowledged record (e.g. a post-crash
                        // bit flip) — truncating here would silently
                        // destroy it and everything after, so fail.
                        if let Some(later) = scan_decodable_frame(&bytes, offset + 1, *first, seq) {
                            return Err(corrupt(format!(
                                "bad frame followed by an intact frame (seq {} at offset {}), \
                                 so it is damage, not a torn tail: {at}",
                                later.1, later.0
                            )));
                        }
                        // Torn tail: drop everything from the bad frame on.
                        truncated_bytes += (bytes.len() - offset) as u64;
                        truncate_segment(path, offset as u64)?;
                        break;
                    }
                }
            }
            last_seq = last_seq.max(seq.saturating_sub(1));
            expected_first = Some(seq);
        }

        // Live segments after tail cleanup (an all-torn last shell was
        // removed above).
        let mut live: Vec<u64> = seg_list
            .iter()
            .map(|(first, _)| *first)
            .filter(|first| segment_path(dir, *first).exists())
            .collect();

        let next_seq = last_seq + 1;
        let file = match live.last() {
            Some(first) => opts.storage.open_append(&segment_path(dir, *first))?,
            None => {
                let path = segment_path(dir, next_seq);
                let mut f = opts.storage.create(&path)?;
                f.write_all(&segment_header_bytes())?;
                sync_dir(dir)?;
                live.push(next_seq);
                f
            }
        };
        let segment_written = match live.last() {
            Some(first) => fs::metadata(segment_path(dir, *first))?.len(),
            None => unreachable!(),
        };

        let recovery = WalRecovery {
            records,
            last_seq,
            checkpoint_seq,
            truncated_bytes,
            segments: live.len(),
            swept_tmp,
        };

        fdc_obs::counter(fdc_obs::names::WAL_REPLAYED_RECORDS).add(recovery.records.len() as u64);
        fdc_obs::counter(fdc_obs::names::WAL_TORN_TAIL_BYTES).add(truncated_bytes);
        fdc_obs::histogram(fdc_obs::names::WAL_RECOVERY_NS).record_duration(started.elapsed());
        fdc_obs::gauge(fdc_obs::names::WAL_SEGMENTS).set(live.len() as i64);
        fdc_obs::gauge(fdc_obs::names::WAL_LAST_SEQ).set(last_seq as i64);
        fdc_obs::gauge(fdc_obs::names::WAL_CHECKPOINT_SEQ).set(checkpoint_seq as i64);
        fdc_obs::journal().publish(fdc_obs::Event::WalRecovery {
            replayed_records: recovery.records.len() as u64,
            truncated_bytes,
            last_seq,
            checkpoint_seq,
        });

        let shared = Arc::new(Shared {
            dir: dir.to_path_buf(),
            opts,
            inner: Mutex::new(Inner {
                file,
                segments: live,
                segment_written,
                next_seq,
                durable_seq: last_seq,
                checkpoint_seq,
                appends: 0,
                appended_bytes: 0,
                fsyncs: 0,
                failed: None,
            }),
            queue: Mutex::new(SyncQueue::default()),
            work: Condvar::new(),
            checkpoint_lock: Mutex::new(()),
        });
        let syncer = if shared.opts.fsync {
            let s = Arc::clone(&shared);
            Some(
                thread::Builder::new()
                    .name("fdc-wal-sync".to_string())
                    .spawn(move || s.run_syncer())
                    .map_err(|e| WalError::Io(e.to_string()))?,
            )
        } else {
            None
        };
        Ok((Wal { shared, syncer }, recovery))
    }

    /// Phase one of an append: assigns the next sequence number, writes
    /// the frame into the current segment (rotating first if it is
    /// full), and registers for the next group-commit fsync. Cheap —
    /// the disk flush happens in [`Append::wait`].
    pub fn submit(&self, payload: &[u8]) -> Result<Append, WalError> {
        if payload.len() as u64 > MAX_PAYLOAD as u64 {
            return Err(WalError::Io(format!(
                "payload of {} bytes exceeds the {MAX_PAYLOAD}-byte record bound",
                payload.len()
            )));
        }
        let seq;
        {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(msg) = &inner.failed {
                return Err(WalError::Io(msg.clone()));
            }
            seq = inner.next_seq;
            let frame = record::encode_frame(seq, payload);
            if inner.segment_written + frame.len() as u64 > self.shared.opts.segment_bytes
                && inner.segment_written > SEGMENT_HEADER as u64
            {
                self.rotate(&mut inner, seq)?;
            }
            if let Err(e) = inner.file.write_all(&frame) {
                inner.failed = Some(e.to_string());
                return Err(e.into());
            }
            inner.next_seq = seq + 1;
            inner.segment_written += frame.len() as u64;
            inner.appends += 1;
            inner.appended_bytes += frame.len() as u64;
            if !self.shared.opts.fsync {
                // No fsync barrier: the record is as durable as it will
                // ever be, so it is immediately shippable.
                inner.durable_seq = seq;
            }
            fdc_obs::counter(fdc_obs::names::WAL_APPENDS).incr();
            fdc_obs::counter(fdc_obs::names::WAL_APPENDED_BYTES).add(frame.len() as u64);
            fdc_obs::gauge(fdc_obs::names::WAL_LAST_SEQ).set(seq as i64);
        }
        if !self.shared.opts.fsync {
            return Ok(Append { seq, ticket: None });
        }
        let (tx, rx) = mpsc::sync_channel(1);
        self.shared.queue.lock().unwrap().waiters.push(tx);
        self.shared.work.notify_one();
        Ok(Append {
            seq,
            ticket: Some(rx),
        })
    }

    /// Appends one record and blocks until it is durable. Equivalent to
    /// `submit(payload)?.wait()`.
    pub fn append(&self, payload: &[u8]) -> Result<u64, WalError> {
        self.submit(payload)?.wait()
    }

    /// Rotates to a fresh segment whose first record will be
    /// `first_seq`. The outgoing segment is fsynced first so records in
    /// it can be acknowledged by fsyncs against the new file.
    fn rotate(&self, inner: &mut Inner, first_seq: u64) -> Result<(), WalError> {
        if let Err(e) = inner.file.sync_all() {
            inner.failed = Some(e.to_string());
            return Err(e.into());
        }
        inner.fsyncs += 1;
        // Everything below the record that forced the rotation is now
        // on disk in the outgoing segment.
        inner.durable_seq = inner.durable_seq.max(first_seq - 1);
        fdc_obs::counter(fdc_obs::names::WAL_FSYNCS).incr();
        let path = segment_path(&self.shared.dir, first_seq);
        let mut file = self.shared.opts.storage.create(&path)?;
        file.write_all(&segment_header_bytes())?;
        sync_dir(&self.shared.dir)?;
        inner.file = file;
        inner.segment_written = SEGMENT_HEADER as u64;
        inner.segments.push(first_seq);
        fdc_obs::gauge(fdc_obs::names::WAL_SEGMENTS).set(inner.segments.len() as i64);
        Ok(())
    }

    /// Records `upto` as the durable watermark (atomically, surviving
    /// power failure) and deletes segments every record of which is at
    /// or below it. The current segment is never deleted. Returns the
    /// number of segments truncated.
    pub fn checkpoint(&self, upto: u64) -> Result<u64, WalError> {
        // One checkpoint at a time, serialized by its own mutex: the
        // marker renames must land in watermark order. `inner` is only
        // taken for the short in-memory edits, never across the marker
        // write (two fsyncs) or the segment unlinks + directory fsync —
        // a periodic checkpoint must not stall the append path.
        let _cp = self.shared.checkpoint_lock.lock().unwrap();
        let upto = {
            let inner = self.shared.inner.lock().unwrap();
            let upto = upto.min(inner.next_seq.saturating_sub(1));
            if upto < inner.checkpoint_seq {
                return Ok(0);
            }
            upto
        };
        // The marker must be durable *before* any segment it covers is
        // deleted; the reverse order would leave a log whose first
        // segment starts past the (old) watermark — corruption to the
        // replayer.
        let marker = format!("fdc-wal-checkpoint v1\n{upto}\n");
        atomic_write_durable(&self.shared.dir.join(CHECKPOINT_FILE), marker.as_bytes())?;

        // segments[i] is fully covered iff the next segment starts at or
        // below upto + 1 — i.e. every record in it has seq <= upto.
        let (to_remove, last_seq, segments) = {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.checkpoint_seq = upto;
            let mut to_remove = Vec::new();
            while inner.segments.len() > 1 && inner.segments[1] <= upto + 1 {
                to_remove.push(inner.segments.remove(0));
            }
            (to_remove, inner.next_seq - 1, inner.segments.len() as i64)
        };
        let removed = to_remove.len() as u64;
        for first in to_remove {
            fs::remove_file(segment_path(&self.shared.dir, first))?;
        }
        if removed > 0 {
            sync_dir(&self.shared.dir)?;
        }

        fdc_obs::gauge(fdc_obs::names::WAL_CHECKPOINT_SEQ).set(upto as i64);
        fdc_obs::gauge(fdc_obs::names::WAL_SEGMENTS).set(segments);
        fdc_obs::counter(fdc_obs::names::WAL_SEGMENTS_TRUNCATED).add(removed);
        fdc_obs::journal().publish(fdc_obs::Event::WalCheckpoint {
            checkpoint_seq: upto,
            last_seq,
            truncated_segments: removed,
        });
        Ok(removed)
    }

    /// The directory the log lives in.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// Consistent snapshot of the state log shipping needs: the live
    /// segment list plus the durable and checkpoint watermarks, all
    /// read under one acquisition of the log mutex. Segment file reads
    /// happen *outside* the lock so shipping never stalls appenders.
    pub(crate) fn ship_snapshot(&self) -> (Vec<u64>, u64, u64) {
        let inner = self.shared.inner.lock().unwrap();
        (
            inner.segments.clone(),
            inner.durable_seq,
            inner.checkpoint_seq,
        )
    }

    /// Whether acknowledgements wait for fsync.
    pub fn fsync_enabled(&self) -> bool {
        self.shared.opts.fsync
    }

    /// A snapshot of the log's counters.
    pub fn stats(&self) -> WalStats {
        let inner = self.shared.inner.lock().unwrap();
        WalStats {
            last_seq: inner.next_seq - 1,
            durable_seq: inner.durable_seq,
            checkpoint_seq: inner.checkpoint_seq,
            segments: inner.segments.len() as u64,
            appends: inner.appends,
            appended_bytes: inner.appended_bytes,
            fsyncs: inner.fsyncs,
        }
    }
}

impl Shared {
    fn run_syncer(&self) {
        loop {
            let waiters = {
                let mut q = self.queue.lock().unwrap();
                while q.waiters.is_empty() && !q.stop {
                    q = self.work.wait(q).unwrap();
                }
                if q.waiters.is_empty() && q.stop {
                    return;
                }
                std::mem::take(&mut q.waiters)
            };
            let result = {
                let mut inner = self.inner.lock().unwrap();
                if let Some(msg) = &inner.failed {
                    Err(msg.clone())
                } else {
                    match inner.file.sync_all() {
                        Ok(()) => {
                            inner.fsyncs += 1;
                            // The lock is held across the sync, so every
                            // frame written so far is covered by it.
                            inner.durable_seq = inner.next_seq - 1;
                            Ok(())
                        }
                        Err(e) => {
                            let msg = e.to_string();
                            inner.failed = Some(msg.clone());
                            Err(msg)
                        }
                    }
                }
            };
            fdc_obs::counter(fdc_obs::names::WAL_FSYNCS).incr();
            fdc_obs::histogram(fdc_obs::names::WAL_GROUP_SIZE).record(waiters.len() as u64);
            for w in waiters {
                let _ = w.send(result.clone());
            }
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if let Some(handle) = self.syncer.take() {
            {
                let mut q = self.shared.queue.lock().unwrap();
                q.stop = true;
            }
            self.shared.work.notify_all();
            let _ = handle.join();
        }
    }
}

/// Scans `bytes[from..]` byte by byte for an offset where a frame
/// decodes cleanly with a plausible sequence number: at least `min_seq`
/// (the bad frame's), and no larger than the segment's first seq plus
/// the maximum number of frames that could physically fit before the
/// offset. Used to distinguish a torn tail (nothing decodable follows
/// the bad frame) from mid-file damage (a later intact frame proves the
/// stream continued past it). Returns `(offset, seq)` of the first such
/// frame.
fn scan_decodable_frame(
    bytes: &[u8],
    from: usize,
    first_seq: u64,
    min_seq: u64,
) -> Option<(usize, u64)> {
    for o in from..bytes.len() {
        if let Ok(frame) = record::decode_frame(&bytes[o..], None) {
            // Every frame occupies at least FRAME_HEADER bytes, so at
            // most this many frames can precede offset `o`.
            let max_plausible = first_seq + ((o - SEGMENT_HEADER) / record::FRAME_HEADER) as u64;
            if frame.seq >= min_seq && frame.seq <= max_plausible {
                return Some((o, frame.seq));
            }
        }
    }
    None
}

/// Truncates a segment file to `len` bytes in place (used to drop a
/// torn tail during replay).
fn truncate_segment(path: &Path, len: u64) -> Result<(), WalError> {
    let file = fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FRAME_HEADER;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fdc_wal_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts(segment_bytes: u64) -> WalOptions {
        WalOptions {
            segment_bytes,
            ..WalOptions::default()
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = tmp_dir("round_trip");
        {
            let (wal, rec) = Wal::open(&dir, opts(1 << 20)).unwrap();
            assert_eq!(rec.records.len(), 0);
            assert_eq!(wal.append(b"one").unwrap(), 1);
            assert_eq!(wal.append(b"two").unwrap(), 2);
            assert_eq!(wal.append(b"three").unwrap(), 3);
            let stats = wal.stats();
            assert_eq!(stats.last_seq, 3);
            assert_eq!(stats.appends, 3);
        }
        let (wal, rec) = Wal::open(&dir, opts(1 << 20)).unwrap();
        assert_eq!(
            rec.records,
            vec![
                (1, b"one".to_vec()),
                (2, b"two".to_vec()),
                (3, b"three".to_vec())
            ]
        );
        assert_eq!(wal.append(b"four").unwrap(), 4);
        drop(wal);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_segments_and_replay_spans_them() {
        let dir = tmp_dir("rotation");
        {
            // Tiny segments: every record larger than ~48 bytes rotates.
            let (wal, _) = Wal::open(&dir, opts(64)).unwrap();
            for i in 0..10u8 {
                wal.append(&[i; 40]).unwrap();
            }
            assert!(wal.stats().segments > 1, "{:?}", wal.stats());
        }
        let (_, rec) = Wal::open(&dir, opts(64)).unwrap();
        assert_eq!(rec.records.len(), 10);
        for (i, (seq, payload)) in rec.records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(payload, &vec![i as u8; 40]);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp_dir("torn_tail");
        {
            let (wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
            wal.append(b"keep").unwrap();
            wal.append(b"tear me").unwrap();
        }
        // Chop the last 3 bytes off the only segment.
        let seg = segment_path(&dir, 1);
        let len = fs::metadata(&seg).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (wal, rec) = Wal::open(&dir, opts(1 << 20)).unwrap();
        assert_eq!(rec.records, vec![(1, b"keep".to_vec())]);
        assert_eq!(rec.truncated_bytes, (FRAME_HEADER + 7 - 3) as u64);
        // The log continues from the surviving prefix.
        assert_eq!(wal.append(b"after").unwrap(), 2);
        drop(wal);
        let (_, rec) = Wal::open(&dir, opts(1 << 20)).unwrap();
        assert_eq!(
            rec.records,
            vec![(1, b"keep".to_vec()), (2, b"after".to_vec())]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_before_watermark_is_fatal() {
        let dir = tmp_dir("pre_watermark");
        {
            let (wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
            wal.append(b"alpha").unwrap();
            wal.append(b"beta").unwrap();
            wal.checkpoint(2).unwrap();
        }
        // Flip a byte inside the first record's payload.
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        bytes[SEGMENT_HEADER + FRAME_HEADER] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let err = Wal::open(&dir, opts(1 << 20)).unwrap_err();
        match err {
            WalError::Corrupt { version, detail } => {
                assert_eq!(version, WAL_VERSION);
                assert!(detail.contains("watermark"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_record_with_intact_successor_is_fatal() {
        let dir = tmp_dir("damage_mid_tail");
        {
            let (wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
            wal.append(b"alpha").unwrap();
            wal.append(b"beta").unwrap();
            wal.append(b"gamma").unwrap();
        }
        // Flip a payload byte of record 2: records 1..3 are all acked
        // and fsynced, none checkpointed. Record 3 still decodes after
        // the bad frame, so this is damage, not a torn tail — silently
        // truncating would destroy the acknowledged records 2 and 3.
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let rec1_len = FRAME_HEADER + b"alpha".len();
        bytes[SEGMENT_HEADER + rec1_len + FRAME_HEADER + 1] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        let err = Wal::open(&dir, opts(1 << 20)).unwrap_err();
        match err {
            WalError::Corrupt { version, detail } => {
                assert_eq!(version, WAL_VERSION);
                assert!(detail.contains("not a torn tail"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_first_segment_is_fatal() {
        let dir = tmp_dir("missing_segment");
        {
            let (wal, _) = Wal::open(&dir, opts(64)).unwrap();
            for i in 0..6u8 {
                wal.append(&[i; 40]).unwrap();
            }
            assert!(wal.stats().segments > 2, "{:?}", wal.stats());
        }
        // Delete the first segment: it holds acknowledged records the
        // checkpoint (watermark 0) does not cover. Replay must not
        // silently resume from the next segment's first sequence.
        fs::remove_file(segment_path(&dir, 1)).unwrap();
        let err = Wal::open(&dir, opts(64)).unwrap_err();
        match err {
            WalError::Corrupt { version, detail } => {
                assert_eq!(version, WAL_VERSION);
                assert!(detail.contains("missing"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoints_concurrent_with_appends_keep_the_log_consistent() {
        let dir = tmp_dir("cp_concurrent");
        let (wal, _) = Wal::open(&dir, opts(256)).unwrap();
        let wal = Arc::new(wal);
        let appender = {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                for i in 0..200u8 {
                    wal.append(&[i; 24]).unwrap();
                }
            })
        };
        // Checkpoint continuously while the appender runs: the marker
        // and unlink I/O happens off the append mutex, but the log must
        // stay consistent throughout.
        while !appender.is_finished() {
            let upto = wal.stats().last_seq;
            wal.checkpoint(upto).unwrap();
        }
        appender.join().unwrap();
        let final_cp = wal.stats().checkpoint_seq;
        drop(wal);
        let (_, rec) = Wal::open(&dir, opts(256)).unwrap();
        assert_eq!(rec.last_seq, 200);
        assert_eq!(rec.checkpoint_seq, final_cp);
        // Exactly the post-watermark records replay, in order.
        assert_eq!(
            rec.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            (final_cp + 1..=200).collect::<Vec<_>>()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_in_non_last_segment_is_fatal() {
        let dir = tmp_dir("mid_log");
        {
            let (wal, _) = Wal::open(&dir, opts(64)).unwrap();
            for i in 0..6u8 {
                wal.append(&[i; 40]).unwrap();
            }
            assert!(wal.stats().segments > 2);
        }
        // Corrupt the first segment (not the last).
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&seg, &bytes).unwrap();
        let err = Wal::open(&dir, opts(64)).unwrap_err();
        assert!(
            matches!(err, WalError::Corrupt { .. }),
            "expected Corrupt, got {err:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_covered_segments_and_filters_replay() {
        let dir = tmp_dir("checkpoint");
        {
            let (wal, _) = Wal::open(&dir, opts(64)).unwrap();
            for i in 0..8u8 {
                wal.append(&[i; 40]).unwrap();
            }
            let before = wal.stats();
            assert!(before.segments >= 4, "{before:?}");
            let removed = wal.checkpoint(6).unwrap();
            assert!(removed >= 1, "expected truncation, removed {removed}");
            let after = wal.stats();
            assert_eq!(after.checkpoint_seq, 6);
            assert!(after.segments < before.segments);
        }
        let (wal, rec) = Wal::open(&dir, opts(64)).unwrap();
        // Only records past the watermark replay.
        assert_eq!(
            rec.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![7, 8]
        );
        assert_eq!(rec.checkpoint_seq, 6);
        // Sequence numbering continues across restart.
        assert_eq!(wal.append(b"next").unwrap(), 9);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_of_everything_survives_restart_with_empty_replay() {
        let dir = tmp_dir("full_checkpoint");
        {
            let (wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
            wal.append(b"a").unwrap();
            wal.append(b"b").unwrap();
            wal.checkpoint(2).unwrap();
        }
        let (wal, rec) = Wal::open(&dir, opts(1 << 20)).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.last_seq, 2);
        assert_eq!(wal.append(b"c").unwrap(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_coalesces_concurrent_appenders() {
        let dir = tmp_dir("group_commit");
        let (wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
        let wal = Arc::new(wal);
        let threads = 8;
        let per_thread = 25;
        let mut handles = Vec::new();
        for t in 0..threads {
            let wal = Arc::clone(&wal);
            handles.push(thread::spawn(move || {
                for i in 0..per_thread {
                    wal.append(format!("t{t}i{i}").as_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.appends, (threads * per_thread) as u64);
        assert!(
            stats.fsyncs <= stats.appends,
            "fsyncs {} > appends {}",
            stats.fsyncs,
            stats.appends
        );
        drop(wal);
        let wal2 = Wal::open(&dir, opts(1 << 20)).unwrap();
        assert_eq!(wal2.1.records.len(), threads * per_thread);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_off_acks_immediately() {
        let dir = tmp_dir("nofsync");
        let o = WalOptions {
            fsync: false,
            ..opts(1 << 20)
        };
        let (wal, _) = Wal::open(&dir, o.clone()).unwrap();
        wal.append(b"x").unwrap();
        assert_eq!(wal.stats().fsyncs, 0);
        drop(wal);
        let (_, rec) = Wal::open(&dir, o).unwrap();
        assert_eq!(rec.records.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequence_numbers_are_contiguous_across_reopen() {
        let dir = tmp_dir("contiguous");
        let mut expected = 1u64;
        for _ in 0..3 {
            let (wal, _) = Wal::open(&dir, opts(128)).unwrap();
            for _ in 0..5 {
                assert_eq!(wal.append(b"payload").unwrap(), expected);
                expected += 1;
            }
        }
        let (_, rec) = Wal::open(&dir, opts(128)).unwrap();
        assert_eq!(
            rec.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            (1..expected).collect::<Vec<_>>()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_last_segment_shell_is_swept() {
        let dir = tmp_dir("empty_shell");
        {
            let (wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
            wal.append(b"a").unwrap();
        }
        // Simulate a crash right after rotation created the next file
        // but before its header hit the disk.
        fs::write(segment_path(&dir, 2), b"").unwrap();
        let (wal, rec) = Wal::open(&dir, opts(1 << 20)).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(wal.append(b"b").unwrap(), 2);
        fs::remove_dir_all(&dir).ok();
    }
}
