//! Record framing: length-prefixed, CRC32-checksummed frames.
//!
//! One frame on disk is
//!
//! ```text
//! ┌───────────┬───────────┬───────────┬─────────────────┐
//! │ len: u32  │ crc: u32  │ seq: u64  │ payload (len B) │
//! └───────────┴───────────┴───────────┴─────────────────┘
//! ```
//!
//! all little-endian. `len` is the payload length alone; `crc` is the
//! CRC32 (IEEE, reflected, the zlib polynomial) of `seq ‖ payload`, so a
//! frame whose length prefix survived but whose body was torn by a crash
//! still fails verification. Sequence numbers are assigned by the log,
//! start at 1 and are contiguous — a gap or repeat is corruption, not a
//! torn write.

/// Frame header size: len (4) + crc (4) + seq (8).
pub const FRAME_HEADER: usize = 16;

/// Upper bound on a single record's payload. Anything larger in a length
/// prefix is treated as corruption rather than attempted as an
/// allocation.
pub const MAX_PAYLOAD: u32 = 1 << 28;

/// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the zlib/PNG
/// checksum, computed over a small const-generated table.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Encodes one frame (header + payload) into a fresh buffer.
pub fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() as u64 <= MAX_PAYLOAD as u64);
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc_input = Vec::with_capacity(8 + payload.len());
    crc_input.extend_from_slice(&seq.to_le_bytes());
    crc_input.extend_from_slice(payload);
    buf.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Why a frame could not be decoded at some offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes remain than a frame header — a torn header.
    TruncatedHeader,
    /// The length prefix points past the end of the buffer — a torn
    /// body.
    TruncatedBody,
    /// The length prefix is implausibly large.
    ImplausibleLength(u32),
    /// The checksum over `seq ‖ payload` does not match.
    BadChecksum,
    /// The frame decoded cleanly but carries the wrong sequence number.
    SequenceGap {
        /// The sequence number the reader expected next.
        expected: u64,
        /// The sequence number the frame carries.
        found: u64,
    },
}

/// A decoded frame plus how many bytes it occupied.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The record's sequence number.
    pub seq: u64,
    /// The record payload.
    pub payload: Vec<u8>,
    /// Total encoded size (header + payload).
    pub encoded_len: usize,
}

/// Decodes the frame at the start of `buf`, verifying length, checksum
/// and (when `expected_seq` is `Some`) the sequence number.
pub fn decode_frame(buf: &[u8], expected_seq: Option<u64>) -> Result<Frame, FrameError> {
    if buf.len() < FRAME_HEADER {
        return Err(FrameError::TruncatedHeader);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(FrameError::ImplausibleLength(len));
    }
    let total = FRAME_HEADER + len as usize;
    if buf.len() < total {
        return Err(FrameError::TruncatedBody);
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if crc32(&buf[8..total]) != crc {
        return Err(FrameError::BadChecksum);
    }
    let seq = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    if let Some(expected) = expected_seq {
        if seq != expected {
            return Err(FrameError::SequenceGap {
                expected,
                found: seq,
            });
        }
    }
    Ok(Frame {
        seq,
        payload: buf[16..total].to_vec(),
        encoded_len: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard zlib/PNG test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"hello wal".to_vec();
        let bytes = encode_frame(7, &payload);
        assert_eq!(bytes.len(), FRAME_HEADER + payload.len());
        let frame = decode_frame(&bytes, Some(7)).unwrap();
        assert_eq!(frame.seq, 7);
        assert_eq!(frame.payload, payload);
        assert_eq!(frame.encoded_len, bytes.len());
        // Empty payloads are legal.
        let empty = encode_frame(1, &[]);
        assert_eq!(
            decode_frame(&empty, None).unwrap().payload,
            Vec::<u8>::new()
        );
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let bytes = encode_frame(3, b"abcdef");
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            let r = decode_frame(&corrupt, Some(3));
            assert!(r.is_err(), "flipping bit {bit} went undetected: {r:?}");
        }
    }

    #[test]
    fn truncation_is_classified() {
        let bytes = encode_frame(3, b"abcdef");
        assert_eq!(
            decode_frame(&bytes[..8], None),
            Err(FrameError::TruncatedHeader)
        );
        assert_eq!(
            decode_frame(&bytes[..FRAME_HEADER + 2], None),
            Err(FrameError::TruncatedBody)
        );
        let mut huge = bytes.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&huge, None),
            Err(FrameError::ImplausibleLength(_))
        ));
    }

    #[test]
    fn sequence_gap_is_detected() {
        let bytes = encode_frame(5, b"x");
        assert_eq!(
            decode_frame(&bytes, Some(4)),
            Err(FrameError::SequenceGap {
                expected: 4,
                found: 5
            })
        );
    }
}
