//! File-system abstraction for the append path.
//!
//! The log appends through the [`WalFile`] trait instead of
//! `std::fs::File` directly so recovery tests can inject the failures a
//! real disk produces: short writes (a crash mid-`write`), torn records
//! (a write that lands partially but is reported as complete) and fsync
//! errors. Production uses [`StdWalStorage`]; the fault-injecting
//! implementations live in the crate's tests.
//!
//! Only the *write* side is abstracted. Replay reads whole segment files
//! through `std::fs::read` — the interesting failure modes are the bytes
//! a faulty writer left behind, which the trait impls produce for real
//! on a real file system.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

/// One open segment file on the append path.
pub trait WalFile: Send {
    /// Appends `buf` in full (or errors).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Forces everything written so far to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// Creates and reopens segment files.
pub trait WalStorage: Send + Sync {
    /// Creates a fresh segment file (truncating any leftover).
    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>>;
    /// Reopens an existing segment for appending at its end.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn WalFile>>;
}

/// The production storage: plain `std::fs` files.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdWalStorage;

struct StdWalFile(File);

impl WalFile for StdWalFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, buf)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl WalStorage for StdWalStorage {
    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(StdWalFile(File::create(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(StdWalFile(
            OpenOptions::new().append(true).open(path)?,
        )))
    }
}
