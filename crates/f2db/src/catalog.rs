//! Configuration storage (§V): the two catalog tables of F²DB.
//!
//! "The first one stores the time series graph and model configuration
//! (including model assignments, derivation schemes and corresponding
//! weights), and the second table stores the forecast models itself
//! including state and parameter values." Here the first table is the
//! per-node [`CatalogEntry`] array, the second the [`StoredModel`] map;
//! both serialize through the binary [`crate::codec`].

use crate::codec::{Decoder, Encoder};
use crate::maintenance::{MaintenancePolicy, MaintenanceStats};
use crate::{F2dbError, Result};
use fdc_cube::{derive_forecast, Configuration, Dataset, NodeId};
use fdc_forecast::model::restore_model;
use fdc_forecast::{FitOptions, ForecastModel};
use std::collections::BTreeMap;

/// Per-node configuration row: the derivation scheme serving the node.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Source nodes whose model forecasts are combined.
    pub scheme_sources: Vec<NodeId>,
    /// Derivation weight `k` (maintained incrementally as time advances).
    pub weight: f64,
}

/// A stored forecast model with its maintenance state.
pub struct StoredModel {
    /// The live model instance (kept up to date incrementally).
    pub model: Box<dyn ForecastModel>,
    /// Whether the model was marked invalid (parameters stale); lazily
    /// re-estimated when a query references it.
    pub invalid: bool,
    /// Exponentially weighted one-step SMAPE at the model's node, driving
    /// the threshold-based invalidation strategy.
    pub rolling_error: f64,
}

impl std::fmt::Debug for StoredModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredModel")
            .field("name", &self.model.name())
            .field("invalid", &self.invalid)
            .field("rolling_error", &self.rolling_error)
            .finish()
    }
}

/// The catalog: configuration rows + model store + the per-node history
/// sums needed to update derivation weights incrementally.
#[derive(Debug)]
pub struct Catalog {
    entries: Vec<Option<CatalogEntry>>,
    models: BTreeMap<NodeId, StoredModel>,
    history_sums: Vec<f64>,
    advances: usize,
}

impl Catalog {
    /// Builds a catalog from an advisor/baseline configuration.
    ///
    /// Every stored model is refit on the node's **full** history (the
    /// advisor evaluated on the training split; deployment forecasts must
    /// start at the current end of the data). Derivation weights are
    /// recomputed over the full history accordingly.
    pub fn from_configuration(
        dataset: &Dataset,
        configuration: &Configuration,
        fit: &FitOptions,
    ) -> Result<Self> {
        let n = dataset.node_count();
        let mut models = BTreeMap::new();
        for (node, cm) in configuration.models() {
            let model = cm
                .spec
                .fit(dataset.series(node), fit)
                .map_err(|e| F2dbError::Cube(format!("refitting model at node {node}: {e}")))?;
            models.insert(
                node,
                StoredModel {
                    model,
                    invalid: false,
                    rolling_error: 0.0,
                },
            );
        }
        let history_sums: Vec<f64> = (0..n).map(|v| dataset.series(v).history_sum()).collect();
        let mut entries = vec![None; n];
        for (v, entry) in entries.iter_mut().enumerate() {
            if let Some(scheme) = &configuration.estimate(v).scheme {
                let h_s: f64 = scheme.sources.iter().map(|&s| history_sums[s]).sum();
                let weight = if h_s.abs() < f64::EPSILON {
                    0.0
                } else {
                    history_sums[v] / h_s
                };
                *entry = Some(CatalogEntry {
                    scheme_sources: scheme.sources.clone(),
                    weight,
                });
            }
        }
        Ok(Catalog {
            entries,
            models,
            history_sums,
            advances: 0,
        })
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of stored models.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// The configuration row of `node`.
    pub fn entry(&self, node: NodeId) -> Option<&CatalogEntry> {
        self.entries.get(node).and_then(|e| e.as_ref())
    }

    /// Whether the model at `node` is marked invalid.
    pub fn is_invalid(&self, node: NodeId) -> bool {
        self.models.get(&node).is_some_and(|m| m.invalid)
    }

    /// Computes the forecast of `node` from its scheme and the stored
    /// models. `None` when the node has no scheme or a source model is
    /// missing.
    pub fn forecast(&self, node: NodeId, horizon: usize) -> Option<Vec<f64>> {
        let entry = self.entry(node)?;
        let forecasts: Vec<Vec<f64>> = entry
            .scheme_sources
            .iter()
            .map(|s| self.models.get(s).map(|m| m.model.forecast(horizon)))
            .collect::<Option<Vec<_>>>()?;
        let refs: Vec<&[f64]> = forecasts.iter().map(|f| f.as_slice()).collect();
        Some(derive_forecast(&refs, entry.weight))
    }

    /// Advances the catalog by one time stamp after the data set grew:
    /// model states absorb their node's new actual value, rolling errors
    /// update, derivation weights are refreshed from the new history
    /// sums, and the invalidation policy is applied.
    pub fn advance_time(
        &mut self,
        dataset: &Dataset,
        last_index: usize,
        policy: &MaintenancePolicy,
        stats: &mut MaintenanceStats,
    ) {
        self.advances += 1;
        // Model state updates (incremental, no re-estimation).
        for (&node, stored) in self.models.iter_mut() {
            let actual = dataset.series(node).values()[last_index];
            let predicted = stored.model.forecast(1)[0];
            let denom = (actual + predicted).abs();
            let step_err = if denom < f64::EPSILON {
                0.0
            } else {
                (actual - predicted).abs() / denom
            };
            stored.rolling_error = 0.8 * stored.rolling_error + 0.2 * step_err;
            stored.model.update(actual);
            stats.model_updates += 1;
        }
        // History sums and weights.
        for (v, h) in self.history_sums.iter_mut().enumerate() {
            *h += dataset.series(v).values()[last_index];
        }
        for (v, entry) in self.entries.iter_mut().enumerate() {
            if let Some(e) = entry {
                let h_s: f64 = e.scheme_sources.iter().map(|&s| self.history_sums[s]).sum();
                e.weight = if h_s.abs() < f64::EPSILON {
                    0.0
                } else {
                    self.history_sums[v] / h_s
                };
            }
        }
        // Invalidation.
        match policy {
            MaintenancePolicy::None => {}
            MaintenancePolicy::TimeBased { every } => {
                if *every > 0 && self.advances.is_multiple_of(*every) {
                    for stored in self.models.values_mut() {
                        if !stored.invalid {
                            stored.invalid = true;
                            stats.invalidations += 1;
                        }
                    }
                }
            }
            MaintenancePolicy::ThresholdBased { smape_threshold } => {
                for stored in self.models.values_mut() {
                    if !stored.invalid && stored.rolling_error > *smape_threshold {
                        stored.invalid = true;
                        stats.invalidations += 1;
                    }
                }
            }
        }
    }

    /// Re-estimates the model at `node` on its full current history and
    /// clears the invalid flag (lazy maintenance, §V).
    pub fn reestimate(&mut self, node: NodeId, dataset: &Dataset, fit: &FitOptions) -> Result<()> {
        let stored = self
            .models
            .get_mut(&node)
            .ok_or_else(|| F2dbError::Semantic(format!("no model at node {node}")))?;
        stored
            .model
            .refit(dataset.series(node), fit)
            .map_err(|e| F2dbError::Cube(format!("re-estimating node {node}: {e}")))?;
        stored.invalid = false;
        stored.rolling_error = 0.0;
        Ok(())
    }

    /// Serializes the catalog.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_header();
        e.put_len(self.entries.len());
        for entry in &self.entries {
            match entry {
                None => e.put_u8(0),
                Some(en) => {
                    e.put_u8(1);
                    e.put_usize_slice(&en.scheme_sources);
                    e.put_f64(en.weight);
                }
            }
        }
        e.put_len(self.models.len());
        for (&node, stored) in &self.models {
            e.put_u64(node as u64);
            e.put_u8(stored.invalid as u8);
            e.put_f64(stored.rolling_error);
            e.put_model_state(&stored.model.state());
        }
        e.put_f64_slice(&self.history_sums);
        e.put_u64(self.advances as u64);
        e.finish()
    }

    /// Deserializes a catalog.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut d = Decoder::with_header(bytes)?;
        let n = d.get_len()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            match d.get_u8()? {
                0 => entries.push(None),
                1 => {
                    let scheme_sources = d.get_usize_vec()?;
                    let weight = d.get_f64()?;
                    entries.push(Some(CatalogEntry {
                        scheme_sources,
                        weight,
                    }));
                }
                t => return Err(F2dbError::Storage(format!("bad entry tag {t}"))),
            }
        }
        let m = d.get_len()?;
        let mut models = BTreeMap::new();
        for _ in 0..m {
            let node = d.get_u64()? as usize;
            let invalid = d.get_u8()? != 0;
            let rolling_error = d.get_f64()?;
            let state = d.get_model_state()?;
            let model = restore_model(&state)
                .map_err(|e| F2dbError::Storage(format!("restoring model: {e}")))?;
            models.insert(
                node,
                StoredModel {
                    model,
                    invalid,
                    rolling_error,
                },
            );
        }
        let history_sums = d.get_f64_vec()?;
        let advances = d.get_u64()? as usize;
        if history_sums.len() != entries.len() {
            return Err(F2dbError::Storage("inconsistent catalog arrays".into()));
        }
        Ok(Catalog {
            entries,
            models,
            history_sums,
            advances,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cube::{ConfiguredModel, CubeSplit};
    use fdc_datagen::tourism_proxy;
    use fdc_forecast::ModelSpec;

    fn catalog_fixture() -> (Dataset, Catalog) {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let mut cfg = Configuration::new(ds.node_count());
        let top = ds.graph().top_node();
        let model = ConfiguredModel::fit(
            &split,
            top,
            &ModelSpec::default_for_period(4),
            &FitOptions::default(),
        )
        .unwrap();
        cfg.insert_model(top, model);
        let all: Vec<NodeId> = (0..ds.node_count()).collect();
        cfg.recompute_nodes(&ds, &split, &all);
        let catalog = Catalog::from_configuration(&ds, &cfg, &FitOptions::default()).unwrap();
        (ds, catalog)
    }

    #[test]
    fn catalog_serves_every_configured_node() {
        let (ds, catalog) = catalog_fixture();
        assert_eq!(catalog.model_count(), 1);
        for v in 0..ds.node_count() {
            let fc = catalog.forecast(v, 4).expect("every node has a scheme");
            assert_eq!(fc.len(), 4);
            assert!(fc.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn weights_use_full_history() {
        let (ds, catalog) = catalog_fixture();
        let top = ds.graph().top_node();
        let base = ds.graph().base_nodes()[0];
        let entry = catalog.entry(base).unwrap();
        assert_eq!(entry.scheme_sources, vec![top]);
        let expect = ds.series(base).history_sum() / ds.series(top).history_sum();
        assert!((entry.weight - expect).abs() < 1e-12);
    }

    #[test]
    fn advance_time_updates_models_and_weights() {
        let (mut ds, mut catalog) = catalog_fixture();
        let top = ds.graph().top_node();
        let obs_before = {
            let m = catalog.models.get(&top).unwrap();
            m.model.observations()
        };
        let new: Vec<(NodeId, f64)> = ds
            .graph()
            .base_nodes()
            .iter()
            .map(|&b| (b, 500.0))
            .collect();
        ds.advance_time(&new).unwrap();
        let mut stats = MaintenanceStats::default();
        catalog.advance_time(
            &ds,
            ds.series_len() - 1,
            &MaintenancePolicy::None,
            &mut stats,
        );
        assert_eq!(stats.model_updates, 1);
        assert_eq!(
            catalog.models.get(&top).unwrap().model.observations(),
            obs_before + 1
        );
        // Weight of an equally-sized base on the total drifts toward 1/32.
        let base = ds.graph().base_nodes()[0];
        let e = catalog.entry(base).unwrap();
        let expect = ds.series(base).history_sum() / ds.series(top).history_sum();
        assert!((e.weight - expect).abs() < 1e-12);
    }

    #[test]
    fn time_based_policy_invalidates_periodically() {
        let (mut ds, mut catalog) = catalog_fixture();
        let policy = MaintenancePolicy::TimeBased { every: 2 };
        let mut stats = MaintenanceStats::default();
        for round in 1..=4 {
            let new: Vec<(NodeId, f64)> = ds
                .graph()
                .base_nodes()
                .iter()
                .map(|&b| (b, 100.0))
                .collect();
            ds.advance_time(&new).unwrap();
            catalog.advance_time(&ds, ds.series_len() - 1, &policy, &mut stats);
            let top = ds.graph().top_node();
            if round == 2 {
                assert!(catalog.is_invalid(top));
                // Re-estimate to observe the next invalidation.
                catalog
                    .reestimate(top, &ds, &FitOptions::default())
                    .unwrap();
                assert!(!catalog.is_invalid(top));
            }
        }
        assert_eq!(stats.invalidations, 2);
    }

    #[test]
    fn threshold_policy_reacts_to_bad_forecasts() {
        let (mut ds, mut catalog) = catalog_fixture();
        let policy = MaintenancePolicy::ThresholdBased {
            smape_threshold: 0.15,
        };
        let mut stats = MaintenanceStats::default();
        // Feed absurd values so the one-step error explodes. The rolling
        // error is an EWMA with weight 0.2, so a single fully-wrong step
        // (SMAPE ≈ 1) pushes it to ≈ 0.2 — above the threshold.
        for _ in 0..2 {
            let new: Vec<(NodeId, f64)> =
                ds.graph().base_nodes().iter().map(|&b| (b, 1e6)).collect();
            ds.advance_time(&new).unwrap();
            catalog.advance_time(&ds, ds.series_len() - 1, &policy, &mut stats);
        }
        assert!(catalog.is_invalid(ds.graph().top_node()));
        assert!(stats.invalidations >= 1);
    }

    #[test]
    fn encode_decode_round_trip() {
        let (_, catalog) = catalog_fixture();
        let bytes = catalog.encode();
        let restored = Catalog::decode(&bytes).unwrap();
        assert_eq!(restored.node_count(), catalog.node_count());
        assert_eq!(restored.model_count(), catalog.model_count());
        for v in 0..catalog.node_count() {
            assert_eq!(restored.entry(v), catalog.entry(v));
            assert_eq!(restored.forecast(v, 3), catalog.forecast(v, 3));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Catalog::decode(b"garbage").is_err());
        let (_, catalog) = catalog_fixture();
        let bytes = catalog.encode();
        assert!(Catalog::decode(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn reestimate_unknown_node_fails() {
        let (ds, mut catalog) = catalog_fixture();
        assert!(catalog.reestimate(0, &ds, &FitOptions::default()).is_err());
    }
}
