//! Configuration storage (§V): the two catalog tables of F²DB, sharded
//! for concurrent access.
//!
//! "The first one stores the time series graph and model configuration
//! (including model assignments, derivation schemes and corresponding
//! weights), and the second table stores the forecast models itself
//! including state and parameter values." Here the first table is the
//! per-node [`CatalogEntry`] map, the second the [`StoredModel`] map;
//! both serialize through the binary [`crate::codec`].
//!
//! ## Concurrency
//!
//! The catalog is split into [`Catalog::shard_count`] shards, each one an
//! independently `RwLock`-guarded slice of the node space keyed by a
//! node-id hash. Point queries on different nodes touch different shards
//! and never contend; the batched time-advance write path takes one shard
//! write lock at a time instead of a global lock, so readers of other
//! shards keep flowing while maintenance runs.
//!
//! Lazy parameter re-estimation is **single-flight**: when a maintenance
//! policy has invalidated a model and many concurrent queries reference
//! it, exactly one thread re-fits (the *leader*); the others wait on the
//! node's in-flight slot and reuse the result. The dedup is observable in
//! the `fdc-obs` registry (`f2db.models.reestimated` counts exactly one
//! re-fit per invalidation epoch, `f2db.reestimate.in_flight` gauges the
//! fits currently running).
//!
//! Consistency model: every individual node read is consistent (shard
//! locks), and [`Catalog::advance_time`] is serialized by the caller
//! (F²DB's maintenance processor). A query that spans shards *while* an
//! advance is in progress may observe a mix of pre- and post-advance
//! models; callers that need strict serial equivalence (the stress suite)
//! phase queries and advances with barriers. A lazy re-fit that races an
//! advance stays safe even without barriers: a refit landing after the
//! dataset append already absorbed the newest observation, and the
//! advance pass detects this (via the model's observation count) and
//! skips its incremental update, so no observation is ever applied twice.

use crate::codec::{Decoder, Encoder};
use crate::maintenance::MaintenancePolicy;
use crate::{F2dbError, Result};
use fdc_cube::{derive_forecast, Configuration, Dataset, NodeId};
use fdc_forecast::model::restore_model;
use fdc_forecast::{FitOptions, ForecastModel};
use fdc_obs::{journal, names, Event, RollingAccuracy};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default number of catalog shards. A modest power of two: enough that 8
/// reader threads rarely collide, small enough that whole-catalog
/// operations (encode, advance) stay cheap.
pub const DEFAULT_SHARD_COUNT: usize = 16;

/// Per-node configuration row: the derivation scheme serving the node.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Source nodes whose model forecasts are combined.
    pub scheme_sources: Vec<NodeId>,
    /// Derivation weight `k` (maintained incrementally as time advances).
    pub weight: f64,
}

/// A stored forecast model with its maintenance state.
pub struct StoredModel {
    /// The live model instance (kept up to date incrementally).
    pub model: Box<dyn ForecastModel>,
    /// Whether the model was marked invalid (parameters stale); lazily
    /// re-estimated when a query references it.
    pub invalid: bool,
    /// Exponentially weighted one-step SMAPE at the model's node, driving
    /// the threshold-based invalidation strategy.
    pub rolling_error: f64,
    /// Invalidation epoch: incremented every time the model is marked
    /// invalid. Lets the stress suite assert that one epoch never pays
    /// for more than one re-estimation. Persisted by the codec (format
    /// version 2), so the count survives a save/restore.
    pub epoch: u64,
}

impl std::fmt::Debug for StoredModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredModel")
            .field("name", &self.model.name())
            .field("invalid", &self.invalid)
            .field("rolling_error", &self.rolling_error)
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// One lock-guarded slice of the catalog: the nodes whose id hashes to
/// this shard, with their configuration rows, models and history sums.
#[derive(Debug, Default)]
struct Shard {
    entries: BTreeMap<NodeId, CatalogEntry>,
    models: BTreeMap<NodeId, StoredModel>,
    history_sums: BTreeMap<NodeId, f64>,
}

/// Tallies of one [`Catalog::advance_time`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvanceOutcome {
    /// Incremental model state updates performed.
    pub model_updates: u64,
    /// Models newly marked invalid (by the policy or a drift alert).
    pub invalidations: u64,
    /// Drift alerts raised by the accuracy tracker during this advance.
    pub drift_alerts: u64,
}

/// How a [`Catalog::reestimate_single_flight`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reestimation {
    /// The model was already valid; nothing to do.
    AlreadyValid,
    /// This thread was the leader and re-fitted the model.
    Refit,
    /// Another thread was already re-fitting; this thread waited on the
    /// in-flight slot and reused the result.
    Waited,
}

/// In-flight slot of a single-flight re-estimation.
#[derive(Debug)]
struct InflightSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

#[derive(Debug)]
enum SlotState {
    Running,
    Done(Option<F2dbError>),
}

impl InflightSlot {
    fn new() -> Self {
        InflightSlot {
            state: Mutex::new(SlotState::Running),
            cv: Condvar::new(),
        }
    }
}

/// The sharded catalog: configuration rows + model store + the per-node
/// history sums needed to update derivation weights incrementally.
#[derive(Debug)]
pub struct Catalog {
    node_count: usize,
    advances: AtomicU64,
    shards: Vec<RwLock<Shard>>,
    inflight: Mutex<HashMap<NodeId, Arc<InflightSlot>>>,
}

/// Fibonacci-hash of a node id (spreads consecutive ids across shards).
fn hash_node(node: NodeId) -> u64 {
    (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl Catalog {
    fn empty(node_count: usize, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        fdc_obs::gauge(names::F2DB_CATALOG_SHARDS).set(shard_count as i64);
        Catalog {
            node_count,
            advances: AtomicU64::new(0),
            shards: (0..shard_count)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    fn shard_of(&self, node: NodeId) -> usize {
        (hash_node(node) % self.shards.len() as u64) as usize
    }

    /// Read-locks shard `i`, counting contended acquisitions into the
    /// `f2db.shard.read_contention` metric.
    fn read_shard(&self, i: usize) -> RwLockReadGuard<'_, Shard> {
        match self.shards[i].try_read() {
            Ok(g) => g,
            Err(_) => {
                fdc_obs::counter(names::F2DB_SHARD_READ_CONTENTION).incr();
                self.shards[i].read().unwrap()
            }
        }
    }

    /// Write-locks shard `i`, counting contended acquisitions into the
    /// `f2db.shard.write_contention` metric.
    fn write_shard(&self, i: usize) -> RwLockWriteGuard<'_, Shard> {
        match self.shards[i].try_write() {
            Ok(g) => g,
            Err(_) => {
                fdc_obs::counter(names::F2DB_SHARD_WRITE_CONTENTION).incr();
                self.shards[i].write().unwrap()
            }
        }
    }

    /// Builds a catalog from an advisor/baseline configuration with the
    /// default shard count.
    ///
    /// Every stored model is refit on the node's **full** history (the
    /// advisor evaluated on the training split; deployment forecasts must
    /// start at the current end of the data). Derivation weights are
    /// recomputed over the full history accordingly.
    pub fn from_configuration(
        dataset: &Dataset,
        configuration: &Configuration,
        fit: &FitOptions,
    ) -> Result<Self> {
        Self::from_configuration_sharded(dataset, configuration, fit, DEFAULT_SHARD_COUNT)
    }

    /// [`Catalog::from_configuration`] with an explicit shard count
    /// (`1` reproduces a single global lock — the concurrency baseline).
    pub fn from_configuration_sharded(
        dataset: &Dataset,
        configuration: &Configuration,
        fit: &FitOptions,
        shard_count: usize,
    ) -> Result<Self> {
        let n = dataset.node_count();
        let catalog = Catalog::empty(n, shard_count);
        let history_sums: Vec<f64> = (0..n).map(|v| dataset.series(v).history_sum()).collect();
        for (node, cm) in configuration.models() {
            let model = cm
                .spec
                .fit(dataset.series(node), fit)
                .map_err(|e| F2dbError::Cube(format!("refitting model at node {node}: {e}")))?;
            let mut shard = catalog.shards[catalog.shard_of(node)].write().unwrap();
            shard.models.insert(
                node,
                StoredModel {
                    model,
                    invalid: false,
                    rolling_error: 0.0,
                    epoch: 0,
                },
            );
        }
        for v in 0..n {
            let mut shard = catalog.shards[catalog.shard_of(v)].write().unwrap();
            shard.history_sums.insert(v, history_sums[v]);
            if let Some(scheme) = &configuration.estimate(v).scheme {
                let h_s: f64 = scheme.sources.iter().map(|&s| history_sums[s]).sum();
                let weight = if h_s.abs() < f64::EPSILON {
                    0.0
                } else {
                    history_sums[v] / h_s
                };
                shard.entries.insert(
                    v,
                    CatalogEntry {
                        scheme_sources: scheme.sources.clone(),
                        weight,
                    },
                );
            }
        }
        Ok(catalog)
    }

    /// Redistributes the catalog over `shard_count` shards (contents and
    /// on-disk encoding are shard-count independent).
    pub fn reshard(self, shard_count: usize) -> Self {
        let advances = self.advances.load(Ordering::SeqCst);
        let resharded = Catalog::empty(self.node_count, shard_count);
        resharded.advances.store(advances, Ordering::SeqCst);
        for old in self.shards {
            let old = old.into_inner().unwrap();
            for (node, entry) in old.entries {
                resharded.shards[resharded.shard_of(node)]
                    .write()
                    .unwrap()
                    .entries
                    .insert(node, entry);
            }
            for (node, stored) in old.models {
                resharded.shards[resharded.shard_of(node)]
                    .write()
                    .unwrap()
                    .models
                    .insert(node, stored);
            }
            for (node, h) in old.history_sums {
                resharded.shards[resharded.shard_of(node)]
                    .write()
                    .unwrap()
                    .history_sums
                    .insert(node, h);
            }
        }
        resharded
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of shards the catalog is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lifetime count of time advances this catalog has absorbed —
    /// persisted with the catalog, so it survives a save/open cycle and
    /// lets a restart verify that every acknowledged advance was durable.
    pub fn advances(&self) -> u64 {
        self.advances.load(Ordering::SeqCst)
    }

    /// Number of stored models.
    pub fn model_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap().models.len())
            .sum()
    }

    /// The configuration row of `node` (cloned out of its shard).
    pub fn entry(&self, node: NodeId) -> Option<CatalogEntry> {
        self.read_shard(self.shard_of(node))
            .entries
            .get(&node)
            .cloned()
    }

    /// Whether the model at `node` is marked invalid.
    pub fn is_invalid(&self, node: NodeId) -> bool {
        self.read_shard(self.shard_of(node))
            .models
            .get(&node)
            .is_some_and(|m| m.invalid)
    }

    /// Invalidation epoch of the model at `node` (how many times it has
    /// been marked invalid so far).
    pub fn epoch(&self, node: NodeId) -> Option<u64> {
        self.read_shard(self.shard_of(node))
            .models
            .get(&node)
            .map(|m| m.epoch)
    }

    /// Number of observations the model at `node` has absorbed.
    pub fn observations(&self, node: NodeId) -> Option<usize> {
        self.read_shard(self.shard_of(node))
            .models
            .get(&node)
            .map(|m| m.model.observations())
    }

    /// Rolling one-step SMAPE of the model at `node`.
    pub fn rolling_error(&self, node: NodeId) -> Option<f64> {
        self.read_shard(self.shard_of(node))
            .models
            .get(&node)
            .map(|m| m.rolling_error)
    }

    /// All nodes whose models are currently marked invalid, ascending.
    pub fn invalid_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap()
                    .models
                    .iter()
                    .filter(|(_, m)| m.invalid)
                    .map(|(&n, _)| n)
                    .collect::<Vec<_>>()
            })
            .collect();
        nodes.sort_unstable();
        nodes
    }

    /// Marks the model at `node` invalid (next referencing query pays for
    /// a re-estimation). Returns whether the flag changed.
    pub fn invalidate(&self, node: NodeId) -> bool {
        let mut shard = self.write_shard(self.shard_of(node));
        match shard.models.get_mut(&node) {
            Some(m) if !m.invalid => {
                m.invalid = true;
                m.epoch += 1;
                true
            }
            _ => false,
        }
    }

    /// Marks every stored model invalid; returns how many flags changed.
    pub fn invalidate_all(&self) -> usize {
        let mut changed = 0;
        for lock in &self.shards {
            let mut shard = lock.write().unwrap();
            for m in shard.models.values_mut() {
                if !m.invalid {
                    m.invalid = true;
                    m.epoch += 1;
                    changed += 1;
                }
            }
        }
        changed
    }

    /// Computes the forecast of `node` from its scheme and the stored
    /// models. `None` when the node has no scheme or a source model is
    /// missing.
    pub fn forecast(&self, node: NodeId, horizon: usize) -> Option<Vec<f64>> {
        let entry = self.entry(node)?;
        let mut forecasts = Vec::with_capacity(entry.scheme_sources.len());
        for &s in &entry.scheme_sources {
            let shard = self.read_shard(self.shard_of(s));
            forecasts.push(shard.models.get(&s)?.model.forecast(horizon));
        }
        let refs: Vec<&[f64]> = forecasts.iter().map(|f| f.as_slice()).collect();
        Some(derive_forecast(&refs, entry.weight))
    }

    /// Advances the catalog by one time stamp after the data set grew:
    /// model states absorb their node's new actual value, rolling errors
    /// update, derivation weights are refreshed from the new history
    /// sums, and the invalidation policy is applied.
    ///
    /// Takes per-shard write locks one at a time (never a global lock);
    /// the caller (F²DB's maintenance processor) serializes concurrent
    /// advances.
    pub fn advance_time(
        &self,
        dataset: &Dataset,
        last_index: usize,
        policy: &MaintenancePolicy,
    ) -> AdvanceOutcome {
        self.advance_time_with(dataset, last_index, policy, None)
    }

    /// [`Catalog::advance_time`] with an optional [`RollingAccuracy`]
    /// tracker: each stored model's `(actual, one-step forecast)` pair is
    /// fed into the tracker, and a [`fdc_obs::DriftAlert`] (windowed
    /// SMAPE crossing its threshold, or MAE exceeding the node's own
    /// baseline by k·stddev) additionally marks the model invalid —
    /// drift is a first-class invalidation trigger alongside the
    /// configured policy. Alerts land in the event journal (tagged with
    /// their trigger) and the `f2db.drift.alerts` counter.
    pub fn advance_time_with(
        &self,
        dataset: &Dataset,
        last_index: usize,
        policy: &MaintenancePolicy,
        accuracy: Option<&RollingAccuracy>,
    ) -> AdvanceOutcome {
        let advances = self.advances.fetch_add(1, Ordering::SeqCst) + 1;
        let time_due = match policy {
            MaintenancePolicy::TimeBased { every } => {
                *every > 0 && advances.is_multiple_of(*every as u64)
            }
            _ => false,
        };
        let mut out = AdvanceOutcome::default();
        // Pass 1 (per-shard write): model state updates + history sums +
        // invalidation. No cross-shard data is needed here.
        for lock in &self.shards {
            let mut shard = lock.write().unwrap();
            let shard = &mut *shard;
            for (&node, stored) in shard.models.iter_mut() {
                // A lazy re-fit racing this advance may already have
                // fitted the model on the history *including*
                // `last_index`: the dataset append happens before these
                // shard passes, so a query's refit can observe the new
                // value first. Re-applying the incremental update would
                // absorb the newest observation twice and every later
                // forecast would silently diverge from the serial order.
                // Such a refit instead serializes after this advance:
                // skip the update, the rolling-error step and the policy
                // (whose invalidation that refit already consumed).
                if stored.model.observations() > last_index {
                    fdc_obs::counter(names::F2DB_ADVANCE_SKIPPED_UPDATES).incr();
                    continue;
                }
                let actual = dataset.series(node).values()[last_index];
                let predicted = stored.model.forecast(1)[0];
                let denom = (actual + predicted).abs();
                let step_err = if denom < f64::EPSILON {
                    0.0
                } else {
                    (actual - predicted).abs() / denom
                };
                stored.rolling_error = 0.8 * stored.rolling_error + 0.2 * step_err;
                stored.model.update(actual);
                out.model_updates += 1;
                let mut invalidate = match policy {
                    MaintenancePolicy::None => false,
                    MaintenancePolicy::TimeBased { .. } => time_due,
                    MaintenancePolicy::ThresholdBased { smape_threshold } => {
                        stored.rolling_error > *smape_threshold
                    }
                };
                if let Some(acc) = accuracy {
                    if let Some(alert) = acc.record(node as u64, actual, predicted) {
                        out.drift_alerts += 1;
                        invalidate = true;
                        fdc_obs::counter(names::F2DB_DRIFT_ALERTS).incr();
                        journal().publish(Event::DriftAlert {
                            node: node as u64,
                            smape: alert.smape,
                            mae: alert.mae,
                            threshold: alert.threshold,
                            trigger: alert.trigger.as_str(),
                        });
                    }
                }
                if invalidate && !stored.invalid {
                    stored.invalid = true;
                    stored.epoch += 1;
                    out.invalidations += 1;
                }
            }
            for (&node, h) in shard.history_sums.iter_mut() {
                *h += dataset.series(node).values()[last_index];
            }
        }
        // Pass 2 (per-shard read): snapshot the full history-sum vector.
        let mut sums = vec![0.0; self.node_count];
        for lock in &self.shards {
            let shard = lock.read().unwrap();
            for (&node, &h) in &shard.history_sums {
                sums[node] = h;
            }
        }
        // Pass 3 (per-shard write): refresh derivation weights from the
        // snapshot (weights need the sums of cross-shard source nodes).
        for lock in &self.shards {
            let mut shard = lock.write().unwrap();
            for (&v, entry) in shard.entries.iter_mut() {
                let h_s: f64 = entry.scheme_sources.iter().map(|&s| sums[s]).sum();
                entry.weight = if h_s.abs() < f64::EPSILON {
                    0.0
                } else {
                    sums[v] / h_s
                };
            }
        }
        out
    }

    /// Re-estimates the model at `node` on its full current history and
    /// clears the invalid flag (lazy maintenance, §V). Unconditional —
    /// concurrent callers should prefer
    /// [`Catalog::reestimate_single_flight`].
    pub fn reestimate(&self, node: NodeId, dataset: &Dataset, fit: &FitOptions) -> Result<()> {
        let mut shard = self.write_shard(self.shard_of(node));
        let stored = shard
            .models
            .get_mut(&node)
            .ok_or_else(|| F2dbError::Semantic(format!("no model at node {node}")))?;
        fit.apply_artificial_cost();
        stored
            .model
            .refit(dataset.series(node), fit)
            .map_err(|e| F2dbError::Cube(format!("re-estimating node {node}: {e}")))?;
        stored.invalid = false;
        stored.rolling_error = 0.0;
        Ok(())
    }

    /// Re-estimates the model at `node` only if it is still invalid.
    /// Returns whether a re-fit actually happened.
    fn reestimate_if_invalid(
        &self,
        node: NodeId,
        dataset: &Dataset,
        fit: &FitOptions,
    ) -> Result<bool> {
        let mut shard = self.write_shard(self.shard_of(node));
        let stored = shard
            .models
            .get_mut(&node)
            .ok_or_else(|| F2dbError::Semantic(format!("no model at node {node}")))?;
        if !stored.invalid {
            return Ok(false);
        }
        fit.apply_artificial_cost();
        stored
            .model
            .refit(dataset.series(node), fit)
            .map_err(|e| F2dbError::Cube(format!("re-estimating node {node}: {e}")))?;
        stored.invalid = false;
        stored.rolling_error = 0.0;
        Ok(true)
    }

    /// Single-flight lazy re-estimation: when many threads hit the same
    /// invalidated model, exactly one re-fits; the rest wait on the
    /// node's in-flight slot and reuse the result. Re-fitting is
    /// deterministic (full-history refit), so which thread leads does not
    /// affect the forecasts served afterwards.
    pub fn reestimate_single_flight(
        &self,
        node: NodeId,
        dataset: &Dataset,
        fit: &FitOptions,
    ) -> Result<Reestimation> {
        let mut waited = false;
        loop {
            if !self.is_invalid(node) {
                return Ok(if waited {
                    Reestimation::Waited
                } else {
                    Reestimation::AlreadyValid
                });
            }
            let (slot, leader) = {
                let mut map = self.inflight.lock().unwrap();
                match map.entry(node) {
                    std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        (Arc::clone(v.insert(Arc::new(InflightSlot::new()))), true)
                    }
                }
            };
            if leader {
                let in_flight = fdc_obs::gauge(names::F2DB_REESTIMATE_IN_FLIGHT);
                in_flight.incr();
                let result = self.reestimate_if_invalid(node, dataset, fit);
                {
                    let mut state = slot.state.lock().unwrap();
                    *state = SlotState::Done(result.as_ref().err().cloned());
                    slot.cv.notify_all();
                }
                self.inflight.lock().unwrap().remove(&node);
                in_flight.decr();
                if let Ok(true) = result {
                    journal().publish(Event::ReEstimation {
                        node: node as u64,
                        epoch: self.epoch(node).unwrap_or(0),
                        outcome: "refit",
                    });
                }
                return match result {
                    Ok(true) => Ok(Reestimation::Refit),
                    Ok(false) => Ok(if waited {
                        Reestimation::Waited
                    } else {
                        Reestimation::AlreadyValid
                    }),
                    Err(e) => Err(e),
                };
            }
            let mut state = slot.state.lock().unwrap();
            while matches!(*state, SlotState::Running) {
                state = slot.cv.wait(state).unwrap();
            }
            if let SlotState::Done(Some(e)) = &*state {
                return Err(e.clone());
            }
            drop(state);
            waited = true;
            // Loop: the model is normally valid now; re-check handles the
            // race where a new invalidation landed in the meantime.
        }
    }

    /// Serializes the catalog. The byte layout is canonical (node order)
    /// and therefore independent of the shard count.
    pub fn encode(&self) -> Vec<u8> {
        // Lock every shard (ascending index) for a consistent snapshot.
        let guards: Vec<RwLockReadGuard<'_, Shard>> =
            self.shards.iter().map(|s| s.read().unwrap()).collect();
        let entry_of = |v: NodeId| guards[self.shard_of(v)].entries.get(&v);
        let model_of = |v: NodeId| guards[self.shard_of(v)].models.get(&v);

        let mut e = Encoder::with_header();
        e.put_len(self.node_count);
        for v in 0..self.node_count {
            match entry_of(v) {
                None => e.put_u8(0),
                Some(en) => {
                    e.put_u8(1);
                    e.put_usize_slice(&en.scheme_sources);
                    e.put_f64(en.weight);
                }
            }
        }
        let model_nodes: Vec<NodeId> = (0..self.node_count)
            .filter(|&v| model_of(v).is_some())
            .collect();
        e.put_len(model_nodes.len());
        for &node in &model_nodes {
            let stored = model_of(node).expect("model listed above");
            e.put_u64(node as u64);
            e.put_u8(stored.invalid as u8);
            e.put_f64(stored.rolling_error);
            e.put_u64(stored.epoch);
            e.put_model_state(&stored.model.state());
        }
        let sums: Vec<f64> = (0..self.node_count)
            .map(|v| {
                guards[self.shard_of(v)]
                    .history_sums
                    .get(&v)
                    .copied()
                    .unwrap_or(0.0)
            })
            .collect();
        e.put_f64_slice(&sums);
        e.put_u64(self.advances.load(Ordering::SeqCst));
        e.finish()
    }

    /// Deserializes a catalog into the default shard count.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        Self::decode_sharded(bytes, DEFAULT_SHARD_COUNT)
    }

    /// Deserializes a catalog into an explicit shard count.
    pub fn decode_sharded(bytes: &[u8], shard_count: usize) -> Result<Self> {
        let mut d = Decoder::with_header(bytes)?;
        let n = d.get_len()?;
        let mut entries: Vec<Option<CatalogEntry>> = Vec::with_capacity(n);
        for _ in 0..n {
            match d.get_u8()? {
                0 => entries.push(None),
                1 => {
                    let scheme_sources = d.get_usize_vec()?;
                    let weight = d.get_f64()?;
                    entries.push(Some(CatalogEntry {
                        scheme_sources,
                        weight,
                    }));
                }
                t => return Err(F2dbError::Storage(format!("bad entry tag {t}"))),
            }
        }
        let m = d.get_len()?;
        let mut models = BTreeMap::new();
        for _ in 0..m {
            let node = d.get_u64()? as usize;
            let invalid = d.get_u8()? != 0;
            let rolling_error = d.get_f64()?;
            // Version 1 predates invalidation epochs; migrate to epoch 0
            // (the counter restarts, the model state is unaffected).
            let epoch = if d.version() >= 2 { d.get_u64()? } else { 0 };
            let state = d.get_model_state()?;
            let model = restore_model(&state)
                .map_err(|e| F2dbError::Storage(format!("restoring model: {e}")))?;
            models.insert(
                node,
                StoredModel {
                    model,
                    invalid,
                    rolling_error,
                    epoch,
                },
            );
        }
        let history_sums = d.get_f64_vec()?;
        let advances = d.get_u64()?;
        if history_sums.len() != entries.len() {
            return Err(F2dbError::Storage("inconsistent catalog arrays".into()));
        }
        let catalog = Catalog::empty(n, shard_count);
        catalog.advances.store(advances, Ordering::SeqCst);
        for (v, entry) in entries.into_iter().enumerate() {
            let mut shard = catalog.shards[catalog.shard_of(v)].write().unwrap();
            shard.history_sums.insert(v, history_sums[v]);
            if let Some(en) = entry {
                shard.entries.insert(v, en);
            }
        }
        for (node, stored) in models {
            if node >= n {
                return Err(F2dbError::Storage(format!(
                    "model at node {node} outside catalog of {n} nodes"
                )));
            }
            catalog.shards[catalog.shard_of(node)]
                .write()
                .unwrap()
                .models
                .insert(node, stored);
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cube::{ConfiguredModel, CubeSplit};
    use fdc_datagen::tourism_proxy;
    use fdc_forecast::ModelSpec;

    fn catalog_fixture() -> (Dataset, Catalog) {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let mut cfg = Configuration::new(ds.node_count());
        let top = ds.graph().top_node();
        let model = ConfiguredModel::fit(
            &split,
            top,
            &ModelSpec::default_for_period(4),
            &FitOptions::default(),
        )
        .unwrap();
        cfg.insert_model(top, model);
        let all: Vec<NodeId> = (0..ds.node_count()).collect();
        cfg.recompute_nodes(&ds, &split, &all);
        let catalog = Catalog::from_configuration(&ds, &cfg, &FitOptions::default()).unwrap();
        (ds, catalog)
    }

    #[test]
    fn catalog_serves_every_configured_node() {
        let (ds, catalog) = catalog_fixture();
        assert_eq!(catalog.model_count(), 1);
        assert_eq!(catalog.shard_count(), DEFAULT_SHARD_COUNT);
        for v in 0..ds.node_count() {
            let fc = catalog.forecast(v, 4).expect("every node has a scheme");
            assert_eq!(fc.len(), 4);
            assert!(fc.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn weights_use_full_history() {
        let (ds, catalog) = catalog_fixture();
        let top = ds.graph().top_node();
        let base = ds.graph().base_nodes()[0];
        let entry = catalog.entry(base).unwrap();
        assert_eq!(entry.scheme_sources, vec![top]);
        let expect = ds.series(base).history_sum() / ds.series(top).history_sum();
        assert!((entry.weight - expect).abs() < 1e-12);
    }

    #[test]
    fn advance_time_updates_models_and_weights() {
        let (mut ds, catalog) = catalog_fixture();
        let top = ds.graph().top_node();
        let obs_before = catalog.observations(top).unwrap();
        let new: Vec<(NodeId, f64)> = ds
            .graph()
            .base_nodes()
            .iter()
            .map(|&b| (b, 500.0))
            .collect();
        ds.advance_time(&new).unwrap();
        let out = catalog.advance_time(&ds, ds.series_len() - 1, &MaintenancePolicy::None);
        assert_eq!(out.model_updates, 1);
        assert_eq!(catalog.observations(top).unwrap(), obs_before + 1);
        // Weight of an equally-sized base on the total drifts toward 1/32.
        let base = ds.graph().base_nodes()[0];
        let e = catalog.entry(base).unwrap();
        let expect = ds.series(base).history_sum() / ds.series(top).history_sum();
        assert!((e.weight - expect).abs() < 1e-12);
    }

    #[test]
    fn time_based_policy_invalidates_periodically() {
        let (mut ds, catalog) = catalog_fixture();
        let policy = MaintenancePolicy::TimeBased { every: 2 };
        let mut invalidations = 0;
        for round in 1..=4 {
            let new: Vec<(NodeId, f64)> = ds
                .graph()
                .base_nodes()
                .iter()
                .map(|&b| (b, 100.0))
                .collect();
            ds.advance_time(&new).unwrap();
            invalidations += catalog
                .advance_time(&ds, ds.series_len() - 1, &policy)
                .invalidations;
            let top = ds.graph().top_node();
            if round == 2 {
                assert!(catalog.is_invalid(top));
                assert_eq!(catalog.epoch(top), Some(1));
                // Re-estimate to observe the next invalidation.
                catalog
                    .reestimate(top, &ds, &FitOptions::default())
                    .unwrap();
                assert!(!catalog.is_invalid(top));
            }
        }
        assert_eq!(invalidations, 2);
    }

    #[test]
    fn threshold_policy_reacts_to_bad_forecasts() {
        let (mut ds, catalog) = catalog_fixture();
        let policy = MaintenancePolicy::ThresholdBased {
            smape_threshold: 0.15,
        };
        let mut invalidations = 0;
        // Feed absurd values so the one-step error explodes. The rolling
        // error is an EWMA with weight 0.2, so a single fully-wrong step
        // (SMAPE ≈ 1) pushes it to ≈ 0.2 — above the threshold.
        for _ in 0..2 {
            let new: Vec<(NodeId, f64)> =
                ds.graph().base_nodes().iter().map(|&b| (b, 1e6)).collect();
            ds.advance_time(&new).unwrap();
            invalidations += catalog
                .advance_time(&ds, ds.series_len() - 1, &policy)
                .invalidations;
        }
        assert!(catalog.is_invalid(ds.graph().top_node()));
        assert!(invalidations >= 1);
    }

    #[test]
    fn racing_refit_is_not_double_updated_by_advance() {
        let (mut ds, catalog) = catalog_fixture();
        let top = ds.graph().top_node();
        assert!(catalog.invalidate(top));
        let new: Vec<(NodeId, f64)> = ds
            .graph()
            .base_nodes()
            .iter()
            .map(|&b| (b, 321.0))
            .collect();
        ds.advance_time(&new).unwrap();
        // Replay the race window serially: a lazy refit lands between the
        // dataset append and the catalog advance, fitting through the new
        // observation and clearing the invalid flag.
        catalog
            .reestimate(top, &ds, &FitOptions::default())
            .unwrap();
        let obs = catalog.observations(top).unwrap();
        assert_eq!(obs, ds.series_len());
        let epoch = catalog.epoch(top);
        let out = catalog.advance_time(
            &ds,
            ds.series_len() - 1,
            &MaintenancePolicy::TimeBased { every: 1 },
        );
        assert_eq!(out.model_updates, 0, "already-fitted model must be skipped");
        assert_eq!(out.invalidations, 0, "the refit consumed this invalidation");
        assert_eq!(
            catalog.observations(top),
            Some(obs),
            "observation absorbed twice"
        );
        assert_eq!(catalog.epoch(top), epoch);
        assert!(!catalog.is_invalid(top));
        // The next advance updates the model normally again.
        let new: Vec<(NodeId, f64)> = ds
            .graph()
            .base_nodes()
            .iter()
            .map(|&b| (b, 322.0))
            .collect();
        ds.advance_time(&new).unwrap();
        let out = catalog.advance_time(&ds, ds.series_len() - 1, &MaintenancePolicy::None);
        assert_eq!(out.model_updates, 1);
        assert_eq!(catalog.observations(top), Some(obs + 1));
    }

    #[test]
    fn epochs_survive_codec_round_trip() {
        let (ds, catalog) = catalog_fixture();
        let top = ds.graph().top_node();
        // Two full invalidation epochs, ending valid: epoch 2, invalid
        // false — a state the invalid flag alone cannot reconstruct.
        catalog.invalidate(top);
        catalog
            .reestimate(top, &ds, &FitOptions::default())
            .unwrap();
        catalog.invalidate(top);
        catalog
            .reestimate(top, &ds, &FitOptions::default())
            .unwrap();
        assert_eq!(catalog.epoch(top), Some(2));
        assert!(!catalog.is_invalid(top));
        let restored = Catalog::decode(&catalog.encode()).unwrap();
        assert_eq!(restored.epoch(top), Some(2));
        assert!(!restored.is_invalid(top));
    }

    #[test]
    fn encode_decode_round_trip() {
        let (_, catalog) = catalog_fixture();
        let bytes = catalog.encode();
        let restored = Catalog::decode(&bytes).unwrap();
        assert_eq!(restored.node_count(), catalog.node_count());
        assert_eq!(restored.model_count(), catalog.model_count());
        for v in 0..catalog.node_count() {
            assert_eq!(restored.entry(v), catalog.entry(v));
            assert_eq!(restored.forecast(v, 3), catalog.forecast(v, 3));
        }
    }

    #[test]
    fn encoding_is_shard_count_independent() {
        let (_, catalog) = catalog_fixture();
        let bytes = catalog.encode();
        for shards in [1, 3, 7, 64] {
            let re = Catalog::decode_sharded(&bytes, shards).unwrap();
            assert_eq!(re.shard_count(), shards);
            assert_eq!(re.encode(), bytes, "{shards}-shard layout changed bytes");
        }
        let resharded = Catalog::decode(&bytes).unwrap().reshard(5);
        assert_eq!(resharded.encode(), bytes);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Catalog::decode(b"garbage").is_err());
        let (_, catalog) = catalog_fixture();
        let bytes = catalog.encode();
        assert!(Catalog::decode(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn reestimate_unknown_node_fails() {
        let (ds, catalog) = catalog_fixture();
        assert!(catalog.reestimate(0, &ds, &FitOptions::default()).is_err());
        assert!(catalog
            .reestimate_single_flight(ds.graph().top_node(), &ds, &FitOptions::default())
            .is_ok());
    }

    #[test]
    fn single_flight_dedups_concurrent_reestimation() {
        let (ds, catalog) = catalog_fixture();
        let top = ds.graph().top_node();
        assert!(catalog.invalidate(top));
        assert!(!catalog.invalidate(top), "already invalid");
        assert_eq!(catalog.epoch(top), Some(1));

        let fit = FitOptions::default();
        let outcomes: Vec<Reestimation> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        catalog
                            .reestimate_single_flight(top, &ds, &fit)
                            .expect("re-estimation succeeds")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let refits = outcomes
            .iter()
            .filter(|o| **o == Reestimation::Refit)
            .count();
        assert_eq!(refits, 1, "exactly one leader per epoch: {outcomes:?}");
        assert!(!catalog.is_invalid(top));
        // A second epoch pays for exactly one more re-fit.
        catalog.invalidate(top);
        assert_eq!(catalog.epoch(top), Some(2));
        assert_eq!(
            catalog.reestimate_single_flight(top, &ds, &fit).unwrap(),
            Reestimation::Refit
        );
    }

    #[test]
    fn invalidate_all_flags_every_model() {
        let (_, catalog) = catalog_fixture();
        assert_eq!(catalog.invalidate_all(), catalog.model_count());
        assert_eq!(catalog.invalidate_all(), 0);
        assert_eq!(catalog.invalid_nodes().len(), catalog.model_count());
    }
}
