//! Hand-rolled tokenizer and recursive-descent parser for the forecast
//! query dialect.
//!
//! Supported grammar (keywords case-insensitive):
//!
//! ```text
//! statement := forecast | explain | insert
//! explain   := EXPLAIN (ANALYZE)? forecast
//! forecast  := SELECT item (',' item)* FROM ident
//!              (WHERE pred (AND pred)*)?
//!              (GROUP BY group (',' group)*)?
//!              AS OF NOW '(' ')' '+' STRING
//! item      := ident | SUM '(' ident ')'
//! pred      := ident '=' STRING
//! group     := ident                  -- `time` marks plain aggregation
//! insert    := INSERT INTO ident VALUES '(' STRING (',' STRING)* ',' NUMBER ')'
//! ```
//!
//! The AS OF string holds the horizon, e.g. `'1 day'`, `'4 quarters'` or
//! `'6 steps'`.

use crate::query::{AggregateFn, ForecastQuery, HorizonSpec, Statement, TimeUnit};
use crate::{F2dbError, Result};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Number(f64),
    Comma,
    LParen,
    RParen,
    Equals,
    Plus,
}

fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = sql.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '=' => {
                chars.next();
                tokens.push(Token::Equals);
            }
            '+' => {
                chars.next();
                tokens.push(Token::Plus);
            }
            ';' => {
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(c) => s.push(c),
                        None => {
                            return Err(F2dbError::Parse("unterminated string literal".into()));
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v: f64 = s
                    .parse()
                    .map_err(|_| F2dbError::Parse(format!("bad number literal: {s}")))?;
                tokens.push(Token::Number(v));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            other => {
                return Err(F2dbError::Parse(format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| F2dbError::Parse("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(F2dbError::Parse(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn expect(&mut self, token: Token) -> Result<()> {
        let t = self.next()?;
        if t == token {
            Ok(())
        } else {
            Err(F2dbError::Parse(format!("expected {token:?}, found {t:?}")))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(F2dbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.next()? {
            Token::Str(s) => Ok(s),
            other => Err(F2dbError::Parse(format!(
                "expected string literal, found {other:?}"
            ))),
        }
    }
}

/// Parses one SQL statement of the dialect.
pub fn parse_query(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    if p.peek_keyword("insert") {
        parse_insert(&mut p)
    } else if p.peek_keyword("explain") {
        p.next()?;
        let analyze = p.peek_keyword("analyze");
        if analyze {
            p.next()?;
        }
        match parse_forecast(&mut p)? {
            Statement::Forecast(q) => Ok(Statement::Explain { query: q, analyze }),
            other => Ok(other),
        }
    } else {
        parse_forecast(&mut p)
    }
}

fn parse_insert(p: &mut Parser) -> Result<Statement> {
    p.expect_keyword("insert")?;
    p.expect_keyword("into")?;
    let _table = p.ident()?;
    p.expect_keyword("values")?;
    p.expect(Token::LParen)?;
    let mut values = Vec::new();
    let measure = loop {
        match p.next()? {
            Token::Str(s) => {
                values.push(s);
                match p.next()? {
                    Token::Comma => continue,
                    Token::RParen => {
                        return Err(F2dbError::Parse(
                            "INSERT must end with the numeric measure".into(),
                        ));
                    }
                    other => {
                        return Err(F2dbError::Parse(format!("expected `,`, found {other:?}")));
                    }
                }
            }
            Token::Number(v) => {
                p.expect(Token::RParen)?;
                break v;
            }
            other => {
                return Err(F2dbError::Parse(format!(
                    "expected value literal, found {other:?}"
                )));
            }
        }
    };
    if values.is_empty() {
        return Err(F2dbError::Parse(
            "INSERT needs at least one dimension value".into(),
        ));
    }
    Ok(Statement::Insert { values, measure })
}

fn parse_forecast(p: &mut Parser) -> Result<Statement> {
    p.expect_keyword("select")?;
    let mut select = Vec::new();
    let mut aggregate = AggregateFn::Sum;
    loop {
        let item = p.ident()?;
        if item.eq_ignore_ascii_case("sum") || item.eq_ignore_ascii_case("avg") {
            p.expect(Token::LParen)?;
            let inner = p.ident()?;
            p.expect(Token::RParen)?;
            if item.eq_ignore_ascii_case("avg") {
                aggregate = AggregateFn::Avg;
            }
            select.push(format!("{}({inner})", item.to_ascii_uppercase()));
        } else {
            select.push(item);
        }
        match p.peek() {
            Some(Token::Comma) => {
                p.next()?;
            }
            _ => break,
        }
    }
    p.expect_keyword("from")?;
    let table = p.ident()?;

    let mut predicates = Vec::new();
    if p.peek_keyword("where") {
        p.next()?;
        loop {
            let dim = p.ident()?;
            p.expect(Token::Equals)?;
            let value = p.string()?;
            predicates.push((dim, value));
            if p.peek_keyword("and") {
                p.next()?;
            } else {
                break;
            }
        }
    }

    let mut group_dims = Vec::new();
    if p.peek_keyword("group") {
        p.next()?;
        p.expect_keyword("by")?;
        loop {
            let g = p.ident()?;
            if !g.eq_ignore_ascii_case("time") {
                group_dims.push(g);
            }
            match p.peek() {
                Some(Token::Comma) => {
                    p.next()?;
                }
                _ => break,
            }
        }
    }

    p.expect_keyword("as")?;
    p.expect_keyword("of")?;
    p.expect_keyword("now")?;
    p.expect(Token::LParen)?;
    p.expect(Token::RParen)?;
    p.expect(Token::Plus)?;
    let horizon_str = p.string()?;
    let horizon = parse_horizon(&horizon_str)?;

    if p.peek().is_some() {
        return Err(F2dbError::Parse(
            "trailing tokens after AS OF clause".into(),
        ));
    }
    Ok(Statement::Forecast(ForecastQuery {
        select,
        table,
        predicates,
        group_dims,
        horizon,
        aggregate,
    }))
}

/// Parses the horizon string of the AS OF clause, e.g. `1 day`,
/// `4 quarters` or `6 steps`.
pub fn parse_horizon(s: &str) -> Result<HorizonSpec> {
    let mut parts = s.split_whitespace();
    let n: usize = parts
        .next()
        .ok_or_else(|| F2dbError::Parse("empty horizon".into()))?
        .parse()
        .map_err(|_| F2dbError::Parse(format!("bad horizon quantity in `{s}`")))?;
    if n == 0 {
        return Err(F2dbError::Parse("horizon must be positive".into()));
    }
    let unit_word = parts
        .next()
        .ok_or_else(|| F2dbError::Parse(format!("missing horizon unit in `{s}`")))?
        .to_ascii_lowercase();
    if parts.next().is_some() {
        return Err(F2dbError::Parse(format!("malformed horizon `{s}`")));
    }
    let unit = match unit_word.trim_end_matches('s') {
        "step" => return Ok(HorizonSpec::Steps(n)),
        "hour" => TimeUnit::Hour,
        "day" => TimeUnit::Day,
        "week" => TimeUnit::Week,
        "month" => TimeUnit::Month,
        "quarter" => TimeUnit::Quarter,
        "year" => TimeUnit::Year,
        other => {
            return Err(F2dbError::Parse(format!("unknown horizon unit `{other}`")));
        }
    };
    Ok(HorizonSpec::Units { n, unit })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forecast(sql: &str) -> ForecastQuery {
        match parse_query(sql).unwrap() {
            Statement::Forecast(q) => q,
            other => panic!("expected forecast, got {other:?}"),
        }
    }

    #[test]
    fn parses_query1_of_figure1() {
        let q = forecast(
            "SELECT time, sales FROM facts WHERE product = 'P4' AND city = 'C4' AS OF now() + '1 day'",
        );
        assert_eq!(q.select, vec!["time", "sales"]);
        assert_eq!(q.table, "facts");
        assert_eq!(
            q.predicates,
            vec![
                ("product".to_string(), "P4".to_string()),
                ("city".to_string(), "C4".to_string())
            ]
        );
        assert!(q.group_dims.is_empty());
        assert_eq!(
            q.horizon,
            HorizonSpec::Units {
                n: 1,
                unit: TimeUnit::Day
            }
        );
    }

    #[test]
    fn parses_query2_of_figure1() {
        let q = forecast(
            "SELECT time, SUM(sales) FROM facts WHERE product = 'P4' AND region = 'R2' GROUP BY time AS OF now() + '1 day'",
        );
        assert_eq!(q.select, vec!["time", "SUM(sales)"]);
        assert!(q.group_dims.is_empty(), "GROUP BY time is aggregation only");
    }

    #[test]
    fn group_by_dimension_is_captured() {
        let q = forecast(
            "SELECT time, SUM(sales) FROM facts GROUP BY time, region AS OF now() + '2 days'",
        );
        assert_eq!(q.group_dims, vec!["region"]);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = forecast("select time, v from facts where a = 'x' as of NOW() + '3 steps'");
        assert_eq!(q.horizon, HorizonSpec::Steps(3));
        assert_eq!(q.predicates[0].0, "a");
    }

    #[test]
    fn parses_explain_and_explain_analyze() {
        let sql = "SELECT time, v FROM facts AS OF now() + '2 steps'";
        match parse_query(&format!("EXPLAIN {sql}")).unwrap() {
            Statement::Explain { query, analyze } => {
                assert!(!analyze);
                assert_eq!(query.horizon, HorizonSpec::Steps(2));
            }
            other => panic!("expected explain, got {other:?}"),
        }
        match parse_query(&format!("explain ANALYZE {sql}")).unwrap() {
            Statement::Explain { analyze, .. } => assert!(analyze),
            other => panic!("expected explain analyze, got {other:?}"),
        }
        // ANALYZE alone (without EXPLAIN) is not a statement.
        assert!(parse_query(&format!("ANALYZE {sql}")).is_err());
    }

    #[test]
    fn parses_insert() {
        match parse_query("INSERT INTO facts VALUES ('C1', 'R1', 'P2', 12.5)").unwrap() {
            Statement::Insert { values, measure } => {
                assert_eq!(values, vec!["C1", "R1", "P2"]);
                assert_eq!(measure, 12.5);
            }
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn horizon_units_singular_and_plural() {
        assert_eq!(
            parse_horizon("4 quarters").unwrap(),
            HorizonSpec::Units {
                n: 4,
                unit: TimeUnit::Quarter
            }
        );
        assert_eq!(
            parse_horizon("1 quarter").unwrap(),
            HorizonSpec::Units {
                n: 1,
                unit: TimeUnit::Quarter
            }
        );
        assert_eq!(parse_horizon("10 steps").unwrap(), HorizonSpec::Steps(10));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("SELECT time FROM facts").is_err()); // no AS OF
        assert!(parse_query("SELECT time FROM facts AS OF now() + '0 days'").is_err());
        assert!(parse_query("SELECT time FROM facts AS OF now() + 'soon'").is_err());
        assert!(parse_query("SELECT time FROM facts AS OF now() + '1 lightyear'").is_err());
        assert!(
            parse_query("SELECT time FROM facts WHERE a = 'x' AS OF now() + '1 day' extra")
                .is_err()
        );
        assert!(parse_query("INSERT INTO facts VALUES ()").is_err());
        assert!(parse_query("INSERT INTO facts VALUES ('a')").is_err());
        assert!(parse_query("SELECT 'unterminated FROM facts").is_err());
        assert!(parse_query("SELECT ti@me FROM facts").is_err());
    }

    #[test]
    fn number_tokenizer_handles_floats() {
        match parse_query("INSERT INTO t VALUES ('a', -3.5e2)").unwrap() {
            Statement::Insert { measure, .. } => assert_eq!(measure, -350.0),
            _ => unreachable!(),
        }
    }
}
