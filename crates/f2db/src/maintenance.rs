//! Maintenance policies and statistics (§V).
//!
//! Model maintenance has a cheap and an expensive part: updating the
//! model *state* with each new value is incremental and always performed;
//! *parameter re-estimation* is expensive and therefore deferred — models
//! are only **marked invalid** by a policy, and re-estimated lazily when
//! a query actually references them ("with this approach we reduce
//! maintenance overhead by delaying parameter reestimation until the
//! model is actually referenced by a query").

use std::time::Duration;

/// When to mark stored models invalid (cf. \[12\] for the strategies).
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenancePolicy {
    /// Never invalidate (state updates only).
    None,
    /// Invalidate all models every `every` time advances.
    TimeBased {
        /// Invalidation period in time stamps.
        every: usize,
    },
    /// Invalidate a model when its rolling one-step SMAPE exceeds the
    /// threshold.
    ThresholdBased {
        /// Rolling-error threshold in `[0, 1]`.
        smape_threshold: f64,
    },
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy::ThresholdBased {
            smape_threshold: 0.25,
        }
    }
}

/// Counters describing the database's maintenance and query activity —
/// the quantities behind the paper's Fig. 9(b) experiment.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceStats {
    /// Forecast queries processed.
    pub queries: usize,
    /// Insert statements processed.
    pub inserts: usize,
    /// Completed time advances (batched inserts).
    pub time_advances: usize,
    /// Incremental model state updates.
    pub model_updates: usize,
    /// Models marked invalid by the policy.
    pub invalidations: usize,
    /// Lazy parameter re-estimations triggered by queries.
    pub reestimations: usize,
    /// Total wall time spent answering forecast queries.
    pub total_query_time: Duration,
}

impl MaintenanceStats {
    /// Average forecast query latency.
    pub fn avg_query_time(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_query_time / self.queries as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_threshold_based() {
        assert!(matches!(
            MaintenancePolicy::default(),
            MaintenancePolicy::ThresholdBased { .. }
        ));
    }

    #[test]
    fn avg_query_time_handles_zero_queries() {
        let stats = MaintenanceStats::default();
        assert_eq!(stats.avg_query_time(), Duration::ZERO);
        let stats = MaintenanceStats {
            queries: 4,
            total_query_time: Duration::from_millis(8),
            ..MaintenanceStats::default()
        };
        assert_eq!(stats.avg_query_time(), Duration::from_millis(2));
    }
}
