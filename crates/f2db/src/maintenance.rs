//! Maintenance policies and statistics (§V).
//!
//! Model maintenance has a cheap and an expensive part: updating the
//! model *state* with each new value is incremental and always performed;
//! *parameter re-estimation* is expensive and therefore deferred — models
//! are only **marked invalid** by a policy, and re-estimated lazily when
//! a query actually references them ("with this approach we reduce
//! maintenance overhead by delaying parameter reestimation until the
//! model is actually referenced by a query").

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// When to mark stored models invalid (cf. \[12\] for the strategies).
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenancePolicy {
    /// Never invalidate (state updates only).
    None,
    /// Invalidate all models every `every` time advances.
    TimeBased {
        /// Invalidation period in time stamps.
        every: usize,
    },
    /// Invalidate a model when its rolling one-step SMAPE exceeds the
    /// threshold.
    ThresholdBased {
        /// Rolling-error threshold in `[0, 1]`.
        smape_threshold: f64,
    },
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy::ThresholdBased {
            smape_threshold: 0.25,
        }
    }
}

/// Counters describing the database's maintenance and query activity —
/// the quantities behind the paper's Fig. 9(b) experiment.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceStats {
    /// Forecast queries processed.
    pub queries: usize,
    /// Insert statements processed.
    pub inserts: usize,
    /// Micro-batched insert commits ([`crate::F2db::insert_batch`]
    /// calls); each commit enters the write path once for all its rows.
    pub insert_batches: usize,
    /// Completed time advances (batched inserts).
    pub time_advances: usize,
    /// Incremental model state updates.
    pub model_updates: usize,
    /// Models marked invalid by the policy.
    pub invalidations: usize,
    /// Lazy parameter re-estimations triggered by queries.
    pub reestimations: usize,
    /// Total wall time spent answering forecast queries.
    pub total_query_time: Duration,
}

impl MaintenanceStats {
    /// Average forecast query latency.
    pub fn avg_query_time(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_query_time / self.queries as u32
        }
    }

    /// The pure counters (everything except wall time), for comparing a
    /// concurrent run against its serial replay where the counts must
    /// match but latencies obviously differ.
    pub fn counters(&self) -> [usize; 7] {
        [
            self.queries,
            self.inserts,
            self.insert_batches,
            self.time_advances,
            self.model_updates,
            self.invalidations,
            self.reestimations,
        ]
    }
}

/// Thread-safe maintenance counters: the engine's internal, atomically
/// updated form of [`MaintenanceStats`]. Readers take a [`Self::snapshot`];
/// the relaxed ordering is fine because each counter is independent and
/// only ever summed.
#[derive(Debug, Default)]
pub struct SharedMaintenanceStats {
    queries: AtomicU64,
    inserts: AtomicU64,
    insert_batches: AtomicU64,
    time_advances: AtomicU64,
    model_updates: AtomicU64,
    invalidations: AtomicU64,
    reestimations: AtomicU64,
    total_query_ns: AtomicU64,
}

impl SharedMaintenanceStats {
    /// Records one answered forecast query and its wall time.
    pub fn record_query(&self, elapsed: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.total_query_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one processed insert statement.
    pub fn record_insert(&self) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one micro-batched insert commit.
    pub fn record_insert_batch(&self) {
        self.insert_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed time advance and its per-model tallies.
    pub fn record_advance(&self, model_updates: u64, invalidations: u64) {
        self.time_advances.fetch_add(1, Ordering::Relaxed);
        self.model_updates
            .fetch_add(model_updates, Ordering::Relaxed);
        self.invalidations
            .fetch_add(invalidations, Ordering::Relaxed);
    }

    /// Records one lazy parameter re-estimation.
    pub fn record_reestimation(&self) {
        self.reestimations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records explicitly requested invalidations (outside a time
    /// advance, e.g. `F2db::invalidate_all`).
    pub fn record_invalidations(&self, n: u64) {
        self.invalidations.fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of the counters. (Counters
    /// advanced mid-snapshot may or may not be included; call from a
    /// quiescent point for exact numbers.)
    pub fn snapshot(&self) -> MaintenanceStats {
        MaintenanceStats {
            queries: self.queries.load(Ordering::Relaxed) as usize,
            inserts: self.inserts.load(Ordering::Relaxed) as usize,
            insert_batches: self.insert_batches.load(Ordering::Relaxed) as usize,
            time_advances: self.time_advances.load(Ordering::Relaxed) as usize,
            model_updates: self.model_updates.load(Ordering::Relaxed) as usize,
            invalidations: self.invalidations.load(Ordering::Relaxed) as usize,
            reestimations: self.reestimations.load(Ordering::Relaxed) as usize,
            total_query_time: Duration::from_nanos(self.total_query_ns.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_threshold_based() {
        assert!(matches!(
            MaintenancePolicy::default(),
            MaintenancePolicy::ThresholdBased { .. }
        ));
    }

    #[test]
    fn shared_stats_snapshot_reflects_records() {
        let shared = SharedMaintenanceStats::default();
        shared.record_query(Duration::from_millis(3));
        shared.record_query(Duration::from_millis(5));
        shared.record_insert();
        shared.record_insert_batch();
        shared.record_advance(7, 2);
        shared.record_reestimation();
        shared.record_invalidations(3);
        let snap = shared.snapshot();
        assert_eq!(snap.counters(), [2, 1, 1, 1, 7, 5, 1]);
        assert_eq!(snap.total_query_time, Duration::from_millis(8));
        assert_eq!(snap.avg_query_time(), Duration::from_millis(4));
    }

    #[test]
    fn avg_query_time_handles_zero_queries() {
        let stats = MaintenanceStats::default();
        assert_eq!(stats.avg_query_time(), Duration::ZERO);
        let stats = MaintenanceStats {
            queries: 4,
            total_query_time: Duration::from_millis(8),
            ..MaintenanceStats::default()
        };
        assert_eq!(stats.avg_query_time(), Duration::from_millis(2));
    }
}
