//! Compact binary codec for catalog persistence.
//!
//! The catalog rows (derivation schemes, weights, model states) are
//! encoded with a small hand-rolled binary format on top of `Vec<u8>` —
//! length-prefixed, little-endian, with a versioned magic header. Keeping
//! the codec local avoids pulling any serialization crate into the
//! dependency set and makes the on-disk layout explicit.

use crate::{F2dbError, Result};
use fdc_forecast::{ModelSpec, ModelState, SeasonalKind};

/// Magic bytes identifying a catalog file.
pub const MAGIC: &[u8; 4] = b"F2DB";
/// On-disk format version written by the encoder. Version 2 added the
/// per-model invalidation epoch.
pub const VERSION: u16 = 2;
/// Oldest on-disk format version the decoder still reads. Version 1
/// (pre-epoch) files are migrated on load: every model's invalidation
/// epoch restarts at 0.
pub const MIN_VERSION: u16 = 1;

/// Write-side codec helper.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an encoder with the catalog header already written.
    pub fn with_header() -> Self {
        let mut e = Encoder {
            buf: Vec::with_capacity(1024),
        };
        e.buf.extend_from_slice(MAGIC);
        e.buf.extend_from_slice(&VERSION.to_le_bytes());
        e
    }

    /// Finalizes the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends an u8.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends an u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a usize (as u64).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed f64 slice.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_len(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Appends a length-prefixed usize slice.
    pub fn put_usize_slice(&mut self, vs: &[usize]) {
        self.put_len(vs.len());
        for &v in vs {
            self.put_u64(v as u64);
        }
    }

    /// Appends a model state.
    pub fn put_model_state(&mut self, state: &ModelState) {
        match &state.spec {
            ModelSpec::Ses => self.put_u8(0),
            ModelSpec::Holt => self.put_u8(1),
            ModelSpec::HoltDamped => self.put_u8(5),
            ModelSpec::HoltWinters { period, seasonal } => {
                self.put_u8(2);
                self.put_u64(*period as u64);
                self.put_u8(match seasonal {
                    SeasonalKind::Additive => 0,
                    SeasonalKind::Multiplicative => 1,
                });
            }
            ModelSpec::Arima { p, d, q } => {
                self.put_u8(3);
                self.put_u64(*p as u64);
                self.put_u64(*d as u64);
                self.put_u64(*q as u64);
            }
            ModelSpec::Sarima {
                order,
                seasonal,
                period,
            } => {
                self.put_u8(4);
                self.put_u64(order.0 as u64);
                self.put_u64(order.1 as u64);
                self.put_u64(order.2 as u64);
                self.put_u64(seasonal.0 as u64);
                self.put_u64(seasonal.1 as u64);
                self.put_u64(seasonal.2 as u64);
                self.put_u64(*period as u64);
            }
        }
        self.put_f64_slice(&state.params);
        self.put_f64_slice(&state.state);
        self.put_u64(state.observations as u64);
    }
}

/// Read-side codec helper.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    version: u16,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder, validating the magic and accepting any format
    /// version in `MIN_VERSION..=VERSION`; the caller branches on
    /// [`Decoder::version`] for fields that newer versions added.
    pub fn with_header(bytes: &'a [u8]) -> Result<Self> {
        let mut d = Decoder {
            buf: bytes,
            version: 0,
        };
        let magic = d.take(4)?;
        if magic != MAGIC {
            return Err(F2dbError::Storage("bad catalog magic".into()));
        }
        let version = d.get_u16()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(F2dbError::Storage(format!(
                "unsupported catalog version {version} (this build reads versions {MIN_VERSION} through {VERSION})"
            )));
        }
        d.version = version;
        Ok(d)
    }

    /// Creates a decoder with *no* header expectation — for container
    /// formats (like the `F2CK` checkpoint container in [`crate::durability`])
    /// that embed catalog-codec primitives under their own magic. The
    /// version reports as the current [`VERSION`].
    pub fn raw(bytes: &'a [u8]) -> Self {
        Decoder {
            buf: bytes,
            version: VERSION,
        }
    }

    /// The format version declared by the header.
    pub fn version(&self) -> u16 {
        self.version
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(F2dbError::Storage("truncated catalog".into()));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads an u8.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads an u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an f64.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a usize (bounded to avoid allocation bombs from corrupt
    /// files).
    pub fn get_len(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        if v > (1 << 40) {
            return Err(F2dbError::Storage("implausible length in catalog".into()));
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed f64 vector.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>> {
        let n = self.get_len()?;
        if self.buf.len() < n * 8 {
            return Err(F2dbError::Storage("truncated f64 vector".into()));
        }
        (0..n).map(|_| self.get_f64()).collect()
    }

    /// Reads a length-prefixed usize vector.
    pub fn get_usize_vec(&mut self) -> Result<Vec<usize>> {
        let n = self.get_len()?;
        if self.buf.len() < n * 8 {
            return Err(F2dbError::Storage("truncated usize vector".into()));
        }
        (0..n).map(|_| self.get_u64().map(|v| v as usize)).collect()
    }

    /// Reads a model state.
    pub fn get_model_state(&mut self) -> Result<ModelState> {
        let tag = self.get_u8()?;
        let spec = match tag {
            0 => ModelSpec::Ses,
            1 => ModelSpec::Holt,
            5 => ModelSpec::HoltDamped,
            2 => {
                let period = self.get_u64()? as usize;
                let seasonal = match self.get_u8()? {
                    0 => SeasonalKind::Additive,
                    1 => SeasonalKind::Multiplicative,
                    k => {
                        return Err(F2dbError::Storage(format!("bad seasonal kind {k}")));
                    }
                };
                ModelSpec::HoltWinters { period, seasonal }
            }
            3 => ModelSpec::Arima {
                p: self.get_u64()? as usize,
                d: self.get_u64()? as usize,
                q: self.get_u64()? as usize,
            },
            4 => ModelSpec::Sarima {
                order: (
                    self.get_u64()? as usize,
                    self.get_u64()? as usize,
                    self.get_u64()? as usize,
                ),
                seasonal: (
                    self.get_u64()? as usize,
                    self.get_u64()? as usize,
                    self.get_u64()? as usize,
                ),
                period: self.get_u64()? as usize,
            },
            t => return Err(F2dbError::Storage(format!("bad model spec tag {t}"))),
        };
        let params = self.get_f64_vec()?;
        let state = self.get_f64_vec()?;
        let observations = self.get_u64()? as usize;
        Ok(ModelState {
            spec,
            params,
            state,
            observations,
        })
    }

    /// Consumes and returns every remaining byte.
    pub fn take_remaining(&mut self) -> &'a [u8] {
        let rest = self.buf;
        self.buf = &[];
        rest
    }

    /// Whether all bytes were consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::with_header();
        e.put_u8(7);
        e.put_u32(123456);
        e.put_u64(u64::MAX - 5);
        e.put_f64(-1.5e10);
        e.put_f64_slice(&[1.0, 2.0]);
        e.put_usize_slice(&[3, 4, 5]);
        let bytes = e.finish();

        let mut d = Decoder::with_header(&bytes).unwrap();
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 123456);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 5);
        assert_eq!(d.get_f64().unwrap(), -1.5e10);
        assert_eq!(d.get_f64_vec().unwrap(), vec![1.0, 2.0]);
        assert_eq!(d.get_usize_vec().unwrap(), vec![3, 4, 5]);
        assert!(d.is_empty());
    }

    #[test]
    fn model_states_round_trip() {
        let states = vec![
            ModelState {
                spec: ModelSpec::Ses,
                params: vec![0.4],
                state: vec![10.0],
                observations: 20,
            },
            ModelState {
                spec: ModelSpec::HoltWinters {
                    period: 12,
                    seasonal: SeasonalKind::Multiplicative,
                },
                params: vec![0.3, 0.1, 0.2],
                state: vec![1.0; 14],
                observations: 48,
            },
            ModelState {
                spec: ModelSpec::Sarima {
                    order: (1, 1, 1),
                    seasonal: (0, 1, 0),
                    period: 4,
                },
                params: vec![0.5, -0.2],
                state: vec![0.1; 9],
                observations: 60,
            },
        ];
        let mut e = Encoder::with_header();
        for s in &states {
            e.put_model_state(s);
        }
        let bytes = e.finish();
        let mut d = Decoder::with_header(&bytes).unwrap();
        for s in &states {
            assert_eq!(&d.get_model_state().unwrap(), s);
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        assert!(Decoder::with_header(b"NOPE\x01\x00").is_err());
        let mut bad_version = Vec::new();
        bad_version.extend_from_slice(MAGIC);
        bad_version.extend_from_slice(&99u16.to_le_bytes());
        assert!(Decoder::with_header(&bad_version).is_err());
        assert!(Decoder::with_header(b"F2").is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Encoder::with_header();
        e.put_f64_slice(&[1.0, 2.0, 3.0]);
        let bytes = e.finish();
        let mut d = Decoder::with_header(&bytes[..bytes.len() - 4]).unwrap();
        assert!(d.get_f64_vec().is_err());
    }

    #[test]
    fn implausible_length_rejected() {
        let mut e = Encoder::with_header();
        e.put_u64(u64::MAX);
        let bytes = e.finish();
        let mut d = Decoder::with_header(&bytes).unwrap();
        assert!(d.get_len().is_err());
    }
}
