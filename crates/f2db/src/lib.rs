//! # fdc-f2db — the flash-forward database
//!
//! An embedded reimplementation of **F²DB** (§V of the paper; \[12\]), the
//! PostgreSQL extension that stores a model configuration and processes
//! forecast queries over it. The paper's architecture (Fig. 6) is
//! reproduced with the same separation of concerns:
//!
//! * **Configuration storage** ([`catalog`]) — two catalog tables: one for
//!   the time series graph + configuration (model assignments, derivation
//!   schemes, weights), one for the forecast models themselves (state and
//!   parameter values), persisted with a compact binary [`codec`];
//! * **Forecast query processor** ([`parser`], [`query`], and
//!   [`F2db::query`]) — a SQL dialect with the paper's `… AS OF now() +
//!   '1 day'` horizon clause; a query is rewritten to nodes of the time
//!   series graph, the necessary models are loaded and the forecasts
//!   derived — *without* touching the base tables;
//! * **Maintenance processor** ([`maintenance`] and [`F2db::insert_value`]) —
//!   inserts are batched until a new value is available for every base
//!   series, then time advances through the whole graph at once: model
//!   states and derivation weights are updated incrementally, and models
//!   are optionally marked invalid (time- or threshold-based strategy);
//!   re-estimation is deferred until an invalid model is actually
//!   referenced by a query.
//!
//! ## Concurrency
//!
//! Every `F2db` method takes `&self`; the engine is safe to share across
//! threads (`Arc<F2db>` or scoped borrows). Internally the catalog is
//! sharded by node-id hash ([`catalog`]), lazy re-estimation is
//! single-flight (one re-fit per invalidation epoch, concurrent queries
//! wait and reuse the result), and inserts/time advances form a batched
//! write path taking per-shard write locks. See DESIGN.md for the lock
//! order and the serial-equivalence argument behind the stress suite in
//! `tests/concurrency_stress.rs`.
//!
//! Substitution note (see DESIGN.md): the paper hosts this inside
//! PostgreSQL; the embedded engine exercises the identical logic — what
//! is stored, how queries resolve, when models are maintained — without
//! the Postgres plumbing.

//! ## Example
//!
//! ```
//! use fdc_core::{Advisor, AdvisorOptions};
//! use fdc_datagen::{generate_cube, GenSpec};
//! use fdc_f2db::F2db;
//!
//! let cube = generate_cube(&GenSpec::new(8, 36, 2));
//! let outcome = Advisor::new(&cube.dataset, AdvisorOptions::default()).unwrap().run();
//! let db = F2db::load(cube.dataset, &outcome.configuration).unwrap();
//! let result = db
//!     .query("SELECT time, SUM(v) FROM facts GROUP BY time AS OF now() + '4 steps'")
//!     .unwrap();
//! assert_eq!(result.rows[0].values.len(), 4);
//! ```

pub mod catalog;
pub mod codec;
pub mod durability;
pub mod explain;
pub mod maintenance;
pub mod parser;
pub mod query;

pub use catalog::{
    AdvanceOutcome, Catalog, CatalogEntry, Reestimation, StoredModel, DEFAULT_SHARD_COUNT,
};
pub use durability::{DecodedCheckpoint, WalRecord};
pub use explain::{
    ExplainApprox, ExplainReport, ExplainRow, ExplainSource, NodeAnalysis, SourceModelState,
};
pub use maintenance::{MaintenancePolicy, MaintenanceStats, SharedMaintenanceStats};
pub use parser::parse_query;
pub use query::{
    AggregateFn, ForecastQuery, HorizonSpec, QueryResult, QueryRow, RowApprox, Statement,
};
// Approximation surface, re-exported so engine embedders need not depend
// on fdc-approx directly.
pub use fdc_approx::{ApproxOptions, ApproxQuerySpec, CoverageOptions, CoveragePlan};

use fdc_approx::ApproxPlane;
use fdc_cube::{Configuration, Dataset, NodeId, NodeQuery};
use fdc_forecast::FitOptions;
use fdc_obs::{journal, names, AccuracyOptions, Event, RollingAccuracy};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard};
use std::time::Instant;

/// Errors raised by the database layer.
#[derive(Debug, Clone, PartialEq)]
pub enum F2dbError {
    /// SQL syntax error.
    Parse(String),
    /// The query referenced unknown tables, dimensions or values.
    Semantic(String),
    /// Cube-level failure (misaligned inserts etc.).
    Cube(String),
    /// Persistence failure.
    Storage(String),
    /// A write path was called on a read-only engine (a follower
    /// replica that has not been promoted).
    ReadOnly(String),
    /// A partitioned engine was asked about a node another shard owns —
    /// an insert for a non-owned base, or a forecast whose derivation
    /// closure leaves this shard's partition. The router retries on the
    /// owning shard; a direct caller has misrouted.
    WrongShard(String),
}

impl std::fmt::Display for F2dbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            F2dbError::Parse(m) => write!(f, "parse error: {m}"),
            F2dbError::Semantic(m) => write!(f, "semantic error: {m}"),
            F2dbError::Cube(m) => write!(f, "cube error: {m}"),
            F2dbError::Storage(m) => write!(f, "storage error: {m}"),
            F2dbError::ReadOnly(m) => write!(f, "read-only error: {m}"),
            F2dbError::WrongShard(m) => write!(f, "wrong-shard error: {m}"),
        }
    }
}

impl std::error::Error for F2dbError {}

impl From<fdc_cube::CubeError> for F2dbError {
    fn from(e: fdc_cube::CubeError) -> Self {
        F2dbError::Cube(e.to_string())
    }
}

impl From<fdc_approx::ApproxError> for F2dbError {
    fn from(e: fdc_approx::ApproxError) -> Self {
        match e {
            fdc_approx::ApproxError::Codec(m) => F2dbError::Storage(m),
            other => F2dbError::Semantic(other.to_string()),
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, F2dbError>;

/// The embedded flash-forward database.
///
/// All methods take `&self`; share it across threads with `Arc` or scoped
/// borrows. Lock order (see DESIGN.md): `pending` → `advance_lock` →
/// `dataset` → catalog shard. Callers holding the [`F2db::dataset`] guard
/// must drop it before calling a write path ([`F2db::insert_value`]) from
/// the same thread.
pub struct F2db {
    dataset: RwLock<Dataset>,
    catalog: Catalog,
    /// Batched inserts awaiting a complete next time stamp.
    pending: Mutex<HashMap<NodeId, f64>>,
    /// Serializes time advances (inserts completing a time stamp).
    advance_lock: Mutex<()>,
    policy: MaintenancePolicy,
    fit: FitOptions,
    stats: SharedMaintenanceStats,
    /// Optional drift monitor: windowed per-node SMAPE/MAE fed by the
    /// advance path, publishing `f2db.node.smape`/`.mae` gauge families
    /// and raising drift alerts (see [`F2db::with_drift_monitoring`]).
    accuracy: Option<RollingAccuracy>,
    /// Optional write-ahead log. When attached, every committed insert
    /// batch appends one [`WalRecord`] *before* mutating in-memory
    /// state (under the `pending` mutex, so log order equals apply
    /// order), and the insert only returns once the record's
    /// group-commit fsync completes. A `OnceLock` (not an `Option`) so
    /// promotion can attach a log through `&self` on a shared engine
    /// ([`F2db::adopt_wal`]).
    wal: std::sync::OnceLock<fdc_wal::Wal>,
    /// WAL position the state was recovered from: records at or below
    /// it are already reflected in the loaded checkpoint and must not
    /// be re-applied by [`F2db::attach_wal`].
    recovered_wal_seq: u64,
    /// When set, public write paths ([`F2db::insert_value`],
    /// [`F2db::insert_batch`], [`F2db::maintain`]) fail with
    /// [`F2dbError::ReadOnly`]. A follower replica runs read-only until
    /// promotion flips this; replicated records land through
    /// [`F2db::apply_replicated`], which bypasses the guard.
    read_only: std::sync::atomic::AtomicBool,
    /// When set ([`F2db::with_base_partition`]), this engine is one
    /// shard of a partitioned deployment: it accepts inserts only for
    /// its owned base nodes, advances time once all *owned* bases have
    /// a pending value (non-owned bases are zero-padded), and serves
    /// forecasts only for resident nodes.
    partition: Option<Partition>,
    /// Optional sampling plane ([`F2db::with_approx`]): stratified cell
    /// samples + models on sampled cells, answering aggregate forecasts
    /// approximately for queries that opt in via [`ApproxQuerySpec`].
    /// Strictly additive — queries without an approx spec never touch
    /// it, so exact results stay byte-identical. Behind its own lock,
    /// taken *after* `dataset` on the advance path (lock order:
    /// `pending` → `advance_lock` → `dataset` → shard → `approx`).
    approx: RwLock<Option<ApproxPlane>>,
}

/// Partition state of one shard: which base nodes it owns, and which
/// catalog nodes it can serve bit-exactly.
#[derive(Debug, Clone)]
struct Partition {
    /// Base nodes whose inserts this shard accepts.
    owned: std::collections::BTreeSet<NodeId>,
    /// Catalog nodes whose full derivation closure (own base
    /// descendants plus every scheme source's) lies inside `owned` —
    /// their series, models and weights are bit-identical to an
    /// unpartitioned engine fed the same per-cell values, because
    /// aggregates roll up level-by-level as sums of children and every
    /// contributing child is genuine (zero-padding only touches
    /// subtrees outside the closure).
    resident: std::collections::BTreeSet<NodeId>,
}

/// One resolved row of a query's placement plan (see
/// [`F2db::query_derivation`]): the node a row will come from, the
/// scheme sources its forecast is derived through, and the base nodes
/// (`closure_base`) a shard must own for the forecast to be computable
/// locally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivationSite {
    /// The resolved node (one query row).
    pub node: NodeId,
    /// Human-readable coordinate label, e.g. `(Germany, *)`.
    pub label: String,
    /// Scheme sources the forecast is derived from (empty for direct).
    pub sources: Vec<NodeId>,
    /// Base nodes the derivation transitively depends on, ascending.
    pub closure_base: Vec<NodeId>,
}

/// What [`F2db::attach_wal`] (and [`F2db::recover`]) replayed.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The raw log-level recovery: records found, torn bytes truncated,
    /// segment count.
    pub wal: fdc_wal::WalRecovery,
    /// WAL records decoded and re-applied to the engine.
    pub replayed_batches: u64,
    /// Insert rows those records carried.
    pub replayed_rows: u64,
    /// Time advances the replay triggered.
    pub advances: u64,
    /// The watermark replay resumed from: the greater of the checkpoint
    /// container's WAL position and the log's own checkpoint marker.
    pub resumed_from_seq: u64,
    /// Stale `*.tmp.*` catalog siblings swept during recovery.
    pub swept_tmp: usize,
}

impl F2db {
    /// Loads a configuration produced by the advisor (or a baseline) into
    /// the database: schemes and weights are stored, and each model is
    /// refit on the node's *full* history so deployed forecasts start
    /// from the current point in time.
    pub fn load(dataset: Dataset, configuration: &Configuration) -> Result<Self> {
        let catalog = Catalog::from_configuration(&dataset, configuration, &FitOptions::default())?;
        Ok(F2db {
            dataset: RwLock::new(dataset),
            catalog,
            pending: Mutex::new(HashMap::new()),
            advance_lock: Mutex::new(()),
            policy: MaintenancePolicy::default(),
            fit: FitOptions::default(),
            stats: SharedMaintenanceStats::default(),
            accuracy: None,
            wal: std::sync::OnceLock::new(),
            recovered_wal_seq: 0,
            read_only: std::sync::atomic::AtomicBool::new(false),
            partition: None,
            approx: RwLock::new(None),
        })
    }

    /// Sets the maintenance (invalidation) policy.
    pub fn with_policy(mut self, policy: MaintenancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the fit options used for lazy re-estimation.
    pub fn with_fit_options(mut self, fit: FitOptions) -> Self {
        self.fit = fit;
        self
    }

    /// Enables drift-aware accuracy monitoring: every time advance feeds
    /// each stored model's `(actual, one-step forecast)` pair into a
    /// windowed error tracker published as the `f2db.node.smape` /
    /// `f2db.node.mae` / `f2db.node.err_stddev` gauge families (label
    /// `node`). A window crossing `opts.smape_threshold` — or the
    /// windowed MAE exceeding the node's own error baseline by
    /// `opts.stddev_k` standard deviations — raises a `DriftAlert`
    /// journal event (tagged with its trigger), counts into
    /// `f2db.drift.alerts` and marks the model invalid, so the next
    /// referencing query re-estimates it (which in turn resets the
    /// node's window — a fresh model is not judged by stale errors).
    pub fn with_drift_monitoring(mut self, opts: AccuracyOptions) -> Self {
        self.accuracy = Some(RollingAccuracy::new(opts).with_gauge_families(
            names::F2DB_NODE_SMAPE,
            names::F2DB_NODE_MAE,
            names::F2DB_NODE_ERR_STDDEV,
        ));
        self
    }

    /// The drift monitor, when enabled by [`F2db::with_drift_monitoring`].
    pub fn drift_monitor(&self) -> Option<&RollingAccuracy> {
        self.accuracy.as_ref()
    }

    /// Attaches a sampling plane built over the current dataset with
    /// auto-registered targets (every aggregation node whose population
    /// reaches `options.min_population`). Queries opting in via
    /// [`ApproxQuerySpec`] get Horvitz–Thompson scale-ups with
    /// confidence intervals for registered nodes; everything else —
    /// including every query that does *not* opt in — is answered
    /// exactly, byte-identical to an engine without a plane.
    pub fn with_approx(self, options: ApproxOptions) -> Result<Self> {
        self.enable_approx(options)?;
        Ok(self)
    }

    /// Runtime form of [`F2db::with_approx`] for engines already shared
    /// behind an `Arc` (the shell's `\approx on`): builds a plane from
    /// the current data set and attaches it in place, replacing any
    /// existing plane.
    pub fn enable_approx(&self, options: ApproxOptions) -> Result<()> {
        let plane = {
            let ds = self.dataset.read().unwrap();
            ApproxPlane::build(&ds, None, options)?
        };
        *self.approx.write().unwrap() = Some(plane);
        Ok(())
    }

    /// Detaches the sampling plane; subsequent queries are exact-only.
    /// A no-op when none is attached.
    pub fn disable_approx(&self) {
        *self.approx.write().unwrap() = None;
    }

    /// Attaches a sampling plane whose registered nodes come from an
    /// advisor coverage plan ([`fdc_approx::plan_coverage`]): exactly
    /// the nodes the plan routed through sampling, with reservoirs sized
    /// to the plan's per-stratum choice.
    pub fn with_approx_plan(self, plan: &CoveragePlan, options: ApproxOptions) -> Result<Self> {
        let targets = plan.sampled_nodes();
        if targets.is_empty() {
            // Nothing exceeds the latency budget: no plane at all.
            return Ok(self);
        }
        let options = ApproxOptions {
            samples_per_stratum: plan.per_stratum().max(2),
            ..options
        };
        let plane = {
            let ds = self.dataset.read().unwrap();
            ApproxPlane::build(&ds, Some(&targets), options)?
        };
        *self.approx.write().unwrap() = Some(plane);
        Ok(self)
    }

    /// Whether a sampling plane is attached.
    pub fn approx_enabled(&self) -> bool {
        self.approx.read().unwrap().is_some()
    }

    /// Sampling facts of `node` (population, stored sample size, strata)
    /// when a plane is attached and the node is registered.
    pub fn approx_node_info(&self, node: NodeId) -> Option<fdc_approx::ApproxNodeInfo> {
        self.approx.read().unwrap().as_ref()?.node_info(node)
    }

    /// Persists the sampling plane to a sidecar file (crash-safely, like
    /// the catalog). Errors when no plane is attached. The catalog file
    /// is untouched — approximation never changes catalog bytes.
    pub fn save_approx(&self, path: &std::path::Path) -> Result<()> {
        let guard = self.approx.read().unwrap();
        let plane = guard
            .as_ref()
            .ok_or_else(|| F2dbError::Semantic("no sampling plane attached".into()))?;
        let bytes = fdc_approx::encode_plane(plane);
        fdc_wal::atomic_write_durable(path, &bytes).map_err(|e| F2dbError::Storage(e.to_string()))
    }

    /// Restores a sampling plane from a sidecar file written by
    /// [`F2db::save_approx`], replacing any attached plane. Restored
    /// reservoirs and model states are bit-identical to the saved ones.
    pub fn load_approx(&self, path: &std::path::Path) -> Result<()> {
        let bytes = std::fs::read(path).map_err(|e| F2dbError::Storage(e.to_string()))?;
        let plane = fdc_approx::decode_plane(&bytes, self.fit.clone())?;
        *self.approx.write().unwrap() = Some(plane);
        Ok(())
    }

    /// Turns this engine into one shard of a partitioned deployment: it
    /// owns exactly the base nodes in `owned` (each must be a base
    /// series; the set must be non-empty). Inserts for other bases are
    /// rejected with [`F2dbError::WrongShard`]; a time stamp completes
    /// once every *owned* base has a pending value, with non-owned
    /// bases zero-padded into the advance. Forecast queries are limited
    /// to resident nodes — nodes whose derivation closure lies entirely
    /// inside the owned set, which makes their series, model states and
    /// derivation weights bit-identical to an unpartitioned oracle fed
    /// the same per-cell values.
    pub fn with_base_partition(mut self, owned: &[NodeId]) -> Result<Self> {
        let partition = {
            let ds = self.dataset.read().unwrap();
            let g = ds.graph();
            let mut owned_set = std::collections::BTreeSet::new();
            for &n in owned {
                if !g.base_nodes().contains(&n) {
                    return Err(F2dbError::Semantic(format!(
                        "partition owns node {n}, which is not a base series"
                    )));
                }
                owned_set.insert(n);
            }
            if owned_set.is_empty() {
                return Err(F2dbError::Semantic(
                    "a shard partition must own at least one base node".into(),
                ));
            }
            let mut resident = std::collections::BTreeSet::new();
            for v in 0..g.node_count() {
                if self.catalog.entry(v).is_none() {
                    continue;
                }
                let closure = self.derivation_closure(g, v);
                if closure.iter().all(|b| owned_set.contains(b)) {
                    resident.insert(v);
                }
            }
            Partition {
                owned: owned_set,
                resident,
            }
        };
        self.partition = Some(partition);
        Ok(self)
    }

    /// Base nodes the forecast at `v` transitively depends on: `v`'s own
    /// base descendants plus those of every scheme source (sorted,
    /// deduplicated). This is the node set a router must co-locate for
    /// the forecast to be computable on one shard.
    fn derivation_closure(&self, g: &fdc_cube::TimeSeriesGraph, v: NodeId) -> Vec<NodeId> {
        let mut closure = g.base_descendants(v);
        if let Some(entry) = self.catalog.entry(v) {
            for &s in &entry.scheme_sources {
                closure.extend(g.base_descendants(s));
            }
        }
        closure.sort_unstable();
        closure.dedup();
        closure
    }

    /// Whether this engine accepts inserts for `base` — always true on
    /// an unpartitioned engine.
    pub fn owns_base(&self, base: NodeId) -> bool {
        match &self.partition {
            None => true,
            Some(p) => p.owned.contains(&base),
        }
    }

    /// Whether forecasts for `node` can be served bit-exactly by this
    /// engine — always true on an unpartitioned engine (for any node
    /// with a catalog entry the resolver would produce).
    pub fn is_resident(&self, node: NodeId) -> bool {
        match &self.partition {
            None => true,
            Some(p) => p.resident.contains(&node),
        }
    }

    /// `(owned bases, resident nodes)` of a partitioned engine; `None`
    /// when unpartitioned.
    pub fn partition_summary(&self) -> Option<(usize, usize)> {
        self.partition
            .as_ref()
            .map(|p| (p.owned.len(), p.resident.len()))
    }

    /// The owned base nodes of a partitioned engine, ascending; `None`
    /// when unpartitioned.
    pub fn owned_base_nodes(&self) -> Option<Vec<NodeId>> {
        self.partition
            .as_ref()
            .map(|p| p.owned.iter().copied().collect())
    }

    /// The placement key of a base node: its first `key_dims` dimension
    /// *values* (schema order) joined with `|` — the deterministic
    /// string a consistent-hash placement function scores. `key_dims`
    /// of 0 (or more dimensions than the schema has) uses every
    /// dimension, i.e. one key per base cell; `key_dims = 1` co-locates
    /// the entire sub-hierarchy under each first-dimension value.
    pub fn partition_key(&self, base: NodeId, key_dims: usize) -> Result<String> {
        let ds = self.dataset.read().unwrap();
        let g = ds.graph();
        if !g.base_nodes().contains(&base) {
            return Err(F2dbError::Semantic(format!(
                "node {base} is not a base series"
            )));
        }
        let schema = g.schema();
        let coord = g.coord(base);
        let take = if key_dims == 0 {
            schema.dim_count()
        } else {
            key_dims.min(schema.dim_count())
        };
        let mut parts = Vec::with_capacity(take);
        for d in 0..take {
            let idx = coord.values()[d] as usize;
            parts.push(schema.dimensions()[d].values()[idx].as_str());
        }
        Ok(parts.join("|"))
    }

    /// The placement plan of a query: which node each resolved row maps
    /// to, the scheme sources behind it, and the base-node closure a
    /// shard must own to serve it. Routers use this (via a shard's
    /// `/plan` endpoint) to decide which shard serves which row of a
    /// scatter-gathered forecast. Accepts forecast queries with or
    /// without a leading `EXPLAIN [ANALYZE]`; order matches resolve
    /// order, i.e. the row order of [`F2db::query`].
    pub fn query_derivation(&self, sql: &str) -> Result<Vec<DerivationSite>> {
        let q = match parse_query(sql)? {
            Statement::Forecast(q) | Statement::Explain { query: q, .. } => q,
            Statement::Insert { .. } => {
                return Err(F2dbError::Semantic(
                    "expected a forecast query, got an INSERT".into(),
                ));
            }
        };
        let ds = self.dataset.read().unwrap();
        let g = ds.graph();
        let nodes = Self::node_query(&ds, &q)?
            .resolve(g)
            .map_err(|e| F2dbError::Semantic(e.to_string()))?;
        let mut sites = Vec::with_capacity(nodes.len());
        for n in nodes {
            let label = g.coord(n).display(g.schema());
            let entry = self.catalog.entry(n).ok_or_else(|| {
                F2dbError::Semantic(format!(
                    "node {label} has no derivation scheme in the configuration"
                ))
            })?;
            sites.push(DerivationSite {
                node: n,
                label,
                sources: entry.scheme_sources.clone(),
                closure_base: self.derivation_closure(g, n),
            });
        }
        Ok(sites)
    }

    /// Redistributes the catalog over `shards` shards. `1` reproduces a
    /// single global catalog lock — the concurrency baseline.
    pub fn with_shards(self, shards: usize) -> Self {
        let F2db {
            dataset,
            catalog,
            pending,
            advance_lock,
            policy,
            fit,
            stats,
            accuracy,
            wal,
            recovered_wal_seq,
            read_only,
            partition,
            approx,
        } = self;
        F2db {
            dataset,
            catalog: catalog.reshard(shards),
            pending,
            advance_lock,
            policy,
            fit,
            stats,
            accuracy,
            wal,
            recovered_wal_seq,
            read_only,
            partition,
            approx,
        }
    }

    /// Read access to the underlying data set. Holds a read lock for the
    /// guard's lifetime — drop it before calling an insert path from the
    /// same thread.
    pub fn dataset(&self) -> RwLockReadGuard<'_, Dataset> {
        self.dataset.read().unwrap()
    }

    /// A point-in-time snapshot of the maintenance and query statistics.
    pub fn stats(&self) -> MaintenanceStats {
        self.stats.snapshot()
    }

    /// Number of models stored in the catalog.
    pub fn model_count(&self) -> usize {
        self.catalog.model_count()
    }

    /// Number of catalog shards.
    pub fn shard_count(&self) -> usize {
        self.catalog.shard_count()
    }

    /// The sharded catalog itself — read-only diagnostics (invalid flags,
    /// invalidation epochs, shard count) for tools and test harnesses.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Executes a semicolon-separated script of statements, stopping at
    /// the first error. Returns one result per executed statement.
    pub fn execute_script(&self, script: &str) -> Result<Vec<QueryResult>> {
        // Strip `--` comment lines first so a comment above a statement
        // does not swallow it.
        let cleaned: String = script
            .lines()
            .filter(|l| !l.trim_start().starts_with("--"))
            .collect::<Vec<_>>()
            .join("\n");
        let mut results = Vec::new();
        for stmt in cleaned.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            results.push(self.execute(stmt)?);
        }
        Ok(results)
    }

    /// Executes a SQL statement (forecast query or insert).
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        match parse_query(sql)? {
            Statement::Forecast(q) => self.run_forecast(&q, None),
            Statement::Explain { .. } => Err(F2dbError::Semantic(
                "EXPLAIN statements return a plan; use F2db::explain or F2db::explain_analyze"
                    .into(),
            )),
            Statement::Insert { values, measure } => {
                self.insert_row(&values, measure)?;
                Ok(QueryResult::empty())
            }
        }
    }

    /// Executes a forecast query (convenience wrapper around
    /// [`F2db::execute`] that rejects non-query statements).
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.query_filtered(sql, None)
    }

    /// [`F2db::query`] with per-request approximation controls: rows
    /// whose nodes are registered on the sampling plane are answered as
    /// stratified Horvitz–Thompson scale-ups under the given budget /
    /// CI target, carrying [`RowApprox`] metadata; unregistered nodes
    /// fall back to the exact path. With `approx: None` this *is*
    /// [`F2db::query`], bit for bit.
    pub fn query_with(&self, sql: &str, approx: Option<&ApproxQuerySpec>) -> Result<QueryResult> {
        self.query_filtered_with(sql, None, approx)
    }

    /// [`F2db::query_filtered`] with per-request approximation controls
    /// (the shard half of a routed approximate query).
    pub fn query_filtered_with(
        &self,
        sql: &str,
        nodes: Option<&[NodeId]>,
        approx: Option<&ApproxQuerySpec>,
    ) -> Result<QueryResult> {
        match parse_query(sql)? {
            Statement::Forecast(q) => self.run_forecast_with(&q, nodes, approx),
            Statement::Explain { .. } => Err(F2dbError::Semantic(
                "EXPLAIN statements return a plan; use F2db::explain or F2db::explain_analyze"
                    .into(),
            )),
            Statement::Insert { .. } => Err(F2dbError::Semantic(
                "expected a forecast query, got an INSERT".into(),
            )),
        }
    }

    /// [`F2db::query`] restricted to a subset of the resolved nodes —
    /// the scatter half of a routed scatter-gather: the router plans
    /// once, then asks each shard only for the nodes it owns. Rows keep
    /// the full query's resolve order; a filter that excludes every
    /// resolved node is an error (the router misrouted).
    pub fn query_filtered(&self, sql: &str, nodes: Option<&[NodeId]>) -> Result<QueryResult> {
        match parse_query(sql)? {
            Statement::Forecast(q) => self.run_forecast(&q, nodes),
            Statement::Explain { .. } => Err(F2dbError::Semantic(
                "EXPLAIN statements return a plan; use F2db::explain or F2db::explain_analyze"
                    .into(),
            )),
            Statement::Insert { .. } => Err(F2dbError::Semantic(
                "expected a forecast query, got an INSERT".into(),
            )),
        }
    }

    /// Explains how a forecast query would be answered: the nodes it
    /// resolves to, each node's derivation scheme kind, sources, weight
    /// and the models (with their maintenance state) that would serve it.
    /// Accepts the query with or without a leading `EXPLAIN`.
    pub fn explain(&self, sql: &str) -> Result<ExplainReport> {
        self.explain_filtered(sql, None)
    }

    /// [`F2db::explain`] restricted to a subset of the resolved nodes —
    /// the per-shard half of a routed `/explain`. Planning is static
    /// (no model executes), so it works for any node, resident or not;
    /// the filter only trims the report's rows.
    pub fn explain_filtered(&self, sql: &str, nodes: Option<&[NodeId]>) -> Result<ExplainReport> {
        let q = match parse_query(sql)? {
            Statement::Forecast(q)
            | Statement::Explain {
                query: q,
                analyze: false,
            } => q,
            Statement::Explain { analyze: true, .. } => {
                return Err(F2dbError::Semantic(
                    "EXPLAIN ANALYZE executes the query; use F2db::explain_analyze".into(),
                ));
            }
            Statement::Insert { .. } => {
                return Err(F2dbError::Semantic("cannot EXPLAIN an INSERT".into()));
            }
        };
        let ds = self.dataset.read().unwrap();
        let mut report = self.plan_report(&ds, &q, None)?;
        if let Some(f) = nodes {
            let keep: std::collections::HashSet<NodeId> = f.iter().copied().collect();
            report.rows.retain(|r| keep.contains(&r.node));
            if report.rows.is_empty() {
                return Err(F2dbError::Semantic(
                    "node filter excludes every node the query resolves to".into(),
                ));
            }
        }
        Ok(report)
    }

    /// [`F2db::explain`] with per-request approximation controls: plan
    /// rows whose nodes are registered on the sampling plane come back
    /// with `scheme_kind = "sampled"` and [`ExplainApprox`] facts
    /// (population, stored sample size, strata, the caller's budget /
    /// CI target) instead of derivation sources. With `approx: None`
    /// this is exactly [`F2db::explain`].
    pub fn explain_with(
        &self,
        sql: &str,
        approx: Option<&ApproxQuerySpec>,
    ) -> Result<ExplainReport> {
        let q = match parse_query(sql)? {
            Statement::Forecast(q)
            | Statement::Explain {
                query: q,
                analyze: false,
            } => q,
            Statement::Explain { analyze: true, .. } => {
                return Err(F2dbError::Semantic(
                    "EXPLAIN ANALYZE executes the query; use F2db::explain_analyze".into(),
                ));
            }
            Statement::Insert { .. } => {
                return Err(F2dbError::Semantic("cannot EXPLAIN an INSERT".into()));
            }
        };
        let ds = self.dataset.read().unwrap();
        self.plan_report(&ds, &q, approx)
    }

    /// `EXPLAIN ANALYZE`: produces the same plan as [`F2db::explain`] but
    /// actually executes it, annotating every row with the wall-clock
    /// time spent deriving its forecast, the state of each source model
    /// (cached, or re-estimated lazily by this very query) and the values
    /// produced. Accepts the query with or without a leading
    /// `EXPLAIN [ANALYZE]`.
    ///
    /// Counts as a real query for maintenance statistics and latency
    /// metrics — the lazy re-estimation it triggers is identical to what
    /// the query processor would do.
    pub fn explain_analyze(&self, sql: &str) -> Result<ExplainReport> {
        self.explain_analyze_filtered(sql, None)
    }

    /// [`F2db::explain_analyze`] restricted to a subset of the resolved
    /// nodes. Unlike [`F2db::explain_filtered`] this executes models, so
    /// on a partitioned engine every surviving node must be resident
    /// (same guard as a filtered query).
    pub fn explain_analyze_filtered(
        &self,
        sql: &str,
        nodes: Option<&[NodeId]>,
    ) -> Result<ExplainReport> {
        let _span = fdc_obs::span!("f2db.explain_analyze");
        let filter = nodes;
        let q = match parse_query(sql)? {
            Statement::Forecast(q) | Statement::Explain { query: q, .. } => q,
            Statement::Insert { .. } => {
                return Err(F2dbError::Semantic("cannot EXPLAIN an INSERT".into()));
            }
        };
        let started = Instant::now();
        let ds = self.dataset.read().unwrap();
        // Static plan first (sources, kinds, weights, pre-execution
        // invalid flags).
        let mut report = self.plan_report(&ds, &q, None)?;
        let planned: Vec<NodeId> = report.rows.iter().map(|r| r.node).collect();
        let kept = self.apply_node_filter(planned, filter)?;
        if kept.len() != report.rows.len() {
            let keep: std::collections::HashSet<NodeId> = kept.iter().copied().collect();
            report.rows.retain(|r| keep.contains(&r.node));
        }
        let horizon = report.horizon;

        // Execute: lazily re-estimate every invalid source referenced by
        // the plan, recording which ones this query paid for.
        let nodes: Vec<NodeId> = report.rows.iter().map(|r| r.node).collect();
        let reestimated = self.reestimate_referenced(&ds, &nodes)?;

        for row in &mut report.rows {
            let node_started = Instant::now();
            let mut values = self.catalog.forecast(row.node, horizon).ok_or_else(|| {
                F2dbError::Semantic(format!(
                    "node {} has no derivation scheme in the configuration",
                    row.label
                ))
            })?;
            if q.aggregate == query::AggregateFn::Avg {
                let count = ds.graph().base_descendants(row.node).len().max(1) as f64;
                for v in &mut values {
                    *v /= count;
                }
            }
            let elapsed = node_started.elapsed();
            let entry = self
                .catalog
                .entry(row.node)
                .expect("planned node has an entry");
            let source_states = entry
                .scheme_sources
                .iter()
                .map(|s| {
                    if reestimated.binary_search(s).is_ok() {
                        SourceModelState::Reestimated
                    } else {
                        SourceModelState::Cached
                    }
                })
                .collect();
            row.analysis = Some(NodeAnalysis {
                elapsed,
                source_states,
                values,
            });
        }
        let total = started.elapsed();
        report.total_elapsed = Some(total);
        self.stats.record_query(total);
        fdc_obs::counter(names::F2DB_QUERIES).incr();
        fdc_obs::counter(names::F2DB_EXPLAIN_ANALYZE).incr();
        fdc_obs::histogram(names::F2DB_QUERY_NS).record_duration(total);
        Ok(report)
    }

    /// Builds the static plan of `q` (shared by [`F2db::explain`],
    /// [`F2db::explain_with`] and [`F2db::explain_analyze`]). With an
    /// approx spec, nodes registered on the sampling plane plan as
    /// `sampled` rows instead of catalog derivations.
    fn plan_report(
        &self,
        ds: &Dataset,
        q: &ForecastQuery,
        approx: Option<&ApproxQuerySpec>,
    ) -> Result<ExplainReport> {
        let horizon = q.horizon.steps(ds.series(0).granularity()).ok_or_else(|| {
            F2dbError::Semantic(format!(
                "horizon unit {:?} is finer than the data granularity",
                q.horizon
            ))
        })?;
        let nodes = Self::node_query(ds, q)?
            .resolve(ds.graph())
            .map_err(|e| F2dbError::Semantic(e.to_string()))?;
        let g = ds.graph();
        let plane = approx.map(|_| self.approx.read().unwrap());
        let plane = plane.as_ref().and_then(|guard| guard.as_ref());
        let mut rows = Vec::with_capacity(nodes.len());
        for &n in &nodes {
            let label = g.coord(n).display(g.schema());
            if let (Some(spec), Some(info)) = (approx, plane.and_then(|p| p.node_info(n))) {
                rows.push(ExplainRow {
                    node: n,
                    label,
                    scheme_kind: "sampled",
                    sources: Vec::new(),
                    weight: 1.0,
                    analysis: None,
                    approx: Some(ExplainApprox {
                        population: info.population,
                        sampled: info.sampled,
                        strata: info.strata,
                        budget: spec.budget,
                        target_ci: spec.target_ci,
                    }),
                });
                continue;
            }
            match self.catalog.entry(n) {
                Some(entry) => {
                    let kind = match fdc_cube::derive::classify_scheme(ds, &entry.scheme_sources, n)
                    {
                        fdc_cube::SchemeKind::Direct => "direct",
                        fdc_cube::SchemeKind::Aggregation => "aggregation",
                        fdc_cube::SchemeKind::Disaggregation => "disaggregation",
                        fdc_cube::SchemeKind::General => "general",
                    };
                    let sources = entry
                        .scheme_sources
                        .iter()
                        .map(|&s| ExplainSource {
                            label: g.coord(s).display(g.schema()),
                            invalid: self.catalog.is_invalid(s),
                        })
                        .collect();
                    rows.push(ExplainRow {
                        node: n,
                        label,
                        scheme_kind: kind,
                        sources,
                        weight: entry.weight,
                        analysis: None,
                        approx: None,
                    });
                }
                None => {
                    return Err(F2dbError::Semantic(format!(
                        "node {label} has no derivation scheme in the configuration"
                    )));
                }
            }
        }
        Ok(ExplainReport {
            horizon,
            aggregate: q.aggregate,
            rows,
            total_elapsed: None,
        })
    }

    /// Lazily re-estimates every invalid model referenced by the
    /// derivation schemes of `nodes` (§V maintenance processor). Uses the
    /// catalog's single-flight slot per node, so under concurrency each
    /// invalidation epoch pays for exactly one re-fit. Returns the
    /// sources this call was the leader for, sorted ascending.
    fn reestimate_referenced(&self, ds: &Dataset, nodes: &[NodeId]) -> Result<Vec<NodeId>> {
        let mut referenced: Vec<NodeId> = Vec::new();
        for &n in nodes {
            if let Some(entry) = self.catalog.entry(n) {
                referenced.extend(entry.scheme_sources.iter().copied());
            }
        }
        referenced.sort_unstable();
        referenced.dedup();
        let mut refitted = Vec::new();
        for s in referenced {
            if self.catalog.is_invalid(s) {
                match self.catalog.reestimate_single_flight(s, ds, &self.fit)? {
                    Reestimation::Refit => {
                        self.stats.record_reestimation();
                        fdc_obs::counter(names::F2DB_MODELS_REESTIMATED).incr();
                        if let Some(acc) = &self.accuracy {
                            acc.reset_key(s as u64);
                        }
                        refitted.push(s);
                    }
                    Reestimation::AlreadyValid | Reestimation::Waited => {
                        fdc_obs::counter(names::F2DB_MODELS_CACHED).incr();
                    }
                }
            } else {
                fdc_obs::counter(names::F2DB_MODELS_CACHED).incr();
            }
        }
        Ok(refitted)
    }

    fn run_forecast(&self, q: &ForecastQuery, filter: Option<&[NodeId]>) -> Result<QueryResult> {
        self.run_forecast_with(q, filter, None)
    }

    fn run_forecast_with(
        &self,
        q: &ForecastQuery,
        filter: Option<&[NodeId]>,
        approx: Option<&ApproxQuerySpec>,
    ) -> Result<QueryResult> {
        let _span = fdc_obs::span!("f2db.query");
        let started = Instant::now();
        let ds = self.dataset.read().unwrap();
        let horizon = q.horizon.steps(ds.series(0).granularity()).ok_or_else(|| {
            F2dbError::Semantic(format!(
                "horizon unit {:?} is finer than the data granularity",
                q.horizon
            ))
        })?;
        let nodes = Self::node_query(&ds, q)?
            .resolve(ds.graph())
            .map_err(|e| F2dbError::Semantic(e.to_string()))?;
        let nodes = self.apply_node_filter(nodes, filter)?;

        // Split into plane-answered and exact nodes. Without an approx
        // spec the split is trivially "all exact" and the plane lock is
        // never taken — the exact path is untouched.
        let plane = approx.map(|_| self.approx.read().unwrap());
        let plane = plane.as_ref().and_then(|g| g.as_ref());
        let answered_by_plane = |n: NodeId| plane.map(|p| p.is_registered(n)).unwrap_or(false);

        // Lazy re-estimation: queries referencing invalid models trigger
        // parameter re-estimation now (§V maintenance processor). Only
        // exactly-answered nodes reference catalog models.
        let exact_nodes: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|&n| !answered_by_plane(n))
            .collect();
        self.reestimate_referenced(&ds, &exact_nodes)?;

        let mut rows = Vec::with_capacity(nodes.len());
        let now = ds.series(0).end();
        for &n in &nodes {
            if answered_by_plane(n) {
                let spec = approx.expect("plane only consulted with a spec");
                let plane = plane.expect("registered node implies a plane");
                let mut fc = plane
                    .estimate(n, horizon, spec)
                    .expect("is_registered implies an estimate");
                fdc_obs::counter(names::F2DB_APPROX_ROWS).incr();
                if q.aggregate == query::AggregateFn::Avg {
                    // AVG = SUM / population; the plane knows the exact
                    // population without an O(cells) descendant scan.
                    let count = fc.population.max(1) as f64;
                    for v in &mut fc.values {
                        *v /= count;
                    }
                    for h in &mut fc.ci_half {
                        *h /= count;
                    }
                }
                rows.push(QueryRow {
                    node: n,
                    label: ds.graph().coord(n).display(ds.graph().schema()),
                    values: fc
                        .values
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (now + i as i64, v))
                        .collect(),
                    approx: Some(RowApprox {
                        sampled: fc.sampled,
                        population: fc.population,
                        confidence: fc.confidence,
                        ci_half: fc.ci_half,
                    }),
                });
                continue;
            }
            let mut forecasts = self.catalog.forecast(n, horizon).ok_or_else(|| {
                F2dbError::Semantic(format!(
                    "node {} has no derivation scheme in the configuration",
                    ds.graph().coord(n).display(ds.graph().schema())
                ))
            })?;
            if q.aggregate == query::AggregateFn::Avg {
                // AVG = SUM / number of base series under the node (series
                // are aligned, so the count is constant over time).
                let count = ds.graph().base_descendants(n).len().max(1) as f64;
                for v in &mut forecasts {
                    *v /= count;
                }
            }
            rows.push(QueryRow {
                node: n,
                label: ds.graph().coord(n).display(ds.graph().schema()),
                values: forecasts
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| (now + i as i64, v))
                    .collect(),
                approx: None,
            });
        }
        drop(ds);
        let elapsed = started.elapsed();
        self.stats.record_query(elapsed);
        fdc_obs::counter(names::F2DB_QUERIES).incr();
        fdc_obs::histogram(names::F2DB_QUERY_NS).record_duration(elapsed);
        Ok(QueryResult { rows })
    }

    /// Restricts resolved nodes to `filter` (keeping resolve order) and
    /// enforces residency on a partitioned engine: executing a forecast
    /// for a node whose derivation closure leaves this shard would
    /// silently mix zero-padded series into the answer, so it is a
    /// [`F2dbError::WrongShard`] instead.
    fn apply_node_filter(
        &self,
        nodes: Vec<NodeId>,
        filter: Option<&[NodeId]>,
    ) -> Result<Vec<NodeId>> {
        let nodes = match filter {
            None => nodes,
            Some(f) => {
                let keep: std::collections::HashSet<NodeId> = f.iter().copied().collect();
                let filtered: Vec<NodeId> =
                    nodes.into_iter().filter(|n| keep.contains(n)).collect();
                if filtered.is_empty() {
                    return Err(F2dbError::Semantic(
                        "node filter excludes every node the query resolves to".into(),
                    ));
                }
                filtered
            }
        };
        if self.partition.is_some() {
            for &n in &nodes {
                if !self.is_resident(n) {
                    return Err(F2dbError::WrongShard(format!(
                        "node {n} is not resident on this shard (its derivation \
                         closure spans base nodes owned elsewhere)"
                    )));
                }
            }
        }
        Ok(nodes)
    }

    fn node_query(ds: &Dataset, q: &ForecastQuery) -> Result<NodeQuery> {
        use fdc_cube::DimSelector;
        let mut predicates: Vec<(&str, DimSelector)> = Vec::new();
        for (dim, value) in &q.predicates {
            predicates.push((dim.as_str(), DimSelector::Value(value.clone())));
        }
        for dim in &q.group_dims {
            predicates.push((dim.as_str(), DimSelector::GroupBy));
        }
        NodeQuery::from_predicates(ds.graph(), &predicates)
            .map_err(|e| F2dbError::Semantic(e.to_string()))
    }

    /// Resolves dimension values (in schema order) to the base node they
    /// identify — the validation half of [`F2db::insert_row`], usable on
    /// its own by callers (like a network server) that resolve rows up
    /// front and commit them later in a micro-batch.
    pub fn base_node_for(&self, dim_values: &[String]) -> Result<NodeId> {
        let ds = self.dataset.read().unwrap();
        let schema = ds.graph().schema();
        if dim_values.len() != schema.dim_count() {
            return Err(F2dbError::Semantic(format!(
                "INSERT carries {} dimension values, schema has {}",
                dim_values.len(),
                schema.dim_count()
            )));
        }
        let mut coord = Vec::with_capacity(dim_values.len());
        for (d, value) in dim_values.iter().enumerate() {
            let idx = schema.dimensions()[d].value_index(value).ok_or_else(|| {
                F2dbError::Semantic(format!(
                    "unknown value {value} for dimension {}",
                    schema.dimensions()[d].name()
                ))
            })?;
            coord.push(idx);
        }
        ds.graph()
            .node(&fdc_cube::Coord::new(coord))
            .ok_or_else(|| F2dbError::Semantic("no base series for these values".into()))
    }

    /// Inserts one new observation for the base series identified by its
    /// dimension values (in schema order). Returns `true` when the insert
    /// completed a time stamp and the graph advanced.
    pub fn insert_row(&self, dim_values: &[String], measure: f64) -> Result<bool> {
        let node = self.base_node_for(dim_values)?;
        self.insert_value(node, measure)
    }

    /// Inserts one new observation for a base node id. Inserts are
    /// batched "until a new value is available for each base time series
    /// for the next time stamp" (§V); then time advances through the
    /// whole graph at once. Returns `true` when the graph advanced.
    pub fn insert_value(&self, base_node: NodeId, measure: f64) -> Result<bool> {
        self.check_writable("INSERT")?;
        let target_count = {
            let ds = self.dataset.read().unwrap();
            if !ds.graph().base_nodes().contains(&base_node) {
                return Err(F2dbError::Semantic(format!(
                    "node {base_node} is not a base series"
                )));
            }
            self.check_owned(base_node)?;
            self.advance_target(ds.graph().base_nodes().len())
        };
        let mut pending = self.pending.lock().unwrap();
        // Log before mutating: the record is submitted under the same
        // mutex that serializes applies, so WAL order == apply order.
        let ticket = self.wal_submit(&[(base_node, measure)])?;
        pending.insert(base_node, measure);
        self.stats.record_insert();
        fdc_obs::counter(names::F2DB_INSERTS).incr();
        if pending.len() < target_count {
            drop(pending);
            // Wait outside every lock — this is what lets the sync
            // thread batch many appenders into one fsync.
            self.wal_wait(ticket)?;
            return Ok(false);
        }
        // Take the advance lock while still holding the pending mutex: a
        // batch that completed first must append its time stamp first.
        // Acquiring it only inside the advance would let a later-drained
        // batch overtake an earlier one and swap which values land at
        // which time index.
        let serial = self.advance_lock.lock().unwrap();
        let batch: Vec<(NodeId, f64)> = pending.drain().collect();
        drop(pending);
        self.advance_time(batch, serial)?;
        self.wal_wait(ticket)?;
        Ok(true)
    }

    /// Submits one [`WalRecord::InsertBatch`] for `rows` (no-op without
    /// an attached log). Must be called under the `pending` mutex so
    /// log order matches apply order.
    fn wal_submit(&self, rows: &[(NodeId, f64)]) -> Result<Option<fdc_wal::Append>> {
        match self.wal.get() {
            None => Ok(None),
            Some(wal) => {
                // Embed the sampled trace identity so a follower that
                // replays this record can join its apply span to the
                // originating request's trace.
                let payload = WalRecord::InsertBatch {
                    rows: rows.to_vec(),
                    trace: fdc_obs::trace::current_sampled_pair(),
                }
                .encode();
                wal.submit(&payload)
                    .map(Some)
                    .map_err(|e| F2dbError::Storage(e.to_string()))
            }
        }
    }

    /// Blocks until a submitted record is durable. Call with every lock
    /// released.
    fn wal_wait(&self, ticket: Option<fdc_wal::Append>) -> Result<()> {
        match ticket {
            None => Ok(()),
            Some(t) => {
                // The group-commit wait is the dominant insert latency
                // under fsync; give it its own span in the trace.
                let _span = fdc_obs::span!("f2db.wal_commit");
                t.wait()
                    .map(|_| ())
                    .map_err(|e| F2dbError::Storage(e.to_string()))
            }
        }
    }

    /// Inserts a micro-batch of observations in one pass over the write
    /// path: the pending map's mutex is held across the *whole* batch, and
    /// every time stamp the batch completes advances inline — so `n`
    /// coalesced rows cost one `pending` acquisition and at most
    /// `n / base_count` advance-lock acquisitions, instead of `n` of each.
    /// This is the commit path behind network micro-batching (fdc-serve
    /// coalesces concurrent `/insert` requests into calls to this).
    ///
    /// Later duplicates of a base node within one incomplete time stamp
    /// overwrite earlier ones, exactly as repeated [`F2db::insert_value`]
    /// calls would. Returns the number of time advances the batch
    /// triggered. On error (a row that is not a base series) the rows
    /// before the offending one remain applied, like a failing statement
    /// in a script.
    pub fn insert_batch(&self, rows: &[(NodeId, f64)]) -> Result<usize> {
        self.check_writable("INSERT")?;
        self.insert_batch_inner(rows)
    }

    /// Applies a batch replicated from a primary's WAL to a read-only
    /// follower engine. Identical to [`F2db::insert_batch`] except it
    /// bypasses the read-only guard — the rows were already committed
    /// (and logged) by the primary; the follower is reproducing them,
    /// not accepting new writes. The follower's engine has no attached
    /// WAL, so nothing is re-logged here; the replica keeps its own log
    /// via `fdc_wal::Wal::apply_chunk`.
    pub fn apply_replicated(&self, rows: &[(NodeId, f64)]) -> Result<usize> {
        self.insert_batch_inner(rows)
    }

    fn insert_batch_inner(&self, rows: &[(NodeId, f64)]) -> Result<usize> {
        if rows.is_empty() {
            return Ok(0);
        }
        let _span = fdc_obs::span!("f2db.insert_batch");
        let target_count = {
            let ds = self.dataset.read().unwrap();
            for &(node, _) in rows {
                if !ds.graph().base_nodes().contains(&node) {
                    return Err(F2dbError::Semantic(format!(
                        "node {node} is not a base series"
                    )));
                }
                self.check_owned(node)?;
            }
            self.advance_target(ds.graph().base_nodes().len())
        };
        let mut advances = 0usize;
        let mut pending = self.pending.lock().unwrap();
        // One WAL record covers the whole micro-batch: N coalesced rows
        // cost one log append and share one group-commit fsync.
        let ticket = self.wal_submit(rows)?;
        for &(node, measure) in rows {
            pending.insert(node, measure);
            self.stats.record_insert();
            fdc_obs::counter(names::F2DB_INSERTS).incr();
            if pending.len() < target_count {
                continue;
            }
            // Same ordering rule as insert_value: acquire the advance
            // lock while holding pending so completed time stamps commit
            // in completion order. The pending mutex stays held through
            // the advance — lock order `pending → advance_lock → dataset
            // → shard` allows it, and it is what makes the batch a single
            // write-path pass.
            let serial = self.advance_lock.lock().unwrap();
            let batch: Vec<(NodeId, f64)> = pending.drain().collect();
            self.advance_time(batch, serial)?;
            advances += 1;
        }
        drop(pending);
        self.stats.record_insert_batch();
        fdc_obs::counter(names::F2DB_INSERT_BATCHES).incr();
        fdc_obs::histogram(names::F2DB_INSERT_BATCH_ROWS).record(rows.len() as u64);
        // Ack only once durable. Waiting after the locks drop lets the
        // sync thread coalesce concurrent committers into one fsync.
        self.wal_wait(ticket)?;
        Ok(advances)
    }

    /// Number of inserts currently waiting for a complete time stamp.
    pub fn pending_inserts(&self) -> usize {
        self.pending.lock().unwrap().len()
    }

    /// Snapshot of the inserts waiting for a complete time stamp, sorted
    /// by node id. A server draining for shutdown persists these alongside
    /// the catalog and re-applies them (via [`F2db::insert_batch`]) after
    /// restart, so acknowledged writes of an incomplete time stamp are not
    /// lost.
    pub fn pending_rows(&self) -> Vec<(NodeId, f64)> {
        let pending = self.pending.lock().unwrap();
        let mut rows: Vec<(NodeId, f64)> = pending.iter().map(|(&n, &v)| (n, v)).collect();
        drop(pending);
        rows.sort_by_key(|&(n, _)| n);
        rows
    }

    /// Proactively re-estimates every currently-invalid model — the job
    /// a background maintenance worker runs between query bursts. Safe to
    /// call from many threads concurrently; the single-flight slots make
    /// sure each invalidation epoch pays for one re-fit total. Returns
    /// how many models this call re-fitted.
    pub fn maintain(&self) -> Result<usize> {
        self.check_writable("MAINTAIN")?;
        let ds = self.dataset.read().unwrap();
        let mut refitted = 0;
        for node in self.catalog.invalid_nodes() {
            if self
                .catalog
                .reestimate_single_flight(node, &ds, &self.fit)?
                == Reestimation::Refit
            {
                self.stats.record_reestimation();
                fdc_obs::counter(names::F2DB_MODELS_REESTIMATED).incr();
                if let Some(acc) = &self.accuracy {
                    acc.reset_key(node as u64);
                }
                refitted += 1;
            }
        }
        Ok(refitted)
    }

    /// Marks the model at `node` invalid (as a maintenance policy would).
    /// Returns whether the flag changed.
    pub fn invalidate(&self, node: NodeId) -> bool {
        let changed = self.catalog.invalidate(node);
        if changed {
            self.stats.record_invalidations(1);
        }
        changed
    }

    /// Marks every stored model invalid; returns how many flags changed.
    pub fn invalidate_all(&self) -> usize {
        let n = self.catalog.invalidate_all();
        self.stats.record_invalidations(n as u64);
        n
    }

    /// Applies one complete batch under the advance lock the caller
    /// already holds ([`F2db::insert_value`] acquires it while draining,
    /// so batches commit in completion order). Advances are serialized:
    /// the catalog's per-shard passes assume one advance at a time
    /// (queries keep flowing shard by shard).
    fn advance_time(
        &self,
        mut batch: Vec<(NodeId, f64)>,
        _serial: MutexGuard<'_, ()>,
    ) -> Result<()> {
        let _span = fdc_obs::span!("f2db.advance_time");
        let last = {
            let mut ds = self.dataset.write().unwrap();
            if let Some(p) = &self.partition {
                // The dataset's advance needs one value per base node;
                // a shard zero-pads the bases it does not own. Padding
                // only corrupts subtrees outside every resident node's
                // derivation closure, so resident forecasts stay
                // bit-exact.
                batch.extend(
                    ds.graph()
                        .base_nodes()
                        .iter()
                        .filter(|b| !p.owned.contains(b))
                        .map(|&b| (b, 0.0)),
                );
            }
            ds.advance_time(&batch)?;
            ds.series_len() - 1
        };
        let ds = self.dataset.read().unwrap();
        // Feed committed values into the sampling plane's cell models
        // (O(1) per cell — only sampled cells own a model). Zero-padded
        // entries from a partitioned advance are skipped: a shard only
        // *knows* the values of bases it owns, and feeding padding would
        // corrupt sampled models.
        {
            let mut plane = self.approx.write().unwrap();
            if let Some(plane) = plane.as_mut() {
                for &(n, v) in &batch {
                    let owned = self
                        .partition
                        .as_ref()
                        .map(|p| p.owned.contains(&n))
                        .unwrap_or(true);
                    if owned {
                        plane.observe(n, v);
                    }
                }
            }
        }
        let out = self
            .catalog
            .advance_time_with(&ds, last, &self.policy, self.accuracy.as_ref());
        self.stats
            .record_advance(out.model_updates, out.invalidations);
        fdc_obs::counter(names::F2DB_TIME_ADVANCES).incr();
        journal().publish(Event::BatchAdvance {
            time_index: last as u64,
            model_updates: out.model_updates,
            invalidations: out.invalidations,
            drift_alerts: out.drift_alerts,
        });
        Ok(())
    }

    /// Persists the engine state to a file, crash-safely *and* durably:
    /// the bytes are written to a temporary sibling, fsynced, atomically
    /// renamed over `path`, and the parent directory is fsynced so the
    /// rename itself survives power failure.
    ///
    /// Without a WAL this writes the plain catalog (configuration +
    /// model states), as before. With a WAL attached this is a
    /// **checkpoint**: one `F2CK` container holding the durable WAL
    /// position, the pending rows, the base-series snapshot and the
    /// catalog — then fully-checkpointed WAL segments are truncated.
    pub fn save_catalog(&self, path: &std::path::Path) -> Result<()> {
        let io = |e: std::io::Error| F2dbError::Storage(e.to_string());
        match self.wal.get() {
            None => {
                let bytes = self.catalog.encode();
                fdc_obs::counter(names::F2DB_CATALOG_ENCODED_BYTES).add(bytes.len() as u64);
                journal().publish(Event::CatalogSave {
                    bytes: bytes.len() as u64,
                });
                fdc_wal::atomic_write_durable(path, &bytes).map_err(io)
            }
            Some(wal) => {
                // Hold `pending` *and* `advance_lock` across the
                // snapshot. Inserts submit their WAL record under
                // `pending`, but `insert_value` drops `pending` before
                // its advance runs — holding `pending` alone could
                // observe a `last_seq` whose drained rows are neither
                // in the pending map nor applied to the dataset yet,
                // and the checkpoint below would truncate the only
                // durable copy of an acknowledged write. Taking the
                // advance lock too (same `pending → advance_lock →
                // dataset → shard` order as the write path) waits out
                // any in-flight advance: with both held, `last_seq`
                // names exactly the state the snapshot captures.
                let pending = self.pending.lock().unwrap();
                let serial = self.advance_lock.lock().unwrap();
                let wal_seq = wal.stats().last_seq;
                let mut rows: Vec<(NodeId, f64)> = pending.iter().map(|(&n, &v)| (n, v)).collect();
                rows.sort_by_key(|&(n, _)| n);
                let catalog_bytes = self.catalog.encode();
                let container = {
                    let ds = self.dataset.read().unwrap();
                    durability::encode_checkpoint(wal_seq, &rows, &ds, &catalog_bytes)
                };
                // The snapshot bytes are captured; later advances only
                // add records past `wal_seq`, which the checkpoint
                // below leaves in the log.
                drop(serial);
                fdc_obs::counter(names::F2DB_CATALOG_ENCODED_BYTES).add(container.len() as u64);
                journal().publish(Event::CatalogSave {
                    bytes: container.len() as u64,
                });
                fdc_wal::atomic_write_durable(path, &container).map_err(io)?;
                drop(pending);
                // The snapshot is durable; segments at or below wal_seq
                // are now dead weight.
                wal.checkpoint(wal_seq)
                    .map_err(|e| F2dbError::Storage(e.to_string()))?;
                Ok(())
            }
        }
    }

    /// Restores a database from a persisted file and the (current) data
    /// set. Reads both formats: a legacy plain catalog uses the caller's
    /// data set as-is; an `F2CK` checkpoint container additionally
    /// restores the base series the checkpoint snapshotted (recomputing
    /// aggregates), the pending rows, and the WAL watermark that
    /// [`F2db::attach_wal`] will resume replay from. Stale `*.tmp.*`
    /// siblings from interrupted saves are swept.
    pub fn open_catalog(dataset: Dataset, path: &std::path::Path) -> Result<Self> {
        let _ = fdc_wal::sweep_stale_tmp(path);
        let bytes = std::fs::read(path).map_err(|e| F2dbError::Storage(e.to_string()))?;
        fdc_obs::counter(names::F2DB_CATALOG_DECODED_BYTES).add(bytes.len() as u64);
        journal().publish(Event::CatalogLoad {
            bytes: bytes.len() as u64,
        });
        let (catalog, dataset, pending, recovered_wal_seq) =
            if durability::is_checkpoint_container(&bytes) {
                let cp = durability::decode_checkpoint(&bytes)?;
                let schema = dataset.graph().schema().clone();
                let restored = Dataset::from_base(schema, cp.base)?;
                let catalog = Catalog::decode(&cp.catalog_bytes)?;
                let pending: HashMap<NodeId, f64> = cp.pending.into_iter().collect();
                (catalog, restored, pending, cp.wal_seq)
            } else {
                (Catalog::decode(&bytes)?, dataset, HashMap::new(), 0)
            };
        if catalog.node_count() != dataset.node_count() {
            return Err(F2dbError::Storage(format!(
                "catalog covers {} nodes, data set has {}",
                catalog.node_count(),
                dataset.node_count()
            )));
        }
        Ok(F2db {
            dataset: RwLock::new(dataset),
            catalog,
            pending: Mutex::new(pending),
            advance_lock: Mutex::new(()),
            policy: MaintenancePolicy::default(),
            fit: FitOptions::default(),
            stats: SharedMaintenanceStats::default(),
            accuracy: None,
            wal: std::sync::OnceLock::new(),
            recovered_wal_seq,
            read_only: std::sync::atomic::AtomicBool::new(false),
            partition: None,
            approx: RwLock::new(None),
        })
    }

    /// Opens (replaying) the write-ahead log in `wal_dir`, re-applies
    /// every record past the recovered watermark, and attaches the log
    /// so subsequent inserts are durable. Call on a freshly loaded or
    /// freshly opened engine, before serving traffic.
    ///
    /// Replay is idempotent across restarts: records the checkpoint
    /// already covers are filtered by sequence number, and a second
    /// recovery of the same files reproduces byte-identical state.
    pub fn attach_wal(
        self,
        wal_dir: &std::path::Path,
        opts: fdc_wal::WalOptions,
    ) -> Result<(Self, RecoveryReport)> {
        let (wal, wal_recovery) =
            fdc_wal::Wal::open(wal_dir, opts).map_err(|e| F2dbError::Storage(e.to_string()))?;
        let resumed_from_seq = self.recovered_wal_seq.max(wal_recovery.checkpoint_seq);
        let mut replayed_batches = 0u64;
        let mut replayed_rows = 0u64;
        let mut advances = 0u64;
        for (seq, payload) in &wal_recovery.records {
            if *seq <= resumed_from_seq {
                continue;
            }
            match WalRecord::decode(payload)? {
                WalRecord::InsertBatch { rows, .. } => {
                    // `self.wal` is still unset here, so the re-apply
                    // does not re-log the records.
                    advances += self.insert_batch_inner(&rows)? as u64;
                    replayed_rows += rows.len() as u64;
                    replayed_batches += 1;
                }
            }
        }
        let report = RecoveryReport {
            swept_tmp: wal_recovery.swept_tmp,
            wal: wal_recovery,
            replayed_batches,
            replayed_rows,
            advances,
            resumed_from_seq,
        };
        self.adopt_wal(wal)?;
        Ok((self, report))
    }

    /// One-call crash recovery: [`F2db::open_catalog`] (either format)
    /// followed by [`F2db::attach_wal`].
    pub fn recover(
        dataset: Dataset,
        catalog_path: &std::path::Path,
        wal_dir: &std::path::Path,
        opts: fdc_wal::WalOptions,
    ) -> Result<(Self, RecoveryReport)> {
        Self::open_catalog(dataset, catalog_path)?.attach_wal(wal_dir, opts)
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&fdc_wal::Wal> {
        self.wal.get()
    }

    /// Counters of the attached write-ahead log, if any: last appended
    /// sequence number, checkpoint watermark, live segments, fsyncs.
    pub fn wal_stats(&self) -> Option<fdc_wal::WalStats> {
        self.wal.get().map(|w| w.stats())
    }

    /// Attaches an already-opened (and already-replayed) log through a
    /// shared reference — the promotion path: a follower replica's
    /// engine is behind an `Arc` by the time it becomes writable, so
    /// the by-value [`F2db::attach_wal`] is out of reach. Fails if a
    /// log is already attached. The caller is responsible for having
    /// replayed the log's records into the engine first.
    pub fn adopt_wal(&self, wal: fdc_wal::Wal) -> Result<()> {
        self.wal.set(wal).map_err(|_| {
            F2dbError::Storage("a write-ahead log is already attached to this engine".into())
        })
    }

    /// Whether public write paths are rejected (a follower replica
    /// before promotion).
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Marks the engine read-only (`true` — a follower replica) or
    /// writable again (`false` — promotion).
    pub fn set_read_only(&self, read_only: bool) {
        self.read_only
            .store(read_only, std::sync::atomic::Ordering::Release);
    }

    /// Rejects a write for a base node another shard owns.
    fn check_owned(&self, base: NodeId) -> Result<()> {
        if !self.owns_base(base) {
            return Err(F2dbError::WrongShard(format!(
                "base node {base} is owned by another shard of this partitioned deployment"
            )));
        }
        Ok(())
    }

    /// How many pending rows complete a time stamp: every base node, or
    /// on a partitioned shard only the owned ones.
    fn advance_target(&self, base_count: usize) -> usize {
        match &self.partition {
            None => base_count,
            Some(p) => p.owned.len(),
        }
    }

    fn check_writable(&self, op: &str) -> Result<()> {
        if self.is_read_only() {
            return Err(F2dbError::ReadOnly(format!(
                "{op} rejected: this engine is a read-only follower replica; \
                 write to the primary or promote the follower first"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_core::{Advisor, AdvisorOptions};
    use fdc_datagen::tourism_proxy;

    fn small_db() -> F2db {
        let ds = tourism_proxy(1);
        let outcome = Advisor::new(
            &ds,
            AdvisorOptions {
                parallelism: Some(2),
                ..AdvisorOptions::default()
            },
        )
        .unwrap()
        .run();
        F2db::load(ds, &outcome.configuration).unwrap()
    }

    #[test]
    fn forecast_query_returns_horizon_rows() {
        let db = small_db();
        let result = db
            .query("SELECT time, visitors FROM facts WHERE purpose = 'holiday' AND state = 'NSW' AS OF now() + '4 quarters'")
            .unwrap();
        assert_eq!(result.rows.len(), 1);
        assert_eq!(result.rows[0].values.len(), 4);
        assert!(result.rows[0].values.iter().all(|(_, v)| v.is_finite()));
        // Forecast time stamps continue the history.
        assert_eq!(result.rows[0].values[0].0, 32);
    }

    #[test]
    fn aggregate_query_resolves_aggregate_node() {
        let db = small_db();
        let result = db
            .query("SELECT time, SUM(visitors) FROM facts WHERE state = 'QLD' GROUP BY time AS OF now() + '2 quarters'")
            .unwrap();
        assert_eq!(result.rows.len(), 1);
        assert!(result.rows[0].label.contains('*'));
    }

    #[test]
    fn group_by_dimension_returns_multiple_rows() {
        let db = small_db();
        let result = db
            .query("SELECT time, SUM(visitors) FROM facts GROUP BY time, purpose AS OF now() + '1 quarter'")
            .unwrap();
        assert_eq!(result.rows.len(), 4);
    }

    #[test]
    fn unknown_value_is_semantic_error() {
        let db = small_db();
        let err = db
            .query("SELECT time, v FROM facts WHERE state = 'Nowhere' AS OF now() + '1 quarter'")
            .unwrap_err();
        assert!(matches!(err, F2dbError::Semantic(_)));
    }

    #[test]
    fn inserts_batch_until_complete_then_advance() {
        let db = small_db();
        let base: Vec<NodeId> = db.dataset().graph().base_nodes().to_vec();
        let len_before = db.dataset().series_len();
        for (i, &b) in base.iter().enumerate() {
            let advanced = db.insert_value(b, 100.0).unwrap();
            assert_eq!(advanced, i + 1 == base.len());
        }
        assert_eq!(db.dataset().series_len(), len_before + 1);
        assert_eq!(db.pending_inserts(), 0);
        assert_eq!(db.stats().time_advances, 1);
    }

    #[test]
    fn insert_batch_commits_many_rows_per_advance() {
        let db = small_db();
        let base: Vec<NodeId> = db.dataset().graph().base_nodes().to_vec();
        assert!(base.len() > 1, "fixture must have several base series");
        let len_before = db.dataset().series_len();
        // Three complete rounds in a single micro-batch.
        let rows: Vec<(NodeId, f64)> = (0..3)
            .flat_map(|round| {
                base.iter()
                    .map(move |&b| (b, 100.0 + round as f64))
                    .collect::<Vec<_>>()
            })
            .collect();
        let advances = db.insert_batch(&rows).unwrap();
        assert_eq!(advances, 3);
        assert_eq!(db.dataset().series_len(), len_before + 3);
        assert_eq!(db.pending_inserts(), 0);
        let stats = db.stats();
        assert_eq!(stats.inserts, rows.len());
        assert_eq!(stats.insert_batches, 1);
        assert_eq!(stats.time_advances, 3);
        // The point of micro-batching: >1 row per advance-lock trip.
        assert!(stats.inserts / stats.time_advances > 1);
    }

    #[test]
    fn insert_batch_partial_round_stays_pending() {
        let db = small_db();
        let base: Vec<NodeId> = db.dataset().graph().base_nodes().to_vec();
        let rows: Vec<(NodeId, f64)> = base[..base.len() - 1]
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, i as f64))
            .collect();
        let advances = db.insert_batch(&rows).unwrap();
        assert_eq!(advances, 0);
        assert_eq!(db.pending_inserts(), rows.len());
        // pending_rows is the sorted snapshot a draining server persists.
        let mut expected = rows.clone();
        expected.sort_by_key(|&(n, _)| n);
        assert_eq!(db.pending_rows(), expected);
        // Re-applying the snapshot elsewhere reproduces the same pending
        // state (duplicates overwrite, so this is idempotent).
        let db2 = small_db();
        db2.insert_batch(&db.pending_rows()).unwrap();
        assert_eq!(db2.pending_rows(), db.pending_rows());
    }

    #[test]
    fn insert_batch_rejects_non_base_nodes_before_applying() {
        let db = small_db();
        let top = db.dataset().graph().top_node();
        let b = db.dataset().graph().base_nodes()[0];
        assert!(db.insert_batch(&[(b, 1.0), (top, 2.0)]).is_err());
        // Validation happens before any row is applied.
        assert_eq!(db.pending_inserts(), 0);
        assert_eq!(db.insert_batch(&[]).unwrap(), 0);
    }

    #[test]
    fn interrupted_save_leaves_previous_catalog_intact() {
        let db = small_db();
        let dir = std::env::temp_dir().join(format!("fdc_atomic_save_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.bin");
        db.save_catalog(&path).unwrap();

        // Simulate a crash mid-save: a later save got as far as writing
        // garbage into its temp sibling but never renamed it.
        let tmp = {
            let mut t = path.as_os_str().to_owned();
            t.push(format!(".tmp.{}", std::process::id()));
            std::path::PathBuf::from(t)
        };
        std::fs::write(&tmp, b"partial garbage from an interrupted save").unwrap();

        // The real catalog is untouched and still opens.
        let restored = F2db::open_catalog(db.dataset().clone(), &path).unwrap();
        assert_eq!(restored.model_count(), db.model_count());

        // The next successful save consumes the temp file via rename and
        // leaves a valid catalog.
        db.save_catalog(&path).unwrap();
        assert!(!tmp.exists(), "temp file must be renamed away");
        F2db::open_catalog(db.dataset().clone(), &path).unwrap();

        // A failing save (unwritable target directory) reports Storage
        // and cleans its temp file up.
        let bad = dir.join("no_such_subdir").join("catalog.bin");
        assert!(matches!(
            db.save_catalog(&bad).unwrap_err(),
            F2dbError::Storage(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn insert_sql_statement_works() {
        let db = small_db();
        let r = db
            .execute("INSERT INTO facts VALUES ('holiday', 'NSW', 123.0)")
            .unwrap();
        assert!(r.rows.is_empty());
        assert_eq!(db.pending_inserts(), 1);
    }

    #[test]
    fn duplicate_pending_insert_overwrites() {
        let db = small_db();
        let b = db.dataset().graph().base_nodes()[0];
        db.insert_value(b, 1.0).unwrap();
        db.insert_value(b, 2.0).unwrap();
        assert_eq!(db.pending_inserts(), 1);
    }

    #[test]
    fn non_base_insert_is_rejected() {
        let db = small_db();
        let top = db.dataset().graph().top_node();
        assert!(db.insert_value(top, 1.0).is_err());
    }

    #[test]
    fn catalog_round_trips_through_disk() {
        let db = small_db();
        let path = std::env::temp_dir().join(format!("fdc_catalog_{}.bin", std::process::id()));
        db.save_catalog(&path).unwrap();
        let restored = F2db::open_catalog(db.dataset().clone(), &path).unwrap();
        assert_eq!(restored.model_count(), db.model_count());
        let result = restored
            .query("SELECT time, v FROM facts AS OF now() + '2 quarters'")
            .unwrap();
        assert_eq!(result.rows.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn execute_script_runs_statements_in_order() {
        let db = small_db();
        let results = db
            .execute_script(
                "-- warm the cache
                 INSERT INTO facts VALUES ('holiday', 'NSW', 10.0);
                 SELECT time, SUM(v) FROM facts GROUP BY time AS OF now() + '1 quarter';
                 ",
            )
            .unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].rows.is_empty());
        assert_eq!(results[1].rows.len(), 1);
        assert_eq!(db.pending_inserts(), 1);
        // Errors stop the script.
        assert!(db
            .execute_script("SELECT time FROM facts AS OF now() + '1 quarter'; BOGUS;")
            .is_err());
    }

    #[test]
    fn avg_aggregate_divides_by_base_count() {
        let db = small_db();
        let sum = db
            .query("SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '2 quarters'")
            .unwrap();
        let avg = db
            .query("SELECT time, AVG(visitors) FROM facts GROUP BY time AS OF now() + '2 quarters'")
            .unwrap();
        let n = db.dataset().graph().base_nodes().len() as f64;
        for (s, a) in sum.rows[0].values.iter().zip(&avg.rows[0].values) {
            assert!((s.1 / n - a.1).abs() < 1e-9, "{} vs {}", s.1 / n, a.1);
        }
    }

    #[test]
    fn explain_describes_the_plan() {
        let db = small_db();
        let report = db
            .explain("EXPLAIN SELECT time, SUM(visitors) FROM facts WHERE state = 'NSW' GROUP BY time AS OF now() + '4 quarters'")
            .unwrap();
        assert_eq!(report.horizon, 4);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert!(row.label.contains("NSW"));
        assert!(!row.sources.is_empty());
        assert!(row.weight.is_finite());
        assert!(["direct", "aggregation", "disaggregation", "general"].contains(&row.scheme_kind));
        // Rendered plan mentions the node and scheme.
        let text = report.to_string();
        assert!(text.contains("NSW"));
        assert!(text.contains(row.scheme_kind));
        // explain() also accepts the query without the EXPLAIN prefix.
        let same = db
            .explain("SELECT time, SUM(visitors) FROM facts WHERE state = 'NSW' GROUP BY time AS OF now() + '4 quarters'")
            .unwrap();
        assert_eq!(same, report);
    }

    #[test]
    fn execute_rejects_explain_with_hint() {
        let db = small_db();
        let err = db
            .execute("EXPLAIN SELECT time, v FROM facts AS OF now() + '1 quarter'")
            .unwrap_err();
        assert!(matches!(err, F2dbError::Semantic(_)));
        assert!(db.explain("INSERT INTO facts VALUES ('a', 1.0)").is_err());
    }

    #[test]
    fn queries_are_fast_because_precomputed() {
        let db = small_db();
        // Warm up, then measure: a forecast query must not scan base data.
        db.query("SELECT time, v FROM facts AS OF now() + '1 quarter'")
            .unwrap();
        let start = std::time::Instant::now();
        for _ in 0..100 {
            db.query("SELECT time, v FROM facts AS OF now() + '1 quarter'")
                .unwrap();
        }
        let avg = start.elapsed() / 100;
        assert!(avg < std::time::Duration::from_millis(5), "avg {avg:?}");
    }

    #[test]
    fn concurrent_queries_and_inserts_do_not_deadlock() {
        let db = small_db().with_policy(MaintenancePolicy::TimeBased { every: 1 });
        let base: Vec<NodeId> = db.dataset().graph().base_nodes().to_vec();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..20 {
                        db.query("SELECT time, SUM(v) FROM facts GROUP BY time AS OF now() + '1 quarter'")
                            .unwrap();
                    }
                });
            }
            scope.spawn(|| {
                for round in 0..3 {
                    for &b in &base {
                        db.insert_value(b, 50.0 + round as f64).unwrap();
                    }
                }
            });
            scope.spawn(|| {
                for _ in 0..5 {
                    db.maintain().unwrap();
                }
            });
        });
        let stats = db.stats();
        assert_eq!(stats.queries, 80);
        assert_eq!(stats.time_advances, 3);
        // Every invalidation epoch paid for at most one re-estimation.
        assert!(stats.reestimations <= stats.invalidations);
    }

    #[test]
    fn invalidate_all_then_query_reestimates_once() {
        let db = small_db();
        let n = db.invalidate_all();
        assert_eq!(n, db.model_count());
        db.query("SELECT time, SUM(v) FROM facts GROUP BY time AS OF now() + '1 quarter'")
            .unwrap();
        let stats = db.stats();
        assert!(stats.reestimations >= 1);
        assert!(stats.reestimations <= n);
    }

    #[test]
    fn read_only_engine_rejects_writes_with_typed_errors() {
        let db = small_db();
        db.set_read_only(true);
        assert!(db.is_read_only());
        let b = db.dataset().graph().base_nodes()[0];
        // Every public write path fails with the typed error...
        for err in [
            db.insert_value(b, 1.0).unwrap_err(),
            db.insert_batch(&[(b, 1.0)]).unwrap_err(),
            db.execute("INSERT INTO facts VALUES ('holiday', 'NSW', 5.0)")
                .unwrap_err(),
            db.maintain().unwrap_err(),
        ] {
            assert!(matches!(err, F2dbError::ReadOnly(_)), "{err:?}");
        }
        // ...and nothing landed.
        assert_eq!(db.pending_inserts(), 0);
        // Reads still work.
        db.query("SELECT time, v FROM facts AS OF now() + '1 quarter'")
            .unwrap();
        // The replication apply path bypasses the guard.
        assert_eq!(db.apply_replicated(&[(b, 2.0)]).unwrap(), 0);
        assert_eq!(db.pending_inserts(), 1);
        // Promotion reopens the write paths.
        db.set_read_only(false);
        db.insert_value(b, 3.0).unwrap();
    }

    #[test]
    fn adopt_wal_attaches_once_and_logs_subsequent_writes() {
        let dir = std::env::temp_dir().join(format!("fdc_adopt_wal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = small_db();
        assert!(db.wal().is_none());
        let (wal, _) = fdc_wal::Wal::open(&dir, fdc_wal::WalOptions::default()).unwrap();
        db.adopt_wal(wal).unwrap();
        let b = db.dataset().graph().base_nodes()[0];
        db.insert_value(b, 4.0).unwrap();
        assert_eq!(db.wal_stats().unwrap().last_seq, 1);
        // A second log cannot displace the first.
        let dir2 = std::env::temp_dir().join(format!("fdc_adopt_wal2_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir2);
        let (other, _) = fdc_wal::Wal::open(&dir2, fdc_wal::WalOptions::default()).unwrap();
        assert!(matches!(
            db.adopt_wal(other).unwrap_err(),
            F2dbError::Storage(_)
        ));
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    /// Owned base nodes of one first-dimension slice — the natural
    /// partition under `key_dims = 1`, where every base under one
    /// dimension value lands on one shard.
    fn first_slice_partition(db: &F2db) -> (String, Vec<NodeId>) {
        let bases: Vec<NodeId> = db.dataset().graph().base_nodes().to_vec();
        let key = db.partition_key(bases[0], 1).unwrap();
        let owned: Vec<NodeId> = bases
            .iter()
            .copied()
            .filter(|&b| db.partition_key(b, 1).unwrap() == key)
            .collect();
        (key, owned)
    }

    #[test]
    fn partition_rejects_foreign_inserts_and_advances_on_owned_count() {
        let db = small_db();
        let all: Vec<NodeId> = db.dataset().graph().base_nodes().to_vec();
        let (_, owned) = first_slice_partition(&db);
        assert!(owned.len() < all.len(), "fixture must span >1 slice");
        let db = db.with_base_partition(&owned).unwrap();
        assert_eq!(db.owned_base_nodes().as_deref(), Some(&owned[..]));

        let foreign = *all.iter().find(|b| !owned.contains(b)).unwrap();
        assert!(matches!(
            db.insert_value(foreign, 1.0).unwrap_err(),
            F2dbError::WrongShard(_)
        ));

        // A stamp completes once every *owned* base has a value; the
        // other shards' bases are zero-padded into the advance.
        let len_before = db.dataset().series_len();
        for (i, &b) in owned.iter().enumerate() {
            let advanced = db.insert_value(b, 50.0 + i as f64).unwrap();
            assert_eq!(advanced, i + 1 == owned.len());
        }
        assert_eq!(db.dataset().series_len(), len_before + 1);
        assert_eq!(db.pending_inserts(), 0);
    }

    #[test]
    fn partition_constructor_validates_inputs() {
        let db = small_db();
        let not_base = (0..db.dataset().graph().node_count())
            .find(|&v| !db.dataset().graph().base_nodes().contains(&v))
            .unwrap();
        let Err(e) = small_db().with_base_partition(&[not_base]) else {
            panic!("non-base ownership accepted");
        };
        assert!(matches!(e, F2dbError::Semantic(_)));
        let Err(e) = db.with_base_partition(&[]) else {
            panic!("empty ownership accepted");
        };
        assert!(matches!(e, F2dbError::Semantic(_)));
    }

    #[test]
    fn partitioned_shard_matches_oracle_bit_for_bit_on_resident_nodes() {
        // Shard and oracle must run the *same* configuration — the
        // advisor is free to pick different schemes per run — so the
        // catalog crosses via its codec, exactly as a deployment would
        // share a checkpoint file.
        let dir = std::env::temp_dir().join(format!("fdc_part_oracle_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.f2db");
        small_db().save_catalog(&path).unwrap();

        let oracle = F2db::open_catalog(tourism_proxy(1), &path).unwrap();
        let (_, owned) = first_slice_partition(&oracle);
        let shard = F2db::open_catalog(tourism_proxy(1), &path)
            .unwrap()
            .with_base_partition(&owned)
            .unwrap();
        let (owned_count, resident_count) = shard.partition_summary().unwrap();
        assert_eq!(owned_count, owned.len());
        assert!(resident_count >= 1, "slice must serve at least one node");

        // One full stamp: the oracle sees every cell, the shard only its
        // own — identical values where they overlap.
        let all: Vec<NodeId> = oracle.dataset().graph().base_nodes().to_vec();
        let rows: Vec<(NodeId, f64)> = all.iter().map(|&b| (b, 100.0 + (b as f64) * 3.5)).collect();
        assert_eq!(oracle.insert_batch(&rows).unwrap(), 1);
        let owned_rows: Vec<(NodeId, f64)> = rows
            .iter()
            .copied()
            .filter(|(b, _)| owned.contains(b))
            .collect();
        assert_eq!(shard.insert_batch(&owned_rows).unwrap(), 1);

        // Every resident node the all-cells query resolves to must
        // produce byte-identical forecasts on both engines.
        let sql = "SELECT time, SUM(visitors) FROM facts \
                   GROUP BY time, purpose, state AS OF now() + '3 quarters'";
        let sites = oracle.query_derivation(sql).unwrap();
        let mut compared = 0;
        for site in &sites {
            if !shard.is_resident(site.node) {
                assert!(matches!(
                    shard.query_filtered(sql, Some(&[site.node])).unwrap_err(),
                    F2dbError::WrongShard(_)
                ));
                continue;
            }
            let want = oracle.query_filtered(sql, Some(&[site.node])).unwrap();
            let got = shard.query_filtered(sql, Some(&[site.node])).unwrap();
            assert_eq!(got.rows.len(), 1);
            assert_eq!(got.rows[0].label, want.rows[0].label);
            for (g, w) in got.rows[0].values.iter().zip(&want.rows[0].values) {
                assert_eq!(g.0, w.0);
                assert_eq!(g.1.to_bits(), w.1.to_bits(), "node {}", site.label);
            }
            compared += 1;
        }
        assert!(compared >= 1, "no resident node was compared");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_derivation_aligns_with_query_rows() {
        let db = small_db();
        let sql = "SELECT time, SUM(visitors) FROM facts \
                   GROUP BY time, purpose AS OF now() + '2 quarters'";
        let sites = db.query_derivation(sql).unwrap();
        let result = db.query(sql).unwrap();
        assert_eq!(sites.len(), result.rows.len());
        for (site, row) in sites.iter().zip(&result.rows) {
            assert_eq!(site.node, row.node);
            assert_eq!(site.label, row.label);
            let mut sorted = site.closure_base.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, site.closure_base, "closure is sorted");
            let g_bases = db.dataset().graph().base_descendants(site.node);
            for b in g_bases {
                assert!(site.closure_base.contains(&b), "closure covers own bases");
            }
        }
        // EXPLAIN prefix is accepted; INSERT is not.
        assert_eq!(
            db.query_derivation(&format!("EXPLAIN {sql}")).unwrap(),
            sites
        );
        assert!(db
            .query_derivation("INSERT INTO facts VALUES ('holiday', 'NSW', 1.0)")
            .is_err());
    }

    #[test]
    fn filtered_explain_and_analyze_trim_rows() {
        let db = small_db();
        let sql = "SELECT time, SUM(visitors) FROM facts \
                   GROUP BY time, purpose AS OF now() + '1 quarter'";
        let full = db.explain(sql).unwrap();
        assert!(full.rows.len() > 1);
        let keep = full.rows[1].node;
        let trimmed = db.explain_filtered(sql, Some(&[keep])).unwrap();
        assert_eq!(trimmed.rows.len(), 1);
        assert_eq!(trimmed.rows[0].node, keep);
        let analyzed = db.explain_analyze_filtered(sql, Some(&[keep])).unwrap();
        assert_eq!(analyzed.rows.len(), 1);
        assert!(analyzed.rows[0].analysis.is_some());
        assert!(matches!(
            db.explain_filtered(sql, Some(&[NodeId::MAX])).unwrap_err(),
            F2dbError::Semantic(_)
        ));
    }

    #[test]
    fn partition_key_is_schema_ordered_dimension_values() {
        let db = small_db();
        let g_len = db.dataset().graph().base_nodes().len();
        let b = db.dataset().graph().base_nodes()[g_len / 2];
        let full = db.partition_key(b, 0).unwrap();
        let one = db.partition_key(b, 1).unwrap();
        assert!(full.starts_with(&one));
        assert_eq!(
            full.matches('|').count() + 1,
            db.dataset().graph().schema().dim_count()
        );
        // Oversized key_dims clamps to the schema width.
        assert_eq!(db.partition_key(b, 99).unwrap(), full);
        // Only base nodes have placement keys.
        let not_base = (0..db.dataset().graph().node_count())
            .find(|&v| !db.dataset().graph().base_nodes().contains(&v))
            .unwrap();
        assert!(db.partition_key(not_base, 1).is_err());
    }
}
