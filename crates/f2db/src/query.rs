//! Query AST and results for the forecast query dialect.

use fdc_cube::NodeId;
use fdc_forecast::Granularity;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A forecast query (`SELECT … AS OF now() + '…'`).
    Forecast(ForecastQuery),
    /// `EXPLAIN [ANALYZE] SELECT …` — describe how the query would be
    /// answered (resolved nodes, derivation schemes, models). With
    /// `ANALYZE` the plan is actually executed and annotated with
    /// per-node wall-clock timings, source-model states and the values
    /// produced.
    Explain {
        /// The query being explained.
        query: ForecastQuery,
        /// Whether the plan should be executed (`EXPLAIN ANALYZE`).
        analyze: bool,
    },
    /// An insert of one base observation
    /// (`INSERT INTO facts VALUES ('C1', 'R1', 'P2', 12.5)`).
    Insert {
        /// Dimension value labels in schema order.
        values: Vec<String>,
        /// The measure value.
        measure: f64,
    },
}

/// The aggregate applied to the measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregateFn {
    /// SUM — the cube's native aggregation (forecasts derive directly).
    #[default]
    Sum,
    /// AVG — derived from the SUM forecast divided by the number of base
    /// series under the node (exact for aligned cubes).
    Avg,
}

/// A forecast query in the shape of Fig. 1:
///
/// ```sql
/// SELECT time, SUM(sales) FROM facts
/// WHERE product = 'P4' AND region = 'R2'
/// GROUP BY time
/// AS OF now() + '1 day'
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastQuery {
    /// Raw select items (informational; the measure is implied).
    pub select: Vec<String>,
    /// The fact table name (informational; one cube per database).
    pub table: String,
    /// Equality predicates `dimension = 'value'`.
    pub predicates: Vec<(String, String)>,
    /// Dimensions listed in GROUP BY besides `time` (query expansion).
    pub group_dims: Vec<String>,
    /// The forecast horizon of the AS OF clause.
    pub horizon: HorizonSpec,
    /// The aggregate applied to the measure (SUM by default).
    pub aggregate: AggregateFn,
}

/// Time units accepted in the AS OF clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeUnit {
    /// Hours.
    Hour,
    /// Days.
    Day,
    /// Weeks.
    Week,
    /// Months.
    Month,
    /// Quarters.
    Quarter,
    /// Years.
    Year,
}

/// The horizon of a forecast query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HorizonSpec {
    /// A raw number of series steps (`'3 steps'`).
    Steps(usize),
    /// A calendar quantity (`'1 day'`), converted against the data's
    /// granularity.
    Units {
        /// Quantity.
        n: usize,
        /// Unit.
        unit: TimeUnit,
    },
}

impl HorizonSpec {
    /// Converts the horizon into a number of series steps for the given
    /// granularity. Returns `None` when the unit is finer than the
    /// granularity (e.g. hours over monthly data).
    pub fn steps(&self, granularity: Granularity) -> Option<usize> {
        match *self {
            HorizonSpec::Steps(n) => Some(n),
            HorizonSpec::Units { n, unit } => {
                let per_unit: Option<usize> = match (granularity, unit) {
                    (Granularity::Hourly, TimeUnit::Hour) => Some(1),
                    (Granularity::Hourly, TimeUnit::Day) => Some(24),
                    (Granularity::Hourly, TimeUnit::Week) => Some(168),
                    (Granularity::Daily, TimeUnit::Day) => Some(1),
                    (Granularity::Daily, TimeUnit::Week) => Some(7),
                    (Granularity::Weekly, TimeUnit::Week) => Some(1),
                    (Granularity::Weekly, TimeUnit::Year) => Some(52),
                    (Granularity::Monthly, TimeUnit::Month) => Some(1),
                    (Granularity::Monthly, TimeUnit::Quarter) => Some(3),
                    (Granularity::Monthly, TimeUnit::Year) => Some(12),
                    (Granularity::Quarterly, TimeUnit::Quarter) => Some(1),
                    (Granularity::Quarterly, TimeUnit::Year) => Some(4),
                    (Granularity::Yearly, TimeUnit::Year) => Some(1),
                    _ => None,
                };
                per_unit.map(|p| p * n)
            }
        }
    }
}

/// Approximation metadata of a row answered from the sampling plane.
#[derive(Debug, Clone, PartialEq)]
pub struct RowApprox {
    /// Sampled cells actually evaluated.
    pub sampled: u64,
    /// The node's base-cell population.
    pub population: u64,
    /// Confidence level of `ci_half`.
    pub confidence: f64,
    /// Confidence-interval half-width per forecast step, parallel to
    /// [`QueryRow::values`].
    pub ci_half: Vec<f64>,
}

/// One result row: the forecasts of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRow {
    /// The graph node answering the query.
    pub node: NodeId,
    /// Human-readable coordinate label (e.g. `holiday,NSW` or `*,QLD`).
    pub label: String,
    /// `(logical time, forecast value)` pairs.
    pub values: Vec<(i64, f64)>,
    /// `Some` iff this row was answered approximately (a sampled
    /// Horvitz–Thompson scale-up instead of the exact derivation).
    /// Always `None` unless the caller opted into approximation, so
    /// exact results stay byte-identical.
    pub approx: Option<RowApprox>,
}

/// Result of a statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Result rows (empty for inserts).
    pub rows: Vec<QueryRow>,
}

impl QueryResult {
    /// An empty result (inserts).
    pub fn empty() -> Self {
        QueryResult { rows: Vec::new() }
    }

    /// A fingerprint over the exact bit patterns of every row: node ids,
    /// labels, time stamps and the raw IEEE-754 bits of each forecast
    /// value (FNV-1a). Two results fingerprint equal iff they are
    /// **byte-identical** — the equivalence the concurrency stress suite
    /// demands between the concurrent engine and its serial replay.
    /// Approximation metadata is intentionally excluded: an exact query
    /// must fingerprint identically whether or not a sampling plane is
    /// attached to the engine.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&(self.rows.len() as u64).to_le_bytes());
        for row in &self.rows {
            eat(&(row.node as u64).to_le_bytes());
            eat(row.label.as_bytes());
            eat(&(row.values.len() as u64).to_le_bytes());
            for &(t, v) in &row.values {
                eat(&t.to_le_bytes());
                eat(&v.to_bits().to_le_bytes());
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_conversion_matches_granularity() {
        assert_eq!(
            HorizonSpec::Units {
                n: 1,
                unit: TimeUnit::Day
            }
            .steps(Granularity::Hourly),
            Some(24)
        );
        assert_eq!(
            HorizonSpec::Units {
                n: 2,
                unit: TimeUnit::Quarter
            }
            .steps(Granularity::Monthly),
            Some(6)
        );
        assert_eq!(
            HorizonSpec::Units {
                n: 1,
                unit: TimeUnit::Year
            }
            .steps(Granularity::Quarterly),
            Some(4)
        );
        assert_eq!(HorizonSpec::Steps(5).steps(Granularity::Monthly), Some(5));
    }

    #[test]
    fn fingerprint_separates_bitwise_differences() {
        let row = |v: f64| QueryRow {
            node: 3,
            label: "*,NSW".into(),
            values: vec![(32, v), (33, v + 1.0)],
            approx: None,
        };
        let a = QueryResult {
            rows: vec![row(10.0)],
        };
        let same = QueryResult {
            rows: vec![row(10.0)],
        };
        assert_eq!(a.fingerprint(), same.fingerprint());
        // One ULP of difference must change the fingerprint.
        let nudged = QueryResult {
            rows: vec![row(f64::from_bits(10.0_f64.to_bits() + 1))],
        };
        assert_ne!(a.fingerprint(), nudged.fingerprint());
        assert_ne!(a.fingerprint(), QueryResult::empty().fingerprint());
    }

    #[test]
    fn finer_units_than_granularity_are_rejected() {
        assert_eq!(
            HorizonSpec::Units {
                n: 3,
                unit: TimeUnit::Hour
            }
            .steps(Granularity::Monthly),
            None
        );
        assert_eq!(
            HorizonSpec::Units {
                n: 1,
                unit: TimeUnit::Day
            }
            .steps(Granularity::Quarterly),
            None
        );
    }
}
