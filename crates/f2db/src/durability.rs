//! Durability formats: the WAL record payloads and the `F2CK`
//! checkpoint container.
//!
//! Two codecs live here, both on the catalog [`codec`](crate::codec)
//! primitives:
//!
//! * [`WalRecord`] — what one write-ahead-log record carries. Today a
//!   single variant, `InsertBatch`: the rows of one committed
//!   [`F2db::insert_batch`](crate::F2db::insert_batch) call, in apply
//!   order. Replaying records in sequence order reproduces the exact
//!   in-memory commit order, because the engine appends the record
//!   under the same mutex that serializes the applies.
//! * the **checkpoint container** — what `save_catalog` writes when a
//!   WAL is attached. A catalog file alone is not enough to restart
//!   from: replay also needs the durable WAL position the snapshot
//!   corresponds to, the pending (incomplete-time-stamp) rows, and the
//!   base series the advances have grown — the caller's data set on
//!   disk predates every advance the log absorbed. All four parts go in
//!   *one* file behind *one* atomic rename, so a crash mid-checkpoint
//!   can never tear them apart: magic `F2CK`, then the WAL sequence
//!   number, the pending rows, a base-series snapshot (aggregates are
//!   recomputed deterministically by [`Dataset::from_base`]), and the
//!   ordinary `F2DB`-encoded catalog bytes. Legacy plain-catalog files
//!   still open: [`is_checkpoint_container`] dispatches on the magic.

use crate::codec::{Decoder, Encoder};
use crate::{F2dbError, Result};
use fdc_cube::{Coord, Dataset, NodeId};
use fdc_forecast::{Granularity, TimeSeries};

/// Magic bytes identifying a checkpoint container file.
pub const CONTAINER_MAGIC: &[u8; 4] = b"F2CK";
/// Container format version.
pub const CONTAINER_VERSION: u16 = 1;

/// One write-ahead-log record, as the engine logs it.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// The rows of one committed insert batch, in apply order.
    InsertBatch {
        /// `(base node, measure)` pairs.
        rows: Vec<(NodeId, f64)>,
        /// The sampled `(trace_id, span_id)` active when the batch was
        /// logged, if any. Carried through shipping so a follower's
        /// apply span joins the originating request's trace. Untraced
        /// batches encode as the legacy tag and decode as `None`.
        trace: Option<(u128, u64)>,
    },
}

const TAG_INSERT_BATCH: u8 = 1;
/// Tag 2: an `InsertBatch` carrying its trace identity — `u64` trace-id
/// high half, low half, span id, then the row payload of tag 1.
const TAG_INSERT_BATCH_TRACED: u8 = 2;

impl WalRecord {
    /// Encodes the record payload (framing — length, checksum, sequence
    /// number — is the WAL's job, not ours).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::default();
        match self {
            WalRecord::InsertBatch { rows, trace } => {
                match trace {
                    Some((trace_id, span_id)) => {
                        e.put_u8(TAG_INSERT_BATCH_TRACED);
                        e.put_u64((trace_id >> 64) as u64);
                        e.put_u64(*trace_id as u64);
                        e.put_u64(*span_id);
                    }
                    None => e.put_u8(TAG_INSERT_BATCH),
                }
                e.put_len(rows.len());
                for &(node, value) in rows {
                    e.put_u64(node as u64);
                    e.put_f64(value);
                }
            }
        }
        e.finish()
    }

    /// Decodes a record payload. A payload that does not parse is a
    /// versioned hard error: the WAL's checksum already passed, so this
    /// is a format mismatch, not a torn write.
    pub fn decode(bytes: &[u8]) -> Result<WalRecord> {
        let mut d = Decoder::raw(bytes);
        let tag = d.get_u8()?;
        match tag {
            TAG_INSERT_BATCH | TAG_INSERT_BATCH_TRACED => {
                let trace = if tag == TAG_INSERT_BATCH_TRACED {
                    let hi = d.get_u64()?;
                    let lo = d.get_u64()?;
                    let span_id = d.get_u64()?;
                    Some(((u128::from(hi) << 64) | u128::from(lo), span_id))
                } else {
                    None
                };
                let n = d.get_len()?;
                let mut rows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let node = d.get_u64()? as NodeId;
                    let value = d.get_f64()?;
                    rows.push((node, value));
                }
                Ok(WalRecord::InsertBatch { rows, trace })
            }
            t => Err(F2dbError::Storage(format!(
                "unknown wal record tag {t} (this build reads wal record format v{CONTAINER_VERSION})"
            ))),
        }
    }

    /// Reads just the trace identity off an encoded record, without
    /// decoding (or cloning) the row payload — the ship path uses this
    /// to let a `/wal/fetch` span join the originating insert's trace.
    /// `None` for untraced records or anything that does not parse.
    pub fn peek_trace(bytes: &[u8]) -> Option<(u128, u64)> {
        let mut d = Decoder::raw(bytes);
        if d.get_u8().ok()? != TAG_INSERT_BATCH_TRACED {
            return None;
        }
        let hi = d.get_u64().ok()?;
        let lo = d.get_u64().ok()?;
        let span_id = d.get_u64().ok()?;
        Some(((u128::from(hi) << 64) | u128::from(lo), span_id))
    }
}

/// Whether `bytes` is a checkpoint container (as opposed to a legacy
/// plain `F2DB` catalog file).
pub fn is_checkpoint_container(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == CONTAINER_MAGIC
}

fn granularity_tag(g: Granularity) -> u8 {
    match g {
        Granularity::Hourly => 0,
        Granularity::Daily => 1,
        Granularity::Weekly => 2,
        Granularity::Monthly => 3,
        Granularity::Quarterly => 4,
        Granularity::Yearly => 5,
    }
}

fn granularity_from_tag(tag: u8) -> Result<Granularity> {
    Ok(match tag {
        0 => Granularity::Hourly,
        1 => Granularity::Daily,
        2 => Granularity::Weekly,
        3 => Granularity::Monthly,
        4 => Granularity::Quarterly,
        5 => Granularity::Yearly,
        t => {
            return Err(F2dbError::Storage(format!(
                "bad granularity tag {t} in checkpoint container"
            )))
        }
    })
}

/// Encodes a checkpoint container: the durable WAL position, the
/// pending rows, the base-series snapshot of `dataset`, and the encoded
/// catalog. Everything replay-on-open needs, in one atomically-written
/// file.
pub fn encode_checkpoint(
    wal_seq: u64,
    pending: &[(NodeId, f64)],
    dataset: &Dataset,
    catalog_bytes: &[u8],
) -> Vec<u8> {
    let mut e = Encoder::default();
    // Header by hand — Encoder::with_header writes the F2DB magic.
    let mut buf = Vec::with_capacity(64 + catalog_bytes.len());
    buf.extend_from_slice(CONTAINER_MAGIC);
    buf.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());

    e.put_u64(wal_seq);
    e.put_len(pending.len());
    for &(node, value) in pending {
        e.put_u64(node as u64);
        e.put_f64(value);
    }
    let base = dataset.graph().base_nodes();
    e.put_len(base.len());
    for &b in base {
        let coord = dataset.graph().coord(b);
        e.put_len(coord.values().len());
        for &v in coord.values() {
            e.put_u32(v);
        }
        let series = dataset.series(b);
        e.put_u64(series.start() as u64);
        e.put_u8(granularity_tag(series.granularity()));
        e.put_f64_slice(series.values());
    }
    e.put_len(catalog_bytes.len());
    buf.extend_from_slice(&e.finish());
    buf.extend_from_slice(catalog_bytes);
    buf
}

/// A decoded checkpoint container.
#[derive(Debug, Clone)]
pub struct DecodedCheckpoint {
    /// The WAL sequence number this snapshot is consistent with; replay
    /// applies only records past it.
    pub wal_seq: u64,
    /// Inserts that were waiting for a complete time stamp.
    pub pending: Vec<(NodeId, f64)>,
    /// Base series at checkpoint time, in base-node order.
    pub base: Vec<(Coord, TimeSeries)>,
    /// The embedded `F2DB`-encoded catalog.
    pub catalog_bytes: Vec<u8>,
}

/// Decodes a checkpoint container written by [`encode_checkpoint`].
pub fn decode_checkpoint(bytes: &[u8]) -> Result<DecodedCheckpoint> {
    if !is_checkpoint_container(bytes) {
        return Err(F2dbError::Storage("bad checkpoint container magic".into()));
    }
    if bytes.len() < 6 {
        return Err(F2dbError::Storage("truncated checkpoint container".into()));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != CONTAINER_VERSION {
        return Err(F2dbError::Storage(format!(
            "unsupported checkpoint container version {version} (this build reads v{CONTAINER_VERSION})"
        )));
    }
    let mut d = Decoder::raw(&bytes[6..]);
    let wal_seq = d.get_u64()?;
    let n_pending = d.get_len()?;
    let mut pending = Vec::with_capacity(n_pending.min(1 << 16));
    for _ in 0..n_pending {
        let node = d.get_u64()? as NodeId;
        let value = d.get_f64()?;
        pending.push((node, value));
    }
    let n_base = d.get_len()?;
    let mut base = Vec::with_capacity(n_base.min(1 << 16));
    for _ in 0..n_base {
        let n_dims = d.get_len()?;
        let mut coord = Vec::with_capacity(n_dims.min(64));
        for _ in 0..n_dims {
            coord.push(d.get_u32()?);
        }
        let start = d.get_u64()? as i64;
        let granularity = granularity_from_tag(d.get_u8()?)?;
        let values = d.get_f64_vec()?;
        base.push((
            Coord::new(coord),
            TimeSeries::with_start(values, start, granularity),
        ));
    }
    let catalog_len = d.get_len()?;
    let catalog_bytes = d.take_remaining();
    if catalog_bytes.len() != catalog_len {
        return Err(F2dbError::Storage(format!(
            "checkpoint container declares {catalog_len} catalog bytes, {} present",
            catalog_bytes.len()
        )));
    }
    Ok(DecodedCheckpoint {
        wal_seq,
        pending,
        base,
        catalog_bytes: catalog_bytes.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_record_round_trips() {
        let records = [
            WalRecord::InsertBatch {
                rows: vec![],
                trace: None,
            },
            WalRecord::InsertBatch {
                rows: vec![(0, 1.5), (7, -2.25), (usize::MAX >> 1, 0.0)],
                trace: None,
            },
            WalRecord::InsertBatch {
                rows: vec![(3, 4.5)],
                trace: Some((
                    0xfeed_f00d_dead_beef_cafe_babe_0123_4567,
                    0x89ab_cdef_0011_2233,
                )),
            },
        ];
        for r in &records {
            let bytes = r.encode();
            assert_eq!(&WalRecord::decode(&bytes).unwrap(), r);
        }
    }

    #[test]
    fn untraced_records_keep_the_legacy_tag() {
        // Backward/forward compatibility: an untraced batch must encode
        // byte-identically to the pre-trace format (tag 1), so logs
        // written by this build replay on the previous one as long as
        // tracing was off.
        let bytes = WalRecord::InsertBatch {
            rows: vec![(1, 2.0)],
            trace: None,
        }
        .encode();
        assert_eq!(bytes[0], TAG_INSERT_BATCH);
        let traced = WalRecord::InsertBatch {
            rows: vec![(1, 2.0)],
            trace: Some((9, 9)),
        }
        .encode();
        assert_eq!(traced[0], TAG_INSERT_BATCH_TRACED);
        assert_eq!(traced.len(), bytes.len() + 24);
    }

    #[test]
    fn unknown_record_tag_is_versioned_error() {
        let err = WalRecord::decode(&[0xEE]).unwrap_err();
        match err {
            F2dbError::Storage(msg) => {
                assert!(msg.contains("unknown wal record tag"), "{msg}");
                assert!(msg.contains('v'), "{msg}");
            }
            other => panic!("expected Storage, got {other:?}"),
        }
    }

    #[test]
    fn truncated_record_is_error() {
        let bytes = WalRecord::InsertBatch {
            rows: vec![(1, 2.0), (3, 4.0)],
            trace: Some((5, 6)),
        }
        .encode();
        for cut in 1..bytes.len() {
            assert!(
                WalRecord::decode(&bytes[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn container_magic_dispatch() {
        assert!(is_checkpoint_container(b"F2CKxxxx"));
        assert!(!is_checkpoint_container(b"F2DBxxxx"));
        assert!(!is_checkpoint_container(b"F2"));
        assert!(decode_checkpoint(b"F2DB\x02\x00").is_err());
        // Unsupported version.
        let mut bad = Vec::new();
        bad.extend_from_slice(CONTAINER_MAGIC);
        bad.extend_from_slice(&99u16.to_le_bytes());
        let err = decode_checkpoint(&bad).unwrap_err();
        assert!(matches!(err, F2dbError::Storage(_)));
    }
}
