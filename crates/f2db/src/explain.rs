//! `EXPLAIN` output: the plan of a forecast query.
//!
//! A forecast query never touches the base tables — it resolves to nodes
//! of the time series graph, loads the models its derivation schemes
//! reference and combines their forecasts (§V: "It, thus, finds the
//! nodes, loads the necessary models and calculates the forecasts").
//! `EXPLAIN` makes that plan visible: which nodes answer the query, what
//! scheme kind serves each one, with which sources, weights and model
//! maintenance states.

use crate::query::AggregateFn;
use fdc_cube::NodeId;
use std::time::Duration;

/// Maintenance state of a source model at execution time
/// (`EXPLAIN ANALYZE` only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceModelState {
    /// The stored model was valid and served the query as-is.
    Cached,
    /// The model was invalid and this query triggered its lazy
    /// re-estimation.
    Reestimated,
}

impl std::fmt::Display for SourceModelState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceModelState::Cached => write!(f, "cached"),
            SourceModelState::Reestimated => write!(f, "re-estimated"),
        }
    }
}

/// Execution annotations of one plan node (`EXPLAIN ANALYZE` only).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAnalysis {
    /// Wall-clock time spent deriving this node's forecast.
    pub elapsed: Duration,
    /// Model state per scheme source, parallel to
    /// [`ExplainRow::sources`].
    pub source_states: Vec<SourceModelState>,
    /// The forecast values actually produced.
    pub values: Vec<f64>,
}

/// One source of a derivation scheme in the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainSource {
    /// Coordinate label of the source node.
    pub label: String,
    /// Whether the source model is currently marked invalid (the query
    /// would trigger its lazy re-estimation).
    pub invalid: bool,
}

/// Sampling facts of a plan node answered from the approximate plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplainApprox {
    /// Base-cell population under the node.
    pub population: u64,
    /// Cells in the stored stratified sample.
    pub sampled: u64,
    /// Strata count.
    pub strata: usize,
    /// The caller's cell budget, when one was given.
    pub budget: Option<usize>,
    /// The caller's relative CI target, when one was given.
    pub target_ci: Option<f64>,
}

/// One node of the query plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRow {
    /// The resolved graph node.
    pub node: NodeId,
    /// Coordinate label of the node.
    pub label: String,
    /// Scheme classification: direct / aggregation / disaggregation /
    /// general — or `sampled` when the approximate plane answers.
    pub scheme_kind: &'static str,
    /// The scheme's sources.
    pub sources: Vec<ExplainSource>,
    /// The derivation weight `k`.
    pub weight: f64,
    /// Execution annotations; `Some` only for `EXPLAIN ANALYZE`.
    pub analysis: Option<NodeAnalysis>,
    /// Sampling facts; `Some` only when this node would be answered
    /// approximately (the query opted in and the node is registered).
    pub approx: Option<ExplainApprox>,
}

/// The full plan of a forecast query.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// Horizon in series steps.
    pub horizon: usize,
    /// Aggregate applied to the measure.
    pub aggregate: AggregateFn,
    /// Plan rows, one per resolved node.
    pub rows: Vec<ExplainRow>,
    /// Total execution wall-clock; `Some` only for `EXPLAIN ANALYZE`.
    pub total_elapsed: Option<Duration>,
}

impl ExplainReport {
    /// Renders the report like `Display`, but with every wall-clock field
    /// replaced by `<masked>`. Timings vary run to run; everything else in
    /// the plan is deterministic, which makes this form snapshot-testable.
    pub fn to_masked_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, true)
            .expect("String sink never fails");
        out
    }

    fn render(&self, f: &mut dyn std::fmt::Write, mask_timings: bool) -> std::fmt::Result {
        writeln!(
            f,
            "Forecast Plan (horizon: {} steps, aggregate: {:?})",
            self.horizon, self.aggregate
        )?;
        for row in &self.rows {
            write!(
                f,
                "  -> node [{}] via {} (k = {:.6})",
                row.label, row.scheme_kind, row.weight
            )?;
            match &row.analysis {
                Some(_) if mask_timings => writeln!(f, "  (actual time: <masked>)")?,
                Some(a) => writeln!(f, "  (actual time: {:.1?})", a.elapsed)?,
                None => writeln!(f)?,
            }
            if let Some(ap) = &row.approx {
                write!(
                    f,
                    "       sampling: {} of {} cells across {} strata",
                    ap.sampled, ap.population, ap.strata
                )?;
                if let Some(b) = ap.budget {
                    write!(f, ", budget {b}")?;
                }
                if let Some(t) = ap.target_ci {
                    write!(f, ", target CI {:.1}%", t * 100.0)?;
                }
                writeln!(f)?;
            }
            for (i, s) in row.sources.iter().enumerate() {
                match &row.analysis {
                    Some(a) => writeln!(
                        f,
                        "       model @ [{}]  ({})",
                        s.label,
                        a.source_states
                            .get(i)
                            .copied()
                            .unwrap_or(SourceModelState::Cached)
                    )?,
                    None => writeln!(
                        f,
                        "       model @ [{}]{}",
                        s.label,
                        if s.invalid {
                            "  (invalid: will re-estimate)"
                        } else {
                            ""
                        }
                    )?,
                }
            }
            if let Some(a) = &row.analysis {
                write!(f, "       values: [")?;
                for (i, v) in a.values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:.3}")?;
                }
                writeln!(f, "]")?;
            }
        }
        if let Some(total) = self.total_elapsed {
            if mask_timings {
                writeln!(f, "Execution time: <masked>")?;
            } else {
                writeln!(f, "Execution time: {total:.1?}")?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.render(&mut out, false)?;
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_plan() {
        let report = ExplainReport {
            horizon: 4,
            aggregate: AggregateFn::Sum,
            rows: vec![ExplainRow {
                node: 7,
                label: "*,R2,P4".into(),
                scheme_kind: "disaggregation",
                sources: vec![ExplainSource {
                    label: "*,*,*".into(),
                    invalid: true,
                }],
                weight: 0.25,
                analysis: None,
                approx: None,
            }],
            total_elapsed: None,
        };
        let text = report.to_string();
        assert!(text.contains("horizon: 4 steps"));
        assert!(text.contains("*,R2,P4"));
        assert!(text.contains("disaggregation"));
        assert!(text.contains("will re-estimate"));
        assert!(text.contains("0.250000"));
        assert!(!text.contains("actual time"));
    }

    #[test]
    fn display_renders_analyzed_plan() {
        let report = ExplainReport {
            horizon: 2,
            aggregate: AggregateFn::Sum,
            rows: vec![ExplainRow {
                node: 3,
                label: "*,*".into(),
                scheme_kind: "direct",
                sources: vec![ExplainSource {
                    label: "*,*".into(),
                    invalid: false,
                }],
                weight: 1.0,
                analysis: Some(NodeAnalysis {
                    elapsed: Duration::from_micros(42),
                    source_states: vec![SourceModelState::Reestimated],
                    values: vec![10.5, 11.25],
                }),
                approx: None,
            }],
            total_elapsed: Some(Duration::from_micros(55)),
        };
        let text = report.to_string();
        assert!(text.contains("actual time"), "{text}");
        assert!(text.contains("re-estimated"), "{text}");
        assert!(text.contains("values: [10.500, 11.250]"), "{text}");
        assert!(text.contains("Execution time"), "{text}");

        let masked = report.to_masked_string();
        assert!(masked.contains("actual time: <masked>"), "{masked}");
        assert!(masked.contains("Execution time: <masked>"), "{masked}");
        assert!(!masked.contains("42"), "{masked}");
        assert!(masked.contains("values: [10.500, 11.250]"), "{masked}");
    }
}
