//! `EXPLAIN` output: the plan of a forecast query.
//!
//! A forecast query never touches the base tables — it resolves to nodes
//! of the time series graph, loads the models its derivation schemes
//! reference and combines their forecasts (§V: "It, thus, finds the
//! nodes, loads the necessary models and calculates the forecasts").
//! `EXPLAIN` makes that plan visible: which nodes answer the query, what
//! scheme kind serves each one, with which sources, weights and model
//! maintenance states.

use crate::query::AggregateFn;
use fdc_cube::NodeId;

/// One source of a derivation scheme in the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainSource {
    /// Coordinate label of the source node.
    pub label: String,
    /// Whether the source model is currently marked invalid (the query
    /// would trigger its lazy re-estimation).
    pub invalid: bool,
}

/// One node of the query plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRow {
    /// The resolved graph node.
    pub node: NodeId,
    /// Coordinate label of the node.
    pub label: String,
    /// Scheme classification: direct / aggregation / disaggregation /
    /// general.
    pub scheme_kind: &'static str,
    /// The scheme's sources.
    pub sources: Vec<ExplainSource>,
    /// The derivation weight `k`.
    pub weight: f64,
}

/// The full plan of a forecast query.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// Horizon in series steps.
    pub horizon: usize,
    /// Aggregate applied to the measure.
    pub aggregate: AggregateFn,
    /// Plan rows, one per resolved node.
    pub rows: Vec<ExplainRow>,
}

impl std::fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Forecast Plan (horizon: {} steps, aggregate: {:?})",
            self.horizon, self.aggregate
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  -> node [{}] via {} (k = {:.6})",
                row.label, row.scheme_kind, row.weight
            )?;
            for s in &row.sources {
                writeln!(
                    f,
                    "       model @ [{}]{}",
                    s.label,
                    if s.invalid {
                        "  (invalid: will re-estimate)"
                    } else {
                        ""
                    }
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_plan() {
        let report = ExplainReport {
            horizon: 4,
            aggregate: AggregateFn::Sum,
            rows: vec![ExplainRow {
                node: 7,
                label: "*,R2,P4".into(),
                scheme_kind: "disaggregation",
                sources: vec![ExplainSource {
                    label: "*,*,*".into(),
                    invalid: true,
                }],
                weight: 0.25,
            }],
        };
        let text = report.to_string();
        assert!(text.contains("horizon: 4 steps"));
        assert!(text.contains("*,R2,P4"));
        assert!(text.contains("disaggregation"));
        assert!(text.contains("will re-estimate"));
        assert!(text.contains("0.250000"));
    }
}
