//! End-to-end drift monitoring: feed a deployed catalog a series that
//! abruptly changes level and assert the full observable story — the
//! journal records a `DriftAlert` for the node and then (strictly later
//! in sequence order) the `ReEstimation` that heals it, the node's
//! windowed SMAPE is exported on a live `/metrics` scrape as the
//! `f2db_node_smape` gauge family, and the alert marks the model
//! invalid so lazy maintenance actually re-fits it.
//!
//! Single `#[test]` on purpose: the journal and metrics registry are
//! process-global, and one linear story keeps the assertions exact.

use fdc_core::{Advisor, AdvisorOptions};
use fdc_datagen::tourism_proxy;
use fdc_f2db::{F2db, MaintenancePolicy};
use fdc_obs::{journal, AccuracyOptions, Event, ObsServer};
use std::io::{Read, Write};

fn scrape_metrics(addr: std::net::SocketAddr) -> String {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out.split_once("\r\n\r\n").expect("body").1.to_string()
}

#[test]
fn drift_alert_then_reestimation_heals_the_node() {
    let ds = tourism_proxy(1);
    let outcome = Advisor::new(
        &ds,
        AdvisorOptions {
            parallelism: Some(2),
            ..AdvisorOptions::default()
        },
    )
    .unwrap()
    .run();
    let opts = AccuracyOptions {
        window: 8,
        smape_threshold: 0.5,
        min_samples: 4,
        stddev_k: 3.0,
    };
    // Policy `None`: every invalidation in this test is drift-driven.
    let db = F2db::load(ds, &outcome.configuration)
        .unwrap()
        .with_policy(MaintenancePolicy::None)
        .with_drift_monitoring(opts.clone());

    let monitor = db.drift_monitor().expect("monitoring enabled");
    assert_eq!(monitor.options().smape_threshold, 0.5);
    assert_eq!(monitor.tracked_keys(), 0, "no advances yet");

    // Level shift: the proxy's visitor counts are O(100); inserting a
    // constant far above that drives every model's windowed SMAPE
    // towards 2 within `min_samples` advances.
    let base: Vec<usize> = db.dataset().graph().base_nodes().to_vec();
    for _round in 0..opts.min_samples {
        for &b in &base {
            db.insert_value(b, 1.0e6).unwrap();
        }
    }
    assert_eq!(db.stats().time_advances, opts.min_samples);

    // The journal tells the story in order: at least one DriftAlert,
    // and a BatchAdvance accounting for it.
    let events = journal().recent(usize::MAX);
    let alerts: Vec<_> = events
        .iter()
        .filter_map(|e| match e.event {
            Event::DriftAlert {
                node,
                smape,
                threshold,
                trigger,
                ..
            } => Some((e.seq, node, smape, threshold, trigger)),
            _ => None,
        })
        .collect();
    assert!(!alerts.is_empty(), "level shift raised no drift alert");
    for &(_, _, smape, threshold, trigger) in &alerts {
        assert!(
            trigger == "smape_threshold" || trigger == "variance",
            "unknown trigger tag {trigger}"
        );
        if trigger == "smape_threshold" {
            assert!(smape > threshold, "alert below threshold: {smape}");
        }
    }
    assert!(
        events.iter().any(|e| matches!(
            e.event,
            Event::BatchAdvance { drift_alerts, .. } if drift_alerts > 0
        )),
        "no BatchAdvance event accounted for the alerts"
    );

    // Drift is an invalidation trigger: every alerted node is invalid.
    let invalid = db.catalog().invalid_nodes();
    for &(_, node, _, _, _) in &alerts {
        assert!(
            invalid.contains(&(node as usize)),
            "alerted node {node} not invalidated"
        );
    }

    // The node's windowed SMAPE is live on a real /metrics scrape.
    let server = ObsServer::bind(0).unwrap();
    let body = scrape_metrics(server.addr());
    let (_, alert_node, alert_smape, _, _) = alerts[0];
    assert!(
        body.contains(&format!("f2db_node_smape{{node=\"{alert_node}\"}}")),
        "scrape missing the node's smape gauge:\n{body}"
    );
    assert!(body.contains("# TYPE f2db_node_smape gauge"), "{body}");
    assert!(
        body.contains(&format!("f2db_node_err_stddev{{node=\"{alert_node}\"}}")),
        "scrape missing the node's error-stddev gauge:\n{body}"
    );
    assert!(body.contains("f2db_drift_alerts"), "{body}");
    assert!(
        monitor.smape(alert_node).expect("window populated") >= alert_smape,
        "window should still be at or above the alerting level"
    );
    server.shutdown();

    // Maintenance pays the re-fits; each one lands in the journal with
    // a sequence number strictly after the alert that caused it, and
    // resets the node's accuracy window.
    let refitted = db.maintain().unwrap();
    assert!(refitted >= alerts.len(), "maintain missed alerted nodes");
    let events = journal().recent(usize::MAX);
    for &(alert_seq, node, _, _, _) in &alerts {
        let reest = events
            .iter()
            .find(|e| {
                matches!(
                    e.event,
                    Event::ReEstimation {
                        node: n,
                        outcome: "refit",
                        ..
                    } if n == node
                )
            })
            .unwrap_or_else(|| panic!("no ReEstimation event for node {node}"));
        assert!(
            reest.seq > alert_seq,
            "refit (seq {}) not after alert (seq {alert_seq})",
            reest.seq
        );
    }
    assert_eq!(
        monitor.smape(alert_node),
        Some(0.0),
        "refit must reset the node's accuracy window"
    );
    assert!(db.catalog().invalid_nodes().is_empty());

    // A healed model forecasts the new level: one more round must not
    // re-alert (the window restarts fresh below min_samples).
    let alerts_before = fdc_obs::counter(fdc_obs::names::F2DB_DRIFT_ALERTS).get();
    for &b in &base {
        db.insert_value(b, 1.0e6).unwrap();
    }
    assert_eq!(
        fdc_obs::counter(fdc_obs::names::F2DB_DRIFT_ALERTS).get(),
        alerts_before,
        "fresh window re-alerted immediately after refit"
    );
}
