//! Randomized property tests of the catalog codec and the SQL parser,
//! driven by the deterministic workspace RNG.

use fdc_cube::{Configuration, ConfiguredModel, CubeSplit, Dataset, NodeId};
use fdc_datagen::{generate_cube, GenSpec};
use fdc_f2db::codec::{Decoder, Encoder};
use fdc_f2db::parser::{parse_horizon, parse_query};
use fdc_f2db::query::{HorizonSpec, Statement};
use fdc_f2db::{Catalog, MaintenancePolicy};
use fdc_forecast::{FitOptions, ModelSpec, ModelState, SeasonalKind};
use fdc_rng::Rng;

fn random_model_state(rng: &mut Rng) -> ModelState {
    let spec = match rng.usize_below(5) {
        0 => ModelSpec::Ses,
        1 => ModelSpec::Holt,
        2 => ModelSpec::HoltWinters {
            period: 2 + rng.usize_below(22),
            seasonal: if rng.bool() {
                SeasonalKind::Additive
            } else {
                SeasonalKind::Multiplicative
            },
        },
        3 => ModelSpec::Arima {
            p: rng.usize_below(3),
            d: rng.usize_below(2),
            q: rng.usize_below(3),
        },
        _ => ModelSpec::Sarima {
            order: (rng.usize_below(2), rng.usize_below(2), rng.usize_below(2)),
            seasonal: (rng.usize_below(2), rng.usize_below(2), rng.usize_below(2)),
            period: 2 + rng.usize_below(11),
        },
    };
    let params: Vec<f64> = (0..rng.usize_below(8))
        .map(|_| rng.f64_range(-1e6, 1e6))
        .collect();
    let state: Vec<f64> = (0..rng.usize_below(32))
        .map(|_| rng.f64_range(-1e6, 1e6))
        .collect();
    ModelState {
        spec,
        params,
        state,
        observations: rng.usize_below(100_000),
    }
}

/// Arbitrary model states survive the binary codec bit-exactly.
#[test]
fn model_state_codec_round_trip() {
    let mut rng = Rng::seed_from_u64(0xc0dec1);
    for case in 0..128 {
        let states: Vec<ModelState> = (0..1 + rng.usize_below(7))
            .map(|_| random_model_state(&mut rng))
            .collect();
        let mut e = Encoder::with_header();
        for s in &states {
            e.put_model_state(s);
        }
        let bytes = e.finish();
        let mut d = Decoder::with_header(&bytes).unwrap();
        for s in &states {
            assert_eq!(&d.get_model_state().unwrap(), s, "case {case}");
        }
        assert!(d.is_empty());
    }
}

/// A random small cube with a random configuration loaded into a catalog,
/// randomly invalidated and advanced so invalid flags, rolling errors,
/// epochs and the advance counter all carry arbitrary values.
fn random_catalog(rng: &mut Rng) -> (Dataset, Catalog, Vec<NodeId>) {
    let base = 2 + rng.usize_below(7);
    let length = 16 + rng.usize_below(17);
    let mut ds = generate_cube(&GenSpec::new(base, length, rng.next_u64())).dataset;
    let split = CubeSplit::new(&ds, 0.8);
    let fit = FitOptions::default();
    let mut cfg = Configuration::new(ds.node_count());
    // A model at the top plus a random subset of further nodes.
    let mut model_nodes = vec![ds.graph().top_node()];
    for v in 0..ds.node_count() {
        if v != ds.graph().top_node() && rng.usize_below(4) == 0 {
            model_nodes.push(v);
        }
    }
    for &v in &model_nodes {
        let spec = if rng.bool() {
            ModelSpec::Ses
        } else {
            ModelSpec::Holt
        };
        let model = ConfiguredModel::fit(&split, v, &spec, &fit).expect("short fits succeed");
        cfg.insert_model(v, model);
    }
    let all: Vec<NodeId> = (0..ds.node_count()).collect();
    cfg.recompute_nodes(&ds, &split, &all);
    let catalog = Catalog::from_configuration(&ds, &cfg, &fit).expect("catalog loads");

    // Random time advances stamp rolling errors, weights and the advance
    // counter; a threshold policy flips some invalid flags along the way.
    let policy = MaintenancePolicy::ThresholdBased {
        smape_threshold: 0.05,
    };
    for _ in 0..rng.usize_below(4) {
        let batch: Vec<(NodeId, f64)> = ds
            .graph()
            .base_nodes()
            .iter()
            .map(|&b| (b, rng.f64_range(0.1, 1e4)))
            .collect();
        ds.advance_time(&batch).unwrap();
        catalog.advance_time(&ds, ds.series_len() - 1, &policy);
    }
    // Plus explicit random invalidations.
    for &v in &model_nodes {
        if rng.bool() {
            catalog.invalidate(v);
        }
    }
    (ds, catalog, model_nodes)
}

/// encode → decode → encode is byte-stable for arbitrary catalogs, for
/// every shard layout: the canonical node-order encoding makes the bytes
/// independent of how the shards slice the node space.
#[test]
fn catalog_codec_round_trip_is_byte_stable_across_shards() {
    let mut rng = Rng::seed_from_u64(0xc0dec6);
    for case in 0..12 {
        let (_, catalog, _) = random_catalog(&mut rng);
        let bytes = catalog.encode();
        for shards in [1, 2 + rng.usize_below(14), 64] {
            let decoded = Catalog::decode_sharded(&bytes, shards)
                .unwrap_or_else(|e| panic!("case {case}, {shards} shards: {e}"));
            assert_eq!(decoded.shard_count(), shards);
            assert_eq!(
                decoded.encode(),
                bytes,
                "case {case}: re-encode with {shards} shards changed bytes"
            );
        }
        // Resharding an in-memory catalog is also byte-invisible.
        let resharded = Catalog::decode(&bytes)
            .unwrap()
            .reshard(1 + rng.usize_below(32));
        assert_eq!(
            resharded.encode(),
            bytes,
            "case {case}: reshard changed bytes"
        );
    }
}

/// Decoded catalogs serve the same forecasts and maintenance state as the
/// original, whatever the shard count.
#[test]
fn decoded_catalog_preserves_forecasts_and_state() {
    let mut rng = Rng::seed_from_u64(0xc0dec7);
    for case in 0..8 {
        let (ds, catalog, model_nodes) = random_catalog(&mut rng);
        let bytes = catalog.encode();
        let shards = 1 + rng.usize_below(16);
        let decoded = Catalog::decode_sharded(&bytes, shards).unwrap();
        assert_eq!(decoded.node_count(), catalog.node_count(), "case {case}");
        assert_eq!(decoded.model_count(), catalog.model_count(), "case {case}");
        for v in 0..ds.node_count() {
            assert_eq!(decoded.entry(v), catalog.entry(v), "case {case} node {v}");
            assert_eq!(
                decoded.forecast(v, 3),
                catalog.forecast(v, 3),
                "case {case} node {v}"
            );
        }
        for &v in &model_nodes {
            assert_eq!(
                decoded.is_invalid(v),
                catalog.is_invalid(v),
                "case {case} node {v}"
            );
            assert_eq!(
                decoded.rolling_error(v),
                catalog.rolling_error(v),
                "case {case} node {v}"
            );
            assert_eq!(
                decoded.epoch(v),
                catalog.epoch(v),
                "case {case} node {v}: epoch lost across persistence"
            );
        }
    }
}

/// Truncating an encoded stream anywhere never panics — it errors.
#[test]
fn truncated_streams_error_gracefully() {
    let mut rng = Rng::seed_from_u64(0xc0dec2);
    for _ in 0..128 {
        let state = random_model_state(&mut rng);
        let mut e = Encoder::with_header();
        e.put_model_state(&state);
        let bytes = e.finish();
        let cut = rng.usize_below(64).min(bytes.len().saturating_sub(1));
        match Decoder::with_header(&bytes[..cut]) {
            Err(_) => {}
            Ok(mut d) => {
                // Must not panic; may error or (for cuts beyond the state)
                // succeed.
                let _ = d.get_model_state();
            }
        }
    }
}

/// Generated forecast queries parse to the expected structure.
#[test]
fn generated_queries_parse() {
    let mut rng = Rng::seed_from_u64(0xc0dec3);
    for case in 0..128 {
        let ndims = rng.usize_below(4);
        let dims: Vec<(String, String)> = (0..ndims)
            .map(|i| {
                let dlen = 1 + rng.usize_below(8);
                let d: String = (0..dlen)
                    .map(|_| (b'a' + rng.usize_below(26) as u8) as char)
                    .collect();
                let vlen = 1 + rng.usize_below(8);
                let v: String = (0..vlen)
                    .map(|_| {
                        const ALNUM: &[u8] =
                            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
                        ALNUM[rng.usize_below(ALNUM.len())] as char
                    })
                    .collect();
                // Distinct dimension names: prefix with a per-index letter.
                (format!("{}{d}", (b'a' + i as u8) as char), v)
            })
            .collect();
        let n = 1 + rng.usize_below(49);
        let mut sql = String::from("SELECT time, SUM(m) FROM facts");
        for (i, (d, v)) in dims.iter().enumerate() {
            sql.push_str(if i == 0 { " WHERE " } else { " AND " });
            sql.push_str(&format!("{d} = '{v}'"));
        }
        sql.push_str(&format!(" AS OF now() + '{n} steps'"));
        match parse_query(&sql).unwrap() {
            Statement::Forecast(q) => {
                assert_eq!(q.predicates.len(), dims.len(), "case {case}: {sql}");
                assert_eq!(q.horizon, HorizonSpec::Steps(n));
            }
            other => panic!("case {case}: unexpected {other:?}"),
        }
    }
}

/// Horizon strings round-trip through formatting for all units.
#[test]
fn horizon_parser_accepts_all_units() {
    let mut rng = Rng::seed_from_u64(0xc0dec4);
    for _ in 0..64 {
        let n = 1 + rng.usize_below(999);
        for unit in ["hour", "day", "week", "month", "quarter", "year", "step"] {
            let plural = format!("{n} {unit}s");
            let parsed = parse_horizon(&plural).unwrap();
            match parsed {
                HorizonSpec::Steps(k) => assert_eq!(k, n),
                HorizonSpec::Units { n: k, .. } => assert_eq!(k, n),
            }
        }
    }
}

/// The parser never panics on arbitrary input.
#[test]
fn parser_total_on_arbitrary_input() {
    let mut rng = Rng::seed_from_u64(0xc0dec5);
    for _ in 0..256 {
        let len = rng.usize_below(200);
        let input: String = (0..len)
            .map(|_| {
                // Bias toward printable ASCII with occasional arbitrary
                // Unicode scalar values.
                if rng.usize_below(8) == 0 {
                    char::from_u32(rng.usize_below(0xD7FF) as u32).unwrap_or('?')
                } else {
                    (0x20 + rng.usize_below(0x5F) as u8) as char
                }
            })
            .collect();
        let _ = parse_query(&input);
    }
}
