//! Property-based tests of the catalog codec and the SQL parser.

use fdc_f2db::codec::{Decoder, Encoder};
use fdc_f2db::parser::{parse_horizon, parse_query};
use fdc_f2db::query::{HorizonSpec, Statement};
use fdc_forecast::{ModelSpec, ModelState, SeasonalKind};
use proptest::prelude::*;

fn model_state_strategy() -> impl Strategy<Value = ModelState> {
    let spec = prop_oneof![
        Just(ModelSpec::Ses),
        Just(ModelSpec::Holt),
        (2usize..24, prop_oneof![
            Just(SeasonalKind::Additive),
            Just(SeasonalKind::Multiplicative)
        ])
            .prop_map(|(period, seasonal)| ModelSpec::HoltWinters { period, seasonal }),
        (0usize..3, 0usize..2, 0usize..3)
            .prop_map(|(p, d, q)| ModelSpec::Arima { p, d, q }),
        ((0usize..2, 0usize..2, 0usize..2), (0usize..2, 0usize..2, 0usize..2), 2usize..13)
            .prop_map(|(order, seasonal, period)| ModelSpec::Sarima { order, seasonal, period }),
    ];
    (
        spec,
        proptest::collection::vec(-1e6f64..1e6, 0..8),
        proptest::collection::vec(-1e6f64..1e6, 0..32),
        0usize..100_000,
    )
        .prop_map(|(spec, params, state, observations)| ModelState {
            spec,
            params,
            state,
            observations,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary model states survive the binary codec bit-exactly.
    #[test]
    fn model_state_codec_round_trip(states in proptest::collection::vec(model_state_strategy(), 1..8)) {
        let mut e = Encoder::with_header();
        for s in &states {
            e.put_model_state(s);
        }
        let bytes = e.finish();
        let mut d = Decoder::with_header(&bytes).unwrap();
        for s in &states {
            prop_assert_eq!(&d.get_model_state().unwrap(), s);
        }
        prop_assert!(d.is_empty());
    }

    /// Truncating an encoded stream anywhere never panics — it errors.
    #[test]
    fn truncated_streams_error_gracefully(
        state in model_state_strategy(),
        cut in 0usize..64,
    ) {
        let mut e = Encoder::with_header();
        e.put_model_state(&state);
        let bytes = e.finish();
        let cut = cut.min(bytes.len().saturating_sub(1));
        match Decoder::with_header(&bytes[..cut]) {
            Err(_) => {}
            Ok(mut d) => {
                // Must not panic; may error or (for cuts beyond the state)
                // succeed.
                let _ = d.get_model_state();
            }
        }
    }

    /// Generated forecast queries parse to the expected structure.
    #[test]
    fn generated_queries_parse(
        dims in proptest::collection::vec(("[a-z]{1,8}", "[A-Za-z0-9]{1,8}"), 0..4),
        n in 1usize..50,
    ) {
        let mut sql = String::from("SELECT time, SUM(m) FROM facts");
        for (i, (d, v)) in dims.iter().enumerate() {
            sql.push_str(if i == 0 { " WHERE " } else { " AND " });
            sql.push_str(&format!("{d} = '{v}'"));
        }
        sql.push_str(&format!(" AS OF now() + '{n} steps'"));
        match parse_query(&sql).unwrap() {
            Statement::Forecast(q) => {
                prop_assert_eq!(q.predicates.len(), dims.len());
                prop_assert_eq!(q.horizon, HorizonSpec::Steps(n));
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Horizon strings round-trip through formatting for all units.
    #[test]
    fn horizon_parser_accepts_all_units(n in 1usize..1000) {
        for unit in ["hour", "day", "week", "month", "quarter", "year", "step"] {
            let plural = format!("{n} {unit}s");
            let parsed = parse_horizon(&plural).unwrap();
            match parsed {
                HorizonSpec::Steps(k) => prop_assert_eq!(k, n),
                HorizonSpec::Units { n: k, .. } => prop_assert_eq!(k, n),
            }
        }
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_arbitrary_input(input in ".{0,200}") {
        let _ = parse_query(&input);
    }
}
