//! Integration tests of `EXPLAIN ANALYZE`: the executed plan must carry
//! per-node wall-clock timings, and a query following an invalidating
//! insert round must report the lazily re-estimated source models.

use fdc_core::{Advisor, AdvisorOptions};
use fdc_datagen::tourism_proxy;
use fdc_f2db::{F2db, F2dbError, MaintenancePolicy, SourceModelState};

fn small_db() -> F2db {
    let ds = tourism_proxy(1);
    let outcome = Advisor::new(
        &ds,
        AdvisorOptions {
            parallelism: Some(2),
            ..AdvisorOptions::default()
        },
    )
    .unwrap()
    .run();
    F2db::load(ds, &outcome.configuration).unwrap()
}

const QUERY: &str =
    "SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '4 quarters'";

#[test]
fn explain_analyze_reports_per_node_timings_and_values() {
    let db = small_db();
    let report = db
        .explain_analyze(&format!("EXPLAIN ANALYZE {QUERY}"))
        .unwrap();
    assert!(!report.rows.is_empty());
    let total = report.total_elapsed.expect("analyzed plan has a total");
    assert!(total.as_nanos() > 0);
    for row in &report.rows {
        let analysis = row.analysis.as_ref().expect("every row is analyzed");
        assert_eq!(analysis.values.len(), report.horizon);
        assert!(analysis.values.iter().all(|v| v.is_finite()));
        assert_eq!(analysis.source_states.len(), row.sources.len());
        assert!(analysis.elapsed <= total);
    }
    let rendered = format!("{report}");
    assert!(rendered.contains("actual time"), "{rendered}");
    assert!(rendered.contains("Execution time"), "{rendered}");
}

#[test]
fn explain_analyze_accepts_query_without_explain_prefix() {
    let db = small_db();
    let report = db.explain_analyze(QUERY).unwrap();
    assert!(report.rows.iter().all(|r| r.analysis.is_some()));
}

#[test]
fn fresh_catalog_reports_all_sources_cached() {
    let db = small_db();
    let report = db.explain_analyze(QUERY).unwrap();
    for row in &report.rows {
        let analysis = row.analysis.as_ref().unwrap();
        assert!(analysis
            .source_states
            .iter()
            .all(|s| *s == SourceModelState::Cached));
    }
}

#[test]
fn query_after_insert_reports_reestimated_models() {
    let db = small_db().with_policy(MaintenancePolicy::TimeBased { every: 1 });
    // A full insert round advances time; the time-based policy then
    // invalidates every model, so the next query must pay lazy
    // re-estimation and say so.
    let base: Vec<usize> = db.dataset().graph().base_nodes().to_vec();
    for &b in &base {
        db.insert_value(b, 250.0).unwrap();
    }
    assert_eq!(db.stats().time_advances, 1);
    let reest_before = db.stats().reestimations;

    let report = db.explain_analyze(QUERY).unwrap();
    let reestimated: usize = report
        .rows
        .iter()
        .flat_map(|r| r.analysis.as_ref().unwrap().source_states.iter())
        .filter(|s| **s == SourceModelState::Reestimated)
        .count();
    assert!(
        reestimated > 0,
        "expected at least one re-estimated source model"
    );
    assert!(db.stats().reestimations > reest_before);
    let rendered = format!("{report}");
    assert!(rendered.contains("re-estimated"), "{rendered}");

    // The very next analyzed query finds everything cached again.
    let report2 = db.explain_analyze(QUERY).unwrap();
    for row in &report2.rows {
        assert!(row
            .analysis
            .as_ref()
            .unwrap()
            .source_states
            .iter()
            .all(|s| *s == SourceModelState::Cached));
    }
}

#[test]
fn plain_explain_does_not_execute() {
    let db = small_db();
    let report = db.explain(&format!("EXPLAIN {QUERY}")).unwrap();
    assert!(report.rows.iter().all(|r| r.analysis.is_none()));
    assert!(report.total_elapsed.is_none());
    // EXPLAIN ANALYZE via the read-only entry point is a semantic error
    // pointing at explain_analyze.
    let err = db.explain(&format!("EXPLAIN ANALYZE {QUERY}")).unwrap_err();
    assert!(matches!(err, F2dbError::Semantic(_)));
    assert!(err.to_string().contains("explain_analyze"), "{err}");
}

#[test]
fn analyzed_queries_record_latency_metrics() {
    let db = small_db();
    db.explain_analyze(QUERY).unwrap();
    let snap = fdc_obs::snapshot();
    let (_, hist) = snap
        .histograms
        .iter()
        .find(|(name, _)| name == fdc_obs::names::F2DB_QUERY_NS)
        .expect("query latency histogram exists");
    assert!(hist.count >= 1);
    assert!(hist.p50 > 0);
}
