//! Snapshot test for the `EXPLAIN ANALYZE` rendering on the paper's
//! running example (Fig. 1/4: three cities rolling up into one region).
//!
//! Wall-clock fields vary run to run, so the snapshot uses
//! [`ExplainReport::to_masked_string`], which replaces them with
//! `<masked>`; everything else — plan shape, scheme kinds, weights,
//! maintenance states, forecast values — is deterministic.

use fdc_cube::{Configuration, ConfiguredModel, Coord, CubeSplit, Dataset, Dimension, Schema};
use fdc_f2db::{F2db, MaintenancePolicy};
use fdc_forecast::{FitOptions, Granularity, ModelSpec, TimeSeries};

/// The running example: one `city` dimension with C1/C2/C3; the
/// all-star node is the region. 40 quarterly steps of clean linear
/// trends (C1 trends down, the others up). The configuration is the
/// paper\'s Fig. 4 outcome, built by hand — a model at the region and
/// one at the down-trending C1 — so the fixture is fully deterministic
/// (the advisor\'s cost-aware objective measures wall-clock model
/// creation time, which would make the kept model set timing-dependent).
fn fig4_db() -> F2db {
    let schema = Schema::flat(vec![Dimension::new(
        "city",
        vec!["C1".into(), "C2".into(), "C3".into()],
    )])
    .unwrap();
    let series = |f: &dyn Fn(usize) -> f64| -> TimeSeries {
        TimeSeries::new(
            (0..40).map(|t| f(t).max(0.1)).collect(),
            Granularity::Quarterly,
        )
    };
    let base = vec![
        (Coord::new(vec![0]), series(&|t| 200.0 - 3.0 * t as f64)),
        (Coord::new(vec![1]), series(&|t| 40.0 + 0.5 * t as f64)),
        (Coord::new(vec![2]), series(&|t| 80.0 + 1.0 * t as f64)),
    ];
    let ds = Dataset::from_base(schema, base).unwrap();
    let split = CubeSplit::new(&ds, 0.8);
    let fit = FitOptions::default();
    let mut cfg = Configuration::new(ds.node_count());
    let top = ds.graph().top_node();
    let c1 = ds.graph().node(&Coord::new(vec![0])).unwrap();
    for v in [top, c1] {
        cfg.insert_model(
            v,
            ConfiguredModel::fit(&split, v, &ModelSpec::Holt, &fit).unwrap(),
        );
    }
    let all: Vec<usize> = (0..ds.node_count()).collect();
    cfg.recompute_nodes(&ds, &split, &all);
    F2db::load(ds, &cfg).unwrap()
}

const QUERY: &str =
    "SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '2 quarters'";

const CITY_QUERY: &str =
    "SELECT time, SUM(visitors) FROM facts WHERE city = 'C2' GROUP BY time AS OF now() + '2 quarters'";

#[test]
fn masked_explain_analyze_matches_snapshot() {
    let db = fig4_db();
    let mut rendered = String::new();
    for q in [QUERY, CITY_QUERY] {
        let report = db.explain_analyze(&format!("EXPLAIN ANALYZE {q}")).unwrap();
        rendered.push_str(&report.to_masked_string());
    }
    let expected = "\
Forecast Plan (horizon: 2 steps, aggregate: Sum)
  -> node [*] via direct (k = 1.000000)  (actual time: <masked>)
       model @ [*]  (cached)
       values: [260.000, 258.500]
Execution time: <masked>
Forecast Plan (horizon: 2 steps, aggregate: Sum)
  -> node [C2] via disaggregation (k = 0.171109)  (actual time: <masked>)
       model @ [*]  (cached)
       values: [44.488, 44.232]
Execution time: <masked>
";
    assert_eq!(rendered, expected, "EXPLAIN ANALYZE snapshot drifted");
}

#[test]
fn masked_rendering_is_stable_after_maintenance_round() {
    // The plan (and thus the masked snapshot) must not depend on when
    // maintenance last ran: a full insert round plus lazy re-estimation
    // returns the catalog to an all-valid state with identical shape.
    let db = fig4_db().with_policy(MaintenancePolicy::TimeBased { every: 1 });
    let before = db
        .explain_analyze(&format!("EXPLAIN ANALYZE {QUERY}"))
        .unwrap();
    let base: Vec<usize> = db.dataset().graph().base_nodes().to_vec();
    for &b in &base {
        db.insert_value(b, 100.0).unwrap();
    }
    db.maintain().unwrap();
    let after = db
        .explain_analyze(&format!("EXPLAIN ANALYZE {QUERY}"))
        .unwrap();
    assert_eq!(before.rows.len(), after.rows.len());
    for (b, a) in before.rows.iter().zip(&after.rows) {
        assert_eq!(b.label, a.label);
        assert_eq!(b.scheme_kind, a.scheme_kind);
    }
}
