//! Deterministic concurrency stress suite for the sharded F²DB engine.
//!
//! A scripted schedule of phases — reader bursts, batched insert rounds,
//! maintenance sweeps — runs twice over the same seeded cube: once with
//! many threads against the sharded engine, once single-threaded as the
//! serial reference. Phases are separated by thread joins, so the two
//! runs see the same sequence of *states*; within a phase the threads
//! interleave freely.
//!
//! Invariants asserted after every run (see DESIGN.md for the
//! equivalence argument):
//!
//! 1. Every forecast produced by the concurrent run is **byte-identical**
//!    (bit-for-bit, via [`QueryResult::fingerprint`]) to the serial run's
//!    answer for the same query-log entry.
//! 2. No model is re-estimated twice within one invalidation epoch: the
//!    concurrent run's re-estimation count equals the serial run's, and
//!    every model's final epoch matches.
//! 3. `MaintenanceStats` counters are consistent with the schedule
//!    (exact query/insert/advance/update/invalidation counts).
//!
//! Everything is std-only and seeded through `fdc-rng`; the three seeds
//! here are the ones CI runs in release mode.

use fdc_cube::{NodeId, TimeSeriesGraph, STAR};
use fdc_datagen::tourism_proxy;
use fdc_f2db::{F2db, MaintenancePolicy, QueryResult};
use fdc_rng::Rng;
use std::sync::Mutex;

/// One phase of the scripted schedule. Phases are homogeneous on
/// purpose: within a phase all threads run the same kind of operation,
/// which is what makes any interleaving equivalent to the serial order.
#[derive(Debug, Clone)]
enum Phase {
    /// `queries` pre-generated SQL strings fanned out over `threads`
    /// reader threads (query `i` goes to thread `i % threads`).
    Queries { sql: Vec<String>, threads: usize },
    /// One batched insert round: a new value for every base series,
    /// partitioned over `threads` writer threads; the last insert
    /// triggers the time advance.
    Inserts {
        values: Vec<(NodeId, f64)>,
        threads: usize,
    },
    /// `threads` concurrent maintenance sweeps (`F2db::maintain`).
    Maintain { threads: usize },
}

/// Renders the forecast query addressing `node`: one equality predicate
/// per concrete dimension, `GROUP BY time`, seeded horizon.
fn sql_for_node(graph: &TimeSeriesGraph, node: NodeId, horizon: usize) -> String {
    let schema = graph.schema();
    let coord = graph.coord(node);
    let mut predicates = Vec::new();
    for (d, &v) in coord.values().iter().enumerate() {
        if v != STAR {
            predicates.push(format!(
                "{} = '{}'",
                schema.dimensions()[d].name(),
                schema.dimensions()[d].values()[v as usize]
            ));
        }
    }
    let where_clause = if predicates.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", predicates.join(" AND "))
    };
    format!(
        "SELECT time, SUM(v) FROM facts{where_clause} GROUP BY time AS OF now() + '{horizon} steps'"
    )
}

/// Builds the scripted schedule for a seed: alternating query bursts,
/// insert rounds and maintenance sweeps, all pre-generated so the
/// concurrent run and the serial replay execute the identical log.
fn build_schedule(seed: u64, graph: &TimeSeriesGraph) -> Vec<Phase> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut insert_rng = rng.fork(1);
    let mut schedule = Vec::new();
    let rounds = 3 + rng.usize_below(2);
    for _ in 0..rounds {
        let count = 24 + rng.usize_below(17);
        let sql = (0..count)
            .map(|_| {
                let node = rng.usize_below(graph.node_count());
                let horizon = 1 + rng.usize_below(4);
                sql_for_node(graph, node, horizon)
            })
            .collect();
        schedule.push(Phase::Queries {
            sql,
            threads: 2 + rng.usize_below(7),
        });
        let values = graph
            .base_nodes()
            .iter()
            .map(|&b| (b, insert_rng.f64_range(10.0, 500.0)))
            .collect();
        schedule.push(Phase::Inserts { values, threads: 4 });
        if rng.bool() {
            schedule.push(Phase::Maintain {
                threads: 1 + rng.usize_below(4),
            });
        }
    }
    // Final query burst so lazily-invalidated models get referenced.
    let sql = (0..16)
        .map(|_| {
            let node = rng.usize_below(graph.node_count());
            sql_for_node(graph, node, 1 + rng.usize_below(4))
        })
        .collect();
    schedule.push(Phase::Queries { sql, threads: 8 });
    schedule
}

/// Two engines over the same seeded cube and the same advised
/// configuration. The advisor runs ONCE per seed: its cost-aware
/// objective measures wall-clock model-creation time, so two separate
/// runs may keep slightly different model sets — the suite compares
/// engine behavior, not advisor reproducibility.
fn stress_dbs(seed: u64) -> (F2db, F2db) {
    let ds = tourism_proxy(seed);
    let outcome = fdc_core::Advisor::new(
        &ds,
        fdc_core::AdvisorOptions {
            parallelism: Some(2),
            ..fdc_core::AdvisorOptions::default()
        },
    )
    .unwrap()
    .run();
    let mk = |ds: &fdc_cube::Dataset| {
        F2db::load(ds.clone(), &outcome.configuration)
            .unwrap()
            .with_policy(MaintenancePolicy::TimeBased { every: 1 })
    };
    (mk(&ds), mk(&ds))
}

/// Executes the schedule with real thread fan-out. Returns the
/// fingerprint of every query result, indexed by query-log position.
fn run_concurrent(db: &F2db, schedule: &[Phase]) -> Vec<u64> {
    let mut fingerprints = Vec::new();
    for phase in schedule {
        match phase {
            Phase::Queries { sql, threads } => {
                let slots = Mutex::new(vec![0u64; sql.len()]);
                std::thread::scope(|scope| {
                    for t in 0..*threads {
                        let slots = &slots;
                        scope.spawn(move || {
                            for (i, q) in sql.iter().enumerate() {
                                if i % threads == t {
                                    let result: QueryResult = db.query(q).expect("query runs");
                                    slots.lock().unwrap()[i] = result.fingerprint();
                                }
                            }
                        });
                    }
                });
                fingerprints.extend(slots.into_inner().unwrap());
            }
            Phase::Inserts { values, threads } => {
                std::thread::scope(|scope| {
                    for t in 0..*threads {
                        scope.spawn(move || {
                            for (i, &(node, v)) in values.iter().enumerate() {
                                if i % threads == t {
                                    db.insert_value(node, v).expect("insert runs");
                                }
                            }
                        });
                    }
                });
            }
            Phase::Maintain { threads } => {
                std::thread::scope(|scope| {
                    for _ in 0..*threads {
                        scope.spawn(|| {
                            db.maintain().expect("maintenance runs");
                        });
                    }
                });
            }
        }
    }
    fingerprints
}

/// Executes the same schedule on one thread — the serial reference.
fn run_serial(db: &F2db, schedule: &[Phase]) -> Vec<u64> {
    let mut fingerprints = Vec::new();
    for phase in schedule {
        match phase {
            Phase::Queries { sql, .. } => {
                for q in sql {
                    fingerprints.push(db.query(q).expect("query runs").fingerprint());
                }
            }
            Phase::Inserts { values, .. } => {
                for &(node, v) in values {
                    db.insert_value(node, v).expect("insert runs");
                }
            }
            Phase::Maintain { threads } => {
                // The concurrent run issues `threads` maintain() calls;
                // replay the same number (later calls find nothing to do).
                for _ in 0..*threads {
                    db.maintain().expect("maintenance runs");
                }
            }
        }
    }
    fingerprints
}

fn run_stress(seed: u64) {
    let (concurrent, serial) = stress_dbs(seed);
    let schedule = build_schedule(seed, &concurrent.dataset().graph().clone());

    let fp_concurrent = run_concurrent(&concurrent, &schedule);
    let fp_serial = run_serial(&serial, &schedule);

    // 1. Forecasts byte-identical per query-log entry.
    assert_eq!(fp_concurrent.len(), fp_serial.len());
    for (i, (c, s)) in fp_concurrent.iter().zip(&fp_serial).enumerate() {
        assert_eq!(c, s, "seed {seed:#x}: query {i} diverged from serial run");
    }

    // 2. One re-estimation per invalidation epoch: counts and per-model
    //    epochs must match the serial run exactly.
    let sc = concurrent.stats();
    let ss = serial.stats();
    assert_eq!(
        sc.reestimations, ss.reestimations,
        "seed {seed:#x}: single-flight dedup broke (a model was re-fit more than once per epoch)"
    );
    assert!(sc.reestimations <= sc.invalidations);
    let node_count = concurrent.dataset().node_count();
    for v in 0..node_count {
        assert_eq!(
            concurrent.catalog().epoch(v),
            serial.catalog().epoch(v),
            "seed {seed:#x}: node {v} epochs diverged"
        );
        assert_eq!(
            concurrent.catalog().is_invalid(v),
            serial.catalog().is_invalid(v),
            "seed {seed:#x}: node {v} validity diverged"
        );
    }

    // 3. Counters consistent with the schedule.
    let mut expect_queries = 0;
    let mut expect_inserts = 0;
    let mut expect_advances = 0;
    for phase in &schedule {
        match phase {
            Phase::Queries { sql, .. } => expect_queries += sql.len(),
            Phase::Inserts { values, .. } => {
                expect_inserts += values.len();
                expect_advances += 1;
            }
            Phase::Maintain { .. } => {}
        }
    }
    for (label, stats) in [("concurrent", &sc), ("serial", &ss)] {
        assert_eq!(stats.queries, expect_queries, "{label} seed {seed:#x}");
        assert_eq!(stats.inserts, expect_inserts, "{label} seed {seed:#x}");
        assert_eq!(
            stats.time_advances, expect_advances,
            "{label} seed {seed:#x}"
        );
        // TimeBased{every: 1} invalidates every model on every advance
        // (unless it is still invalid from the previous epoch).
        assert!(stats.invalidations <= expect_advances * concurrent.model_count());
        assert_eq!(
            stats.model_updates,
            expect_advances * concurrent.model_count(),
            "{label} seed {seed:#x}"
        );
    }
    assert_eq!(
        sc.counters(),
        ss.counters(),
        "seed {seed:#x}: stats diverged"
    );

    // The engines also end in the same persisted state.
    assert_eq!(
        concurrent.catalog().encode(),
        serial.catalog().encode(),
        "seed {seed:#x}: persisted catalogs diverged"
    );
}

#[test]
fn stress_seed_1_concurrent_matches_serial() {
    run_stress(0xF2DB_0001);
}

#[test]
fn stress_seed_2_concurrent_matches_serial() {
    run_stress(0xF2DB_0002);
}

#[test]
fn stress_seed_3_concurrent_matches_serial() {
    run_stress(0xF2DB_0003);
}

/// The export plane must be pure observation: running one stress seed
/// with the HTTP exporter live (and a scraper thread hammering
/// `/metrics` throughout) plus the journal sinking JSONL must leave the
/// byte-identical serial-equivalence intact. When
/// `FDC_STRESS_ARTIFACT_DIR` is set (as in CI), the final scrape and
/// the journal land there as build artifacts.
#[test]
fn stress_with_exporter_and_journal_is_byte_identical() {
    use std::io::{Read, Write};
    use std::sync::atomic::{AtomicBool, Ordering};

    fn scrape(addr: std::net::SocketAddr) -> String {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out.split_once("\r\n\r\n").expect("body").1.to_string()
    }

    let artifact_dir = std::env::var("FDC_STRESS_ARTIFACT_DIR")
        .ok()
        .filter(|d| !d.is_empty())
        .map(std::path::PathBuf::from);
    if let Some(dir) = &artifact_dir {
        std::fs::create_dir_all(dir).expect("artifact dir");
        fdc_obs::journal()
            .set_jsonl_sink(&dir.join("stress-journal.jsonl"))
            .expect("journal sink");
    }

    let server = fdc_obs::ObsServer::bind(0).expect("exporter binds");
    let addr = server.addr();
    let stop = AtomicBool::new(false);
    let body = std::thread::scope(|scope| {
        // Scrape continuously while the stress schedule runs: the
        // exporter reads the registry and journal concurrently with the
        // engine writing them.
        let scraper = scope.spawn(|| {
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let _ = scrape(addr);
                scrapes += 1;
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            scrapes
        });
        run_stress(0xF2DB_0001);
        stop.store(true, Ordering::Relaxed);
        assert!(scraper.join().unwrap() >= 1, "scraper never ran");
        scrape(addr)
    });

    // The final scrape reflects the run just executed.
    assert!(body.contains("# TYPE f2db_queries counter"), "{body}");
    assert!(body.contains("f2db_models_reestimated"), "{body}");
    assert!(body.contains("obs_journal_events"), "{body}");
    assert!(fdc_obs::journal().total() > 0);

    if let Some(dir) = &artifact_dir {
        std::fs::write(dir.join("stress-metrics.prom"), &body).expect("scrape artifact");
        fdc_obs::journal().close_sink();
        let journal = std::fs::read_to_string(dir.join("stress-journal.jsonl")).unwrap();
        assert!(journal.lines().count() > 0, "journal artifact is empty");
    }
    server.shutdown();
}

/// A single-shard engine must behave identically too (the shard count is
/// an operational knob, not a semantic one).
#[test]
fn stress_single_shard_layout_matches_serial() {
    let seed = 0xF2DB_0001;
    let (concurrent, serial) = stress_dbs(seed);
    let concurrent = concurrent.with_shards(1);
    let schedule = build_schedule(seed, &concurrent.dataset().graph().clone());
    let fp_concurrent = run_concurrent(&concurrent, &schedule);
    let fp_serial = run_serial(&serial, &schedule);
    assert_eq!(fp_concurrent, fp_serial);
    assert_eq!(concurrent.stats().counters(), serial.stats().counters());
}
