//! End-to-end durability: checkpoint container + WAL replay.
//!
//! These tests exercise the full `save_catalog` (checkpoint) /
//! `recover` cycle at the engine level: acked inserts survive a
//! simulated crash (dropping the engine without a save), replay is
//! byte-deterministic, checkpoints truncate segments, torn tails are
//! dropped cleanly and pre-watermark corruption is a hard error.

use fdc_core::{Advisor, AdvisorOptions};
use fdc_cube::NodeId;
use fdc_datagen::tourism_proxy;
use fdc_f2db::{F2db, F2dbError};
use fdc_wal::WalOptions;
use std::fs;
use std::path::PathBuf;

fn small_db() -> F2db {
    let ds = tourism_proxy(1);
    let outcome = Advisor::new(
        &ds,
        AdvisorOptions {
            parallelism: Some(2),
            ..AdvisorOptions::default()
        },
    )
    .unwrap()
    .run();
    F2db::load(ds, &outcome.configuration).unwrap()
}

struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "fdc_wal_recovery_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch { dir }
    }

    fn catalog(&self) -> PathBuf {
        self.dir.join("catalog.f2db")
    }

    fn wal_dir(&self) -> PathBuf {
        self.dir.join("wal")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

fn wal_opts() -> WalOptions {
    WalOptions::default()
}

#[test]
fn acked_inserts_survive_crash_without_save() {
    let s = Scratch::new("crash");
    let db = small_db();
    db.save_catalog(&s.catalog()).unwrap();
    let (db, rec) =
        F2db::recover(db.dataset().clone(), &s.catalog(), &s.wal_dir(), wal_opts()).unwrap();
    assert_eq!(rec.replayed_batches, 0);

    let base: Vec<NodeId> = db.dataset().graph().base_nodes().to_vec();
    let len_before = db.dataset().series_len();
    // Two full rounds plus a partial one, all acked.
    let mut rows: Vec<(NodeId, f64)> = Vec::new();
    for round in 0..2 {
        rows.extend(base.iter().map(|&b| (b, 10.0 + round as f64)));
    }
    rows.extend(base[..base.len() - 1].iter().map(|&b| (b, 99.0)));
    db.insert_batch(&rows).unwrap();
    assert_eq!(db.dataset().series_len(), len_before + 2);
    let pending_before = db.pending_rows();
    assert!(!pending_before.is_empty());
    let catalog_bytes_before = db.catalog().encode();

    // Crash: drop without saving. Everything past the checkpoint lives
    // only in the WAL.
    drop(db);

    let (recovered, rec) = F2db::recover(
        small_db().dataset().clone(),
        &s.catalog(),
        &s.wal_dir(),
        wal_opts(),
    )
    .unwrap();
    assert_eq!(rec.replayed_batches, 1);
    assert_eq!(rec.replayed_rows, rows.len() as u64);
    assert_eq!(rec.advances, 2);
    assert_eq!(recovered.dataset().series_len(), len_before + 2);
    assert_eq!(recovered.pending_rows(), pending_before);
    assert_eq!(recovered.catalog().encode(), catalog_bytes_before);
    // The recovered engine keeps serving.
    recovered
        .query("SELECT time, SUM(v) FROM facts GROUP BY time AS OF now() + '1 quarter'")
        .unwrap();
}

#[test]
fn recovery_is_byte_deterministic() {
    let s = Scratch::new("determinism");
    {
        let db = small_db();
        db.save_catalog(&s.catalog()).unwrap();
        let (db, _) =
            F2db::recover(db.dataset().clone(), &s.catalog(), &s.wal_dir(), wal_opts()).unwrap();
        let base: Vec<NodeId> = db.dataset().graph().base_nodes().to_vec();
        for round in 0..3 {
            let rows: Vec<(NodeId, f64)> = base.iter().map(|&b| (b, 5.0 * round as f64)).collect();
            db.insert_batch(&rows).unwrap();
        }
        db.insert_batch(&[(base[0], 42.0)]).unwrap();
        // Crash without checkpoint.
    }
    let recover_once = || {
        let (db, _) = F2db::recover(
            small_db().dataset().clone(),
            &s.catalog(),
            &s.wal_dir(),
            wal_opts(),
        )
        .unwrap();
        let series: Vec<Vec<f64>> = (0..db.dataset().node_count())
            .map(|n| db.dataset().series(n).values().to_vec())
            .collect();
        (db.catalog().encode(), db.pending_rows(), series)
    };
    let a = recover_once();
    let b = recover_once();
    assert_eq!(a.0, b.0, "catalog bytes differ between recoveries");
    assert_eq!(a.1, b.1, "pending rows differ between recoveries");
    assert_eq!(a.2, b.2, "series values differ between recoveries");
}

#[test]
fn checkpoint_truncates_wal_and_filters_replay() {
    let s = Scratch::new("truncate");
    let db = small_db();
    db.save_catalog(&s.catalog()).unwrap();
    // Small segments so truncation has files to reclaim.
    let opts = WalOptions {
        segment_bytes: 256,
        ..WalOptions::default()
    };
    let (db, _) = F2db::recover(
        db.dataset().clone(),
        &s.catalog(),
        &s.wal_dir(),
        opts.clone(),
    )
    .unwrap();
    let base: Vec<NodeId> = db.dataset().graph().base_nodes().to_vec();
    for round in 0..6 {
        let rows: Vec<(NodeId, f64)> = base.iter().map(|&b| (b, round as f64)).collect();
        db.insert_batch(&rows).unwrap();
    }
    let before = db.wal_stats().unwrap();
    assert!(before.segments > 1, "{before:?}");
    // Checkpoint: snapshot + truncate.
    db.save_catalog(&s.catalog()).unwrap();
    let after = db.wal_stats().unwrap();
    assert_eq!(after.checkpoint_seq, after.last_seq);
    assert!(after.segments < before.segments, "{before:?} -> {after:?}");
    let len_at_checkpoint = db.dataset().series_len();

    // Post-checkpoint writes replay; pre-checkpoint ones are filtered.
    db.insert_batch(&base.iter().map(|&b| (b, 77.0)).collect::<Vec<_>>())
        .unwrap();
    drop(db);
    let (recovered, rec) = F2db::recover(
        small_db().dataset().clone(),
        &s.catalog(),
        &s.wal_dir(),
        opts,
    )
    .unwrap();
    assert_eq!(rec.replayed_batches, 1);
    assert_eq!(rec.advances, 1);
    assert_eq!(recovered.dataset().series_len(), len_at_checkpoint + 1);
}

#[test]
fn torn_tail_drops_only_the_unsynced_suffix() {
    let s = Scratch::new("torn");
    let db = small_db();
    db.save_catalog(&s.catalog()).unwrap();
    let (db, _) =
        F2db::recover(db.dataset().clone(), &s.catalog(), &s.wal_dir(), wal_opts()).unwrap();
    let base: Vec<NodeId> = db.dataset().graph().base_nodes().to_vec();
    db.insert_batch(&base.iter().map(|&b| (b, 1.0)).collect::<Vec<_>>())
        .unwrap();
    let len_after_first = {
        let l = db.dataset().series_len();
        db.insert_batch(&[(base[0], 2.0)]).unwrap();
        l
    };
    drop(db);

    // Tear the tail: chop a few bytes off the last (only) segment, as a
    // crash mid-write would.
    let seg = fs::read_dir(s.wal_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .max()
        .unwrap();
    let len = fs::metadata(&seg).unwrap().len();
    let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);

    let (recovered, rec) = F2db::recover(
        small_db().dataset().clone(),
        &s.catalog(),
        &s.wal_dir(),
        wal_opts(),
    )
    .unwrap();
    // The torn second record is gone; the first (complete) one replays.
    assert!(rec.wal.truncated_bytes > 0);
    assert_eq!(rec.replayed_batches, 1);
    assert_eq!(recovered.dataset().series_len(), len_after_first);
    assert!(recovered.pending_rows().is_empty());
}

#[test]
fn corruption_before_watermark_is_hard_error() {
    let s = Scratch::new("corrupt");
    let db = small_db();
    db.save_catalog(&s.catalog()).unwrap();
    let (db, _) =
        F2db::recover(db.dataset().clone(), &s.catalog(), &s.wal_dir(), wal_opts()).unwrap();
    let base: Vec<NodeId> = db.dataset().graph().base_nodes().to_vec();
    db.insert_batch(&base.iter().map(|&b| (b, 3.0)).collect::<Vec<_>>())
        .unwrap();
    // Checkpoint marks the record durable, but leave the segment file
    // in place by writing MORE records after (segments holding any
    // post-watermark record are not truncated).
    db.save_catalog(&s.catalog()).unwrap();
    db.insert_batch(&[(base[0], 4.0)]).unwrap();
    drop(db);

    // Flip a byte inside the checkpointed (pre-watermark) record.
    let seg = fs::read_dir(s.wal_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .min()
        .unwrap();
    let mut bytes = fs::read(&seg).unwrap();
    // Past the 8-byte segment header and 16-byte frame header: payload
    // of the first (checkpointed) record.
    bytes[8 + 16 + 2] ^= 0xFF;
    fs::write(&seg, &bytes).unwrap();

    let err = match F2db::recover(
        small_db().dataset().clone(),
        &s.catalog(),
        &s.wal_dir(),
        wal_opts(),
    ) {
        Ok(_) => panic!("recovery of a corrupted pre-watermark record must fail"),
        Err(e) => e,
    };
    match err {
        F2dbError::Storage(msg) => {
            assert!(msg.contains("corrupt"), "{msg}");
            assert!(
                msg.contains("v1"),
                "error must carry the format version: {msg}"
            );
        }
        other => panic!("expected Storage, got {other:?}"),
    }
}

#[test]
fn checkpoints_racing_inserts_never_lose_acked_writes() {
    // Regression: `insert_value` drops the pending mutex before its
    // advance runs, so a checkpoint in that window used to record a
    // WAL position covering rows that were in neither the pending map
    // nor the dataset snapshot — truncation then destroyed the only
    // durable copy of acknowledged writes. `save_catalog` now takes
    // the advance lock too, waiting out any in-flight advance.
    let s = Scratch::new("cp_race");
    let db = small_db();
    db.save_catalog(&s.catalog()).unwrap();
    let (db, _) =
        F2db::recover(db.dataset().clone(), &s.catalog(), &s.wal_dir(), wal_opts()).unwrap();
    let db = std::sync::Arc::new(db);
    let base: Vec<NodeId> = db.dataset().graph().base_nodes().to_vec();
    let len_before = db.dataset().series_len();
    let rounds = 25usize;
    let writer = {
        let db = std::sync::Arc::clone(&db);
        let base = base.clone();
        std::thread::spawn(move || {
            for round in 0..rounds {
                for &b in &base {
                    db.insert_value(b, round as f64).unwrap();
                }
            }
        })
    };
    // Checkpoint continuously while inserts drain and advance; every
    // iteration is a fresh shot at the drain→advance window.
    let mut saves = 0;
    while !writer.is_finished() && saves < 100 {
        db.save_catalog(&s.catalog()).unwrap();
        saves += 1;
    }
    writer.join().unwrap();
    assert_eq!(db.dataset().series_len(), len_before + rounds);
    let series_before: Vec<Vec<f64>> = (0..db.dataset().node_count())
        .map(|n| db.dataset().series(n).values().to_vec())
        .collect();
    let catalog_bytes_before = db.catalog().encode();
    // Crash without a final save: everything past the last racing
    // checkpoint lives only in the WAL.
    drop(db);

    let (recovered, _) = F2db::recover(
        small_db().dataset().clone(),
        &s.catalog(),
        &s.wal_dir(),
        wal_opts(),
    )
    .unwrap();
    assert_eq!(recovered.dataset().series_len(), len_before + rounds);
    for (n, before) in series_before.iter().enumerate() {
        assert_eq!(
            recovered.dataset().series(n).values(),
            &before[..],
            "series {n} lost acked writes across checkpoint + recovery"
        );
    }
    assert_eq!(recovered.catalog().encode(), catalog_bytes_before);
    assert!(recovered.pending_rows().is_empty());
}

#[test]
fn legacy_plain_catalog_still_opens_and_upgrades() {
    let s = Scratch::new("legacy");
    let db = small_db();
    // A pre-WAL save: plain F2DB catalog format.
    db.save_catalog(&s.catalog()).unwrap();
    let bytes = fs::read(s.catalog()).unwrap();
    assert_eq!(&bytes[..4], b"F2DB");

    // Opens with no WAL attached, exactly as before.
    let reopened = F2db::open_catalog(db.dataset().clone(), &s.catalog()).unwrap();
    assert_eq!(reopened.model_count(), db.model_count());
    assert!(reopened.wal_stats().is_none());

    // Attaching a WAL upgrades: the next save writes a container.
    let (upgraded, rec) = reopened.attach_wal(&s.wal_dir(), wal_opts()).unwrap();
    assert_eq!(rec.replayed_batches, 0);
    upgraded.save_catalog(&s.catalog()).unwrap();
    let bytes = fs::read(s.catalog()).unwrap();
    assert_eq!(&bytes[..4], b"F2CK");
    drop(upgraded);
    let (recovered, _) =
        F2db::recover(db.dataset().clone(), &s.catalog(), &s.wal_dir(), wal_opts()).unwrap();
    assert_eq!(recovered.model_count(), db.model_count());
}

#[test]
fn stale_tmp_orphans_are_swept_on_open() {
    let s = Scratch::new("sweep");
    let db = small_db();
    db.save_catalog(&s.catalog()).unwrap();
    // An orphan from a dead process.
    let orphan = s.dir.join("catalog.f2db.tmp.1");
    fs::write(&orphan, b"interrupted save garbage").unwrap();
    let _ = F2db::open_catalog(db.dataset().clone(), &s.catalog()).unwrap();
    assert!(!orphan.exists(), "stale tmp must be swept on open");
}
