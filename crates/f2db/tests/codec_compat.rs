//! Backward compatibility of the catalog's on-disk format.
//!
//! VERSION 1 files (pre-invalidation-epoch) must keep loading: the bytes
//! here are hand-built to the exact v1 layout, so this test pins the
//! migration path independently of the current encoder. Unknown future
//! versions must fail with a clear, versioned error rather than a
//! truncation mess.

use fdc_f2db::codec::{MAGIC, MIN_VERSION, VERSION};
use fdc_f2db::{Catalog, F2dbError};

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Hand-built VERSION 1 catalog: one node with a direct scheme and one
/// invalid SES model — written exactly as the v1 encoder did, with *no*
/// per-model epoch field between `rolling_error` and the model state.
fn v1_fixture() -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(MAGIC);
    b.extend_from_slice(&1u16.to_le_bytes());
    put_u64(&mut b, 1); // node_count
    b.push(1); // node 0: entry present
    put_u64(&mut b, 1); // scheme_sources.len()
    put_u64(&mut b, 0); // source node 0 (direct scheme)
    put_f64(&mut b, 1.0); // weight
    put_u64(&mut b, 1); // model_count
    put_u64(&mut b, 0); // model at node 0
    b.push(1); // invalid = true
    put_f64(&mut b, 0.125); // rolling_error
    b.push(0); // model spec tag: SES
    put_u64(&mut b, 1); // params.len()
    put_f64(&mut b, 0.4); // alpha
    put_u64(&mut b, 1); // state.len()
    put_f64(&mut b, 42.0); // level
    put_u64(&mut b, 20); // observations
    put_u64(&mut b, 1); // history_sums.len()
    put_f64(&mut b, 840.0);
    put_u64(&mut b, 0); // advances
    b
}

#[test]
fn version_constants_cover_the_legacy_format() {
    assert_eq!(MIN_VERSION, 1);
    // The epoch field came with VERSION 2; a lower current version would
    // make the fixture below meaningless.
    const { assert!(VERSION >= 2) }
}

#[test]
fn v1_bytes_decode_with_epoch_migrated_to_zero() {
    let catalog = Catalog::decode(&v1_fixture()).expect("v1 catalog must keep loading");
    assert_eq!(catalog.node_count(), 1);
    assert_eq!(catalog.model_count(), 1);
    // The invalid flag and rolling error survive; the epoch (which v1
    // never stored) restarts at 0.
    assert!(catalog.is_invalid(0));
    assert_eq!(catalog.epoch(0), Some(0));
    // The model state itself is intact: SES forecasts its level.
    let forecast = catalog.forecast(0, 3).expect("node 0 has a scheme");
    assert_eq!(forecast, vec![42.0, 42.0, 42.0]);
}

#[test]
fn v1_decode_then_encode_upgrades_to_current_version() {
    let catalog = Catalog::decode(&v1_fixture()).unwrap();
    let upgraded = catalog.encode();
    assert_eq!(&upgraded[..4], MAGIC);
    assert_eq!(
        u16::from_le_bytes([upgraded[4], upgraded[5]]),
        VERSION,
        "re-encoding a migrated catalog writes the current version"
    );
    let reloaded = Catalog::decode(&upgraded).unwrap();
    assert!(reloaded.is_invalid(0));
    assert_eq!(reloaded.epoch(0), Some(0));
    assert_eq!(reloaded.forecast(0, 2), Some(vec![42.0, 42.0]));
}

#[test]
fn future_version_fails_with_clear_versioned_error() {
    let mut bytes = v1_fixture();
    bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
    let err = Catalog::decode(&bytes).unwrap_err();
    match &err {
        F2dbError::Storage(msg) => {
            assert!(
                msg.contains("unsupported catalog version 99"),
                "error must name the offending version: {msg}"
            );
            assert!(
                msg.contains(&format!("through {VERSION}")),
                "error must name the supported range: {msg}"
            );
        }
        other => panic!("expected a storage error, got {other:?}"),
    }
}

#[test]
fn v1_truncation_is_still_detected() {
    let bytes = v1_fixture();
    assert!(Catalog::decode(&bytes[..bytes.len() - 6]).is_err());
}
