//! Engine-level approximation guarantees: exact results stay
//! byte-identical when a plane is attached, opt-in queries carry CI
//! metadata, EXPLAIN annotates sampled nodes, the plane survives
//! persistence, and the advance path maintains sampled models.

use fdc_approx::plan_coverage;
use fdc_cube::{Configuration, ConfiguredModel, CubeSplit, Dataset, NodeId};
use fdc_datagen::{generate_cube, generate_highcard, GenSpec, HighCardSpec};
use fdc_f2db::{ApproxOptions, ApproxQuerySpec, CoverageOptions, F2db};
use fdc_forecast::{FitOptions, ModelSpec};

const Q: &str = "SELECT time, SUM(v) FROM facts GROUP BY time AS OF now() + '3 steps'";

fn highcard() -> Dataset {
    generate_highcard(&HighCardSpec {
        base_cells: 500,
        groups: 25,
        length: 16,
        ..HighCardSpec::new(500, 0xDB)
    })
    .dataset
}

fn approx_options() -> ApproxOptions {
    ApproxOptions {
        strata: 6,
        samples_per_stratum: 24,
        min_population: 100,
        spec: Some(ModelSpec::Ses),
        ..ApproxOptions::default()
    }
}

/// A configuration with a direct model at every aggregation node the
/// tests query exactly.
fn full_config(ds: &Dataset, nodes: &[NodeId]) -> Configuration {
    let split = CubeSplit::new(ds, 0.8);
    let fit = FitOptions::default();
    let mut cfg = Configuration::new(ds.node_count());
    for &v in nodes {
        let model = ConfiguredModel::fit(&split, v, &ModelSpec::Ses, &fit).unwrap();
        cfg.insert_model(v, model);
    }
    let all: Vec<NodeId> = (0..ds.node_count()).collect();
    cfg.recompute_nodes(ds, &split, &all);
    cfg
}

#[test]
fn exact_queries_are_byte_identical_with_a_plane_attached() {
    let make = || {
        let cube = generate_cube(&GenSpec::new(8, 36, 2));
        let top = cube.dataset.graph().top_node();
        let cfg = full_config(&cube.dataset, &[top]);
        (cube.dataset, cfg)
    };
    let (ds_a, cfg_a) = make();
    let (ds_b, cfg_b) = make();
    let vanilla = F2db::load(ds_a, &cfg_a).unwrap();
    let with_plane = F2db::load(ds_b, &cfg_b)
        .unwrap()
        .with_approx(ApproxOptions {
            min_population: 2,
            ..approx_options()
        })
        .unwrap();
    assert!(with_plane.approx_enabled());
    let q = "SELECT time, SUM(v) FROM facts GROUP BY time AS OF now() + '4 steps'";
    // No approx spec → the plane must be invisible, bit for bit.
    let a = vanilla.query(q).unwrap();
    let b = with_plane.query(q).unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert!(b.rows.iter().all(|r| r.approx.is_none()));
    // Even query_with(None) is the exact path.
    let c = with_plane.query_with(q, None).unwrap();
    assert_eq!(a.fingerprint(), c.fingerprint());
}

#[test]
fn opt_in_queries_carry_ci_metadata() {
    let ds = highcard();
    let empty = Configuration::new(ds.node_count());
    let db = F2db::load(ds, &empty)
        .unwrap()
        .with_approx(approx_options())
        .unwrap();
    let spec = ApproxQuerySpec::default();
    let res = db.query_with(Q, Some(&spec)).unwrap();
    assert_eq!(res.rows.len(), 1);
    let row = &res.rows[0];
    let ap = row.approx.as_ref().expect("top node answers approximately");
    assert_eq!(ap.population, 500);
    assert!(ap.sampled > 0 && ap.sampled < ap.population);
    assert_eq!(ap.ci_half.len(), 3);
    assert_eq!(row.values.len(), 3);
    assert!((ap.confidence - 0.95).abs() < 1e-12);
    assert!(row.values.iter().all(|&(_, v)| v.is_finite() && v > 0.0));
    assert!(ap.ci_half.iter().all(|&h| h.is_finite() && h >= 0.0));

    // A cell budget caps the evaluated sample.
    let budgeted = db
        .query_with(
            Q,
            Some(&ApproxQuerySpec {
                budget: Some(12),
                ..ApproxQuerySpec::default()
            }),
        )
        .unwrap();
    let bp = budgeted.rows[0].approx.as_ref().unwrap();
    assert!(bp.sampled < ap.sampled);
}

#[test]
fn avg_aggregate_divides_estimate_and_interval_by_population() {
    let ds = highcard();
    let empty = Configuration::new(ds.node_count());
    let db = F2db::load(ds, &empty)
        .unwrap()
        .with_approx(approx_options())
        .unwrap();
    let spec = ApproxQuerySpec::default();
    let sum = db.query_with(Q, Some(&spec)).unwrap();
    let avg_q = "SELECT time, AVG(v) FROM facts GROUP BY time AS OF now() + '3 steps'";
    let avg = db.query_with(avg_q, Some(&spec)).unwrap();
    let (s, a) = (&sum.rows[0], &avg.rows[0]);
    let pop = s.approx.as_ref().unwrap().population as f64;
    for ((_, sv), (_, av)) in s.values.iter().zip(&a.values) {
        assert!((sv / pop - av).abs() <= 1e-9 * sv.abs());
    }
    for (sh, ah) in s
        .approx
        .as_ref()
        .unwrap()
        .ci_half
        .iter()
        .zip(&a.approx.as_ref().unwrap().ci_half)
    {
        assert!((sh / pop - ah).abs() <= 1e-9 * sh.abs());
    }
}

#[test]
fn explain_annotates_sampled_nodes() {
    let ds = highcard();
    let empty = Configuration::new(ds.node_count());
    let db = F2db::load(ds, &empty)
        .unwrap()
        .with_approx(approx_options())
        .unwrap();
    let spec = ApproxQuerySpec {
        budget: Some(32),
        target_ci: Some(0.05),
        ..ApproxQuerySpec::default()
    };
    let report = db.explain_with(Q, Some(&spec)).unwrap();
    assert_eq!(report.rows.len(), 1);
    let row = &report.rows[0];
    assert_eq!(row.scheme_kind, "sampled");
    let ap = row.approx.expect("sampled row carries approx facts");
    assert_eq!(ap.population, 500);
    assert_eq!(ap.budget, Some(32));
    assert_eq!(ap.target_ci, Some(0.05));
    let text = report.to_masked_string();
    assert!(text.contains("via sampled"), "{text}");
    assert!(text.contains("sampling:"), "{text}");
    assert!(text.contains("budget 32"), "{text}");
    // Without the spec, EXPLAIN is the exact planner (and errors here,
    // since the empty configuration has no scheme for the top node).
    assert!(db.explain(Q).is_err());
}

#[test]
fn plane_survives_persistence_bit_for_bit() {
    let dir = std::env::temp_dir().join("fdc_approx_persist_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plane.fdca");

    let ds = highcard();
    let empty = Configuration::new(ds.node_count());
    let db = F2db::load(ds, &empty)
        .unwrap()
        .with_approx(approx_options())
        .unwrap();
    let spec = ApproxQuerySpec::default();
    let before = db.query_with(Q, Some(&spec)).unwrap();
    db.save_approx(&path).unwrap();

    let ds2 = highcard();
    let empty2 = Configuration::new(ds2.node_count());
    let restored = F2db::load(ds2, &empty2).unwrap();
    assert!(!restored.approx_enabled());
    restored.load_approx(&path).unwrap();
    assert!(restored.approx_enabled());
    let after = restored.query_with(Q, Some(&spec)).unwrap();
    assert_eq!(before.fingerprint(), after.fingerprint());
    let (b, a) = (
        before.rows[0].approx.as_ref().unwrap(),
        after.rows[0].approx.as_ref().unwrap(),
    );
    assert_eq!(b.sampled, a.sampled);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&b.ci_half), bits(&a.ci_half));

    std::fs::remove_file(&path).ok();
}

#[test]
fn coverage_plan_drives_registration() {
    let ds = highcard();
    let plan = plan_coverage(
        &ds,
        &CoverageOptions {
            query_budget_secs: 100e-6,
            forecast_cost_secs: 1e-6,
            min_population: 50,
            ..CoverageOptions::default()
        },
    );
    let top = ds.graph().top_node();
    assert_eq!(plan.sampled_nodes(), vec![top]);
    let empty = Configuration::new(ds.node_count());
    let db = F2db::load(ds, &empty)
        .unwrap()
        .with_approx_plan(&plan, approx_options())
        .unwrap();
    assert!(db.approx_enabled());
    let info = db.approx_node_info(top).unwrap();
    assert_eq!(info.population, 500);
    // Plan-sized reservoirs: 100 affordable cells over 8 strata → 12
    // per stratum (clamped), times default strata count.
    let res = db.query_with(Q, Some(&ApproxQuerySpec::default())).unwrap();
    assert!(res.rows[0].approx.is_some());
}

#[test]
fn advance_path_maintains_sampled_models() {
    let ds = highcard();
    let bases: Vec<NodeId> = ds.graph().base_nodes().to_vec();
    let lasts: Vec<f64> = bases
        .iter()
        .map(|&b| *ds.series(b).values().last().unwrap())
        .collect();
    let empty = Configuration::new(ds.node_count());
    let db = F2db::load(ds, &empty)
        .unwrap()
        .with_approx(approx_options())
        .unwrap();
    let spec = ApproxQuerySpec::default();
    let before = db.query_with(Q, Some(&spec)).unwrap();
    // Commit one full time stamp with every cell tripled: sampled
    // models absorb the new level and the estimate moves up.
    let batch: Vec<(NodeId, f64)> = bases
        .iter()
        .zip(&lasts)
        .map(|(&b, &v)| (b, v * 3.0))
        .collect();
    db.insert_batch(&batch).unwrap();
    let after = db.query_with(Q, Some(&spec)).unwrap();
    let (b0, a0) = (before.rows[0].values[0].1, after.rows[0].values[0].1);
    assert!(
        a0 > b0 * 1.2,
        "advance did not update sampled models: {b0} -> {a0}"
    );
}
