//! Gaussian noise source.
//!
//! The normal distribution is implemented directly via the Box–Muller
//! transform on top of the workspace's deterministic uniform generator
//! (`fdc-rng`), so data generation stays dependency-free and
//! bit-reproducible.

use fdc_rng::Rng;

/// A seeded Gaussian noise generator (Box–Muller, both branches used).
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    rng: Rng,
    /// The second Box–Muller sample, cached between calls.
    spare: Option<f64>,
}

impl GaussianNoise {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        GaussianNoise {
            rng: Rng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Draws one standard normal sample.
    pub fn standard(&mut self) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        let u1: f64 = self.rng.f64_range(f64::EPSILON, 1.0);
        let u2: f64 = self.rng.f64_range(0.0, 1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws one normal sample with the given mean and standard deviation.
    pub fn sample(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard()
    }

    /// Draws a uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.f64_range(lo, hi)
    }

    /// Draws a uniform integer in `[0, n)`.
    pub fn uniform_index(&mut self, n: usize) -> usize {
        self.rng.usize_below(n)
    }

    /// Re-seeds derived generators deterministically.
    pub fn fork(&mut self, salt: u64) -> GaussianNoise {
        let seed: u64 = self.rng.next_u64() ^ salt;
        GaussianNoise::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = GaussianNoise::new(42);
        let mut b = GaussianNoise::new(42);
        for _ in 0..100 {
            assert_eq!(a.standard(), b.standard());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianNoise::new(1);
        let mut b = GaussianNoise::new(2);
        let same = (0..32).filter(|_| a.standard() == b.standard()).count();
        assert!(same < 4);
    }

    #[test]
    fn sample_statistics_are_plausible() {
        let mut g = GaussianNoise::new(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut g = GaussianNoise::new(3);
        for _ in 0..1000 {
            let v = g.uniform(-1.0, 2.0);
            assert!((-1.0..2.0).contains(&v));
            let i = g.uniform_index(5);
            assert!(i < 5);
        }
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut g = GaussianNoise::new(9);
        let mut f1 = g.fork(1);
        let mut f2 = g.fork(1); // same salt but advanced parent state
        assert_ne!(f1.standard(), f2.standard());
    }
}
