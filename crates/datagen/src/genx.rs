//! GenX synthetic cubes (§VI-A).
//!
//! "We generated synthetic time series data for a certain number of base
//! time series X. These are then summed to obtain the aggregated data for
//! the levels above. To create the time series graph, we use three levels
//! if X < 1,000, four levels for 1,000 ≤ X < 10,000, five levels for
//! 10,000 ≤ X < 100,000 and six levels for X ≥ 100,000."
//!
//! The hierarchy is realized as a chain of functionally dependent
//! dimensions (leaf → group → supergroup → …): a chain of `L − 1`
//! dimensions yields a hyper graph with exactly `L` levels. Base series
//! are independent SARIMA simulations (the paper notes in §VI-C that the
//! synthetic series "were randomly generated and do not include
//! correlations with respect to the dimensional attributes").

use crate::noise::GaussianNoise;
use crate::sarima_gen::{simulate_sarima, SarimaProcess};
use fdc_cube::{Coord, Dataset, Dimension, FunctionalDependency, Schema};
use fdc_forecast::{Granularity, TimeSeries};

/// Specification of a synthetic GenX cube.
#[derive(Debug, Clone, PartialEq)]
pub struct GenSpec {
    /// Number of base time series (the X of GenX).
    pub base_count: usize,
    /// Observations per series.
    pub length: usize,
    /// Seasonal period of the generating process.
    pub seasonal_period: usize,
    /// Granularity tag attached to the series.
    pub granularity: Granularity,
    /// Number of hyper-graph levels; `None` applies the paper's rule.
    pub levels: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl GenSpec {
    /// A quarterly-seasonal spec with the paper's level rule.
    pub fn new(base_count: usize, length: usize, seed: u64) -> Self {
        GenSpec {
            base_count,
            length,
            seasonal_period: 4,
            granularity: Granularity::Quarterly,
            levels: None,
            seed,
        }
    }

    /// Alias of [`GenSpec::new`] emphasizing laptop-scale usage in docs.
    pub fn small(base_count: usize, length: usize, seed: u64) -> Self {
        GenSpec::new(base_count, length, seed)
    }

    /// The number of levels that will actually be used.
    pub fn effective_levels(&self) -> usize {
        self.levels.unwrap_or_else(|| paper_levels(self.base_count))
    }
}

/// The paper's rule for the number of hyper-graph levels of GenX.
pub fn paper_levels(base_count: usize) -> usize {
    if base_count < 1_000 {
        3
    } else if base_count < 10_000 {
        4
    } else if base_count < 100_000 {
        5
    } else {
        6
    }
}

/// A generated cube: the data set plus the per-level group counts used to
/// build the hierarchy (useful for diagnostics).
#[derive(Debug, Clone)]
pub struct GeneratedCube {
    /// The materialized data set.
    pub dataset: Dataset,
    /// Cardinality of each hierarchy dimension, finest first.
    pub level_cardinalities: Vec<usize>,
}

/// Generates a GenX cube.
///
/// # Panics
/// Panics when `base_count == 0`, `length == 0`, or the level count is
/// below 2 — programmer errors in benchmark setup, not runtime
/// conditions.
pub fn generate_cube(spec: &GenSpec) -> GeneratedCube {
    assert!(spec.base_count > 0, "base_count must be positive");
    assert!(spec.length > 0, "length must be positive");
    let levels = spec.effective_levels();
    assert!(levels >= 2, "a cube needs at least base + top level");
    // A chain of (levels − 1) dimensions gives `levels` graph levels
    // (base through top).
    let dims = levels - 1;

    // Cardinalities: geometric decrease from X down to a handful, e.g.
    // X = 10_000, dims = 4 → [10_000, 464, 22, 2] (ratio X^(1/dims)).
    let mut cards = Vec::with_capacity(dims);
    let ratio = (spec.base_count as f64).powf(1.0 / dims as f64);
    let mut c = spec.base_count as f64;
    for _ in 0..dims {
        cards.push((c.round() as usize).max(1));
        c /= ratio;
    }
    cards[0] = spec.base_count;

    // Dimensions finest (leaf, index 0) to coarsest, with FDs
    // dim0 → dim1 → … Mapping: proportional index compression.
    let mut dimensions = Vec::with_capacity(dims);
    for (i, &card) in cards.iter().enumerate() {
        let values = (0..card).map(|v| format!("L{i}V{v}")).collect();
        dimensions.push(Dimension::new(format!("level{i}"), values));
    }
    let mut dependencies = Vec::with_capacity(dims.saturating_sub(1));
    for i in 0..dims.saturating_sub(1) {
        let from_card = cards[i];
        let to_card = cards[i + 1];
        let mapping = (0..from_card)
            .map(|v| ((v as u64 * to_card as u64) / from_card as u64) as u32)
            .collect();
        dependencies.push(FunctionalDependency::new(i, i + 1, mapping));
    }
    let schema = Schema::new(dimensions, dependencies).expect("generated schema is valid");

    // Base coordinates: leaf value v, ancestors forced by the FDs.
    let mut noise = GaussianNoise::new(spec.seed);
    let mut base = Vec::with_capacity(spec.base_count);
    for v in 0..spec.base_count {
        let mut coord = Vec::with_capacity(dims);
        coord.push(v as u32);
        for i in 0..dims.saturating_sub(1) {
            let prev = coord[i] as u64;
            coord.push(((prev * cards[i + 1] as u64) / cards[i] as u64) as u32);
        }
        let mut series_noise = noise.fork(v as u64);
        let process = SarimaProcess::randomized(spec.seasonal_period, &mut series_noise);
        let values = simulate_sarima(&process, spec.length, &mut series_noise);
        base.push((Coord::new(coord), TimeSeries::new(values, spec.granularity)));
    }

    let dataset = Dataset::from_base(schema, base).expect("generated base data is valid");
    GeneratedCube {
        dataset,
        level_cardinalities: cards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_level_rule() {
        assert_eq!(paper_levels(10), 3);
        assert_eq!(paper_levels(999), 3);
        assert_eq!(paper_levels(1_000), 4);
        assert_eq!(paper_levels(9_999), 4);
        assert_eq!(paper_levels(10_000), 5);
        assert_eq!(paper_levels(100_000), 6);
    }

    #[test]
    fn small_cube_has_expected_structure() {
        let cube = generate_cube(&GenSpec::new(16, 40, 1));
        let g = cube.dataset.graph();
        assert_eq!(g.base_nodes().len(), 16);
        // 3 levels: base, groups, top.
        assert_eq!(g.max_level() + 1, 3);
        assert_eq!(cube.level_cardinalities[0], 16);
        assert!(cube.level_cardinalities[1] < 16);
    }

    #[test]
    fn levels_override_is_respected() {
        let spec = GenSpec {
            levels: Some(4),
            ..GenSpec::new(27, 30, 2)
        };
        let cube = generate_cube(&spec);
        assert_eq!(cube.dataset.graph().max_level() + 1, 4);
    }

    #[test]
    fn aggregates_are_consistent() {
        let cube = generate_cube(&GenSpec::new(12, 24, 3));
        let ds = &cube.dataset;
        let top = ds.graph().top_node();
        let expected: f64 = ds
            .graph()
            .base_nodes()
            .iter()
            .map(|&b| ds.series(b).values()[0])
            .sum();
        assert!((ds.series(top).values()[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_cube(&GenSpec::new(8, 20, 42));
        let b = generate_cube(&GenSpec::new(8, 20, 42));
        for v in 0..a.dataset.node_count() {
            assert_eq!(a.dataset.series(v).values(), b.dataset.series(v).values());
        }
        let c = generate_cube(&GenSpec::new(8, 20, 43));
        assert_ne!(a.dataset.series(0).values(), c.dataset.series(0).values());
    }

    #[test]
    fn all_series_positive_and_finite() {
        let cube = generate_cube(&GenSpec::new(20, 48, 5));
        for v in 0..cube.dataset.node_count() {
            for x in cube.dataset.series(v).values() {
                assert!(x.is_finite() && *x > 0.0);
            }
        }
    }
}
