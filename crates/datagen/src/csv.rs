//! CSV import/export of multi-dimensional time series data.
//!
//! Lets users bring their own data to the advisor without writing code:
//! the long format is one row per observation,
//!
//! ```csv
//! time,city,region,product,sales
//! 0,C1,R1,P1,10.5
//! 0,C1,R1,P2,3.25
//! 1,C1,R1,P1,11.0
//! ```
//!
//! The schema is inferred from the data: every column between `time` and
//! the final measure column becomes a categorical dimension, and
//! functional dependencies between dimensions (e.g. city → region) are
//! *detected* — a dependency is declared when every value of one
//! dimension co-occurs with exactly one value of another throughout the
//! file. Time stamps must form a dense range per base coordinate.
//!
//! The parser is deliberately small: comma-separated, no quoting or
//! escaping (dimension labels with commas are not supported), `#` lines
//! and blank lines ignored.

use fdc_cube::{Coord, Dataset, Dimension, FunctionalDependency, Schema};
use fdc_forecast::{Granularity, TimeSeries};
use std::collections::BTreeMap;

/// Errors raised by CSV import.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// Structural problem in the file (header, column counts, numbers).
    Malformed(String),
    /// The observations do not form aligned dense series.
    Inconsistent(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Malformed(m) => write!(f, "malformed CSV: {m}"),
            CsvError::Inconsistent(m) => write!(f, "inconsistent data: {m}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Imports a long-format CSV into a [`Dataset`], inferring dimensions and
/// functional dependencies.
pub fn import_csv(content: &str, granularity: Granularity) -> Result<Dataset, CsvError> {
    let mut lines = content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines
        .next()
        .ok_or_else(|| CsvError::Malformed("empty file".into()))?;
    let columns: Vec<&str> = header.split(',').map(str::trim).collect();
    if columns.len() < 3 {
        return Err(CsvError::Malformed(
            "need at least time, one dimension and a measure column".into(),
        ));
    }
    if !columns[0].eq_ignore_ascii_case("time") {
        return Err(CsvError::Malformed(format!(
            "first column must be `time`, found `{}`",
            columns[0]
        )));
    }
    let dim_names: Vec<String> = columns[1..columns.len() - 1]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let k = dim_names.len();

    // First pass: collect value domains (in first-seen order) and rows.
    let mut domains: Vec<Vec<String>> = vec![Vec::new(); k];
    let mut rows: Vec<(i64, Vec<u32>, f64)> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != columns.len() {
            return Err(CsvError::Malformed(format!(
                "row {} has {} fields, header has {}",
                lineno + 2,
                fields.len(),
                columns.len()
            )));
        }
        let time: i64 = fields[0]
            .parse()
            .map_err(|_| CsvError::Malformed(format!("bad time stamp `{}`", fields[0])))?;
        let mut coord = Vec::with_capacity(k);
        for (d, &label) in fields[1..1 + k].iter().enumerate() {
            let idx = match domains[d].iter().position(|v| v == label) {
                Some(i) => i,
                None => {
                    domains[d].push(label.to_string());
                    domains[d].len() - 1
                }
            };
            coord.push(idx as u32);
        }
        let value: f64 = fields[k + 1]
            .parse()
            .map_err(|_| CsvError::Malformed(format!("bad measure `{}`", fields[k + 1])))?;
        rows.push((time, coord, value));
    }
    if rows.is_empty() {
        return Err(CsvError::Malformed("no data rows".into()));
    }

    // Detect functional dependencies between dimension pairs.
    let dependencies = infer_dependencies(&rows, &domains);

    let dimensions: Vec<Dimension> = dim_names
        .into_iter()
        .zip(&domains)
        .map(|(name, values)| Dimension::new(name, values.clone()))
        .collect();
    let schema =
        Schema::new(dimensions, dependencies).map_err(|e| CsvError::Inconsistent(e.to_string()))?;

    // Group observations per coordinate and check time density.
    let t0 = rows.iter().map(|r| r.0).min().expect("non-empty");
    let t1 = rows.iter().map(|r| r.0).max().expect("non-empty");
    let len = (t1 - t0 + 1) as usize;
    let mut per_coord: BTreeMap<Vec<u32>, Vec<Option<f64>>> = BTreeMap::new();
    for (time, coord, value) in rows {
        let slot = per_coord.entry(coord).or_insert_with(|| vec![None; len]);
        let idx = (time - t0) as usize;
        if slot[idx].is_some() {
            return Err(CsvError::Inconsistent(format!(
                "duplicate observation at time {time}"
            )));
        }
        slot[idx] = Some(value);
    }
    let base: Vec<(Coord, TimeSeries)> = per_coord
        .into_iter()
        .map(|(coord, values)| {
            let dense: Result<Vec<f64>, CsvError> = values
                .into_iter()
                .enumerate()
                .map(|(i, v)| {
                    v.ok_or_else(|| {
                        CsvError::Inconsistent(format!(
                            "missing observation at time {} for coordinate {:?}",
                            t0 + i as i64,
                            coord
                        ))
                    })
                })
                .collect();
            Ok((
                Coord::new(coord),
                TimeSeries::with_start(dense?, t0, granularity),
            ))
        })
        .collect::<Result<_, CsvError>>()?;

    Dataset::from_base(schema, base).map_err(|e| CsvError::Inconsistent(e.to_string()))
}

/// Detects `det → dep` dependencies: for each ordered dimension pair,
/// declare a dependency when each determinant value co-occurs with
/// exactly one dependent value (and the mapping is non-trivial, i.e. the
/// determinant has strictly more values). Transitively implied and
/// double-determined dependents are pruned to keep the schema valid.
fn infer_dependencies(
    rows: &[(i64, Vec<u32>, f64)],
    domains: &[Vec<String>],
) -> Vec<FunctionalDependency> {
    let k = domains.len();
    let mut out: Vec<FunctionalDependency> = Vec::new();
    let mut determined = vec![false; k];
    for det in 0..k {
        for dep in 0..k {
            // A valid hierarchy FD needs strictly more determinant values
            // than dependent values; equal cardinalities would be a rename,
            // not a hierarchy. A dimension may be determined only once.
            if det == dep || determined[dep] || domains[det].len() <= domains[dep].len() {
                continue;
            }
            let mut mapping: Vec<Option<u32>> = vec![None; domains[det].len()];
            let mut consistent = true;
            for (_, coord, _) in rows {
                let dv = coord[det] as usize;
                match mapping[dv] {
                    None => mapping[dv] = Some(coord[dep]),
                    Some(existing) if existing != coord[dep] => {
                        consistent = false;
                        break;
                    }
                    _ => {}
                }
            }
            if consistent && mapping.iter().all(|m| m.is_some()) {
                out.push(FunctionalDependency::new(
                    det,
                    dep,
                    mapping.into_iter().map(|m| m.expect("checked")).collect(),
                ));
                determined[dep] = true;
            }
        }
    }
    // Prune transitively implied dependencies (a→c when a→b→c exists) so
    // canonicalization chains stay minimal. Keeping them would be correct
    // but redundant.
    let direct: Vec<(usize, usize)> = out.iter().map(|f| (f.determinant, f.dependent)).collect();
    out.retain(|f| {
        !direct.iter().any(|&(a, b)| {
            a == f.determinant && b != f.dependent && direct.contains(&(b, f.dependent))
        })
    });
    out
}

/// Exports the base series of a data set in the long CSV format accepted
/// by [`import_csv`].
pub fn export_csv(dataset: &Dataset, measure_name: &str) -> String {
    let g = dataset.graph();
    let schema = g.schema();
    let mut out = String::from("time");
    for d in schema.dimensions() {
        out.push(',');
        out.push_str(d.name());
    }
    out.push(',');
    out.push_str(measure_name);
    out.push('\n');
    for &b in g.base_nodes() {
        let coord = g.coord(b);
        let series = dataset.series(b);
        for (i, v) in series.values().iter().enumerate() {
            out.push_str(&(series.start() + i as i64).to_string());
            for (d, &val) in coord.values().iter().enumerate() {
                out.push(',');
                out.push_str(&schema.dimensions()[d].values()[val as usize]);
            }
            out.push(',');
            out.push_str(&format!("{v}"));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# city -> region hierarchy, two products
time,city,region,product,sales
0,C1,R1,P1,10
0,C1,R1,P2,20
0,C2,R1,P1,30
0,C2,R1,P2,40
0,C3,R2,P1,50
0,C3,R2,P2,60
1,C1,R1,P1,11
1,C1,R1,P2,21
1,C2,R1,P1,31
1,C2,R1,P2,41
1,C3,R2,P1,51
1,C3,R2,P2,61
";

    #[test]
    fn import_builds_expected_cube() {
        let ds = import_csv(SAMPLE, Granularity::Monthly).unwrap();
        assert_eq!(ds.graph().base_nodes().len(), 6);
        assert_eq!(ds.series_len(), 2);
        let schema = ds.graph().schema();
        assert_eq!(schema.dim_count(), 3);
        // city → region must be detected.
        assert_eq!(schema.dependencies().len(), 1);
        let fd = &schema.dependencies()[0];
        assert_eq!(schema.dimensions()[fd.determinant].name(), "city");
        assert_eq!(schema.dimensions()[fd.dependent].name(), "region");
        // Aggregates materialize: total at t=0 is 10+20+...+60 = 210.
        let top = ds.graph().top_node();
        assert_eq!(ds.series(top).values()[0], 210.0);
    }

    #[test]
    fn round_trip_export_import() {
        let ds = import_csv(SAMPLE, Granularity::Monthly).unwrap();
        let csv = export_csv(&ds, "sales");
        let ds2 = import_csv(&csv, Granularity::Monthly).unwrap();
        assert_eq!(
            ds.graph().base_nodes().len(),
            ds2.graph().base_nodes().len()
        );
        for (&a, &b) in ds.graph().base_nodes().iter().zip(ds2.graph().base_nodes()) {
            assert_eq!(ds.series(a).values(), ds2.series(b).values());
        }
    }

    #[test]
    fn rejects_structural_problems() {
        assert!(import_csv("", Granularity::Monthly).is_err());
        assert!(import_csv("time,value\n", Granularity::Monthly).is_err()); // no dims
        assert!(import_csv("t,city,v\n0,C1,1\n", Granularity::Monthly).is_err()); // bad first col
        assert!(
            import_csv("time,city,v\n0,C1\n", Granularity::Monthly).is_err(),
            "field count mismatch"
        );
        assert!(import_csv("time,city,v\nx,C1,1\n", Granularity::Monthly).is_err()); // bad time
        assert!(import_csv("time,city,v\n0,C1,abc\n", Granularity::Monthly).is_err()); // bad measure
        assert!(import_csv("time,city,v\n# only comments\n", Granularity::Monthly).is_err());
    }

    #[test]
    fn rejects_sparse_and_duplicate_observations() {
        let missing = "time,city,v\n0,C1,1\n1,C1,2\n0,C2,5\n"; // C2 lacks t=1
        assert!(matches!(
            import_csv(missing, Granularity::Monthly),
            Err(CsvError::Inconsistent(_))
        ));
        let dup = "time,city,v\n0,C1,1\n0,C1,2\n";
        assert!(matches!(
            import_csv(dup, Granularity::Monthly),
            Err(CsvError::Inconsistent(_))
        ));
    }

    #[test]
    fn no_false_dependencies_on_independent_dimensions() {
        // city and product are independent (full cross product).
        let csv = "\
time,city,product,v
0,C1,P1,1
0,C1,P2,2
0,C2,P1,3
0,C2,P2,4
";
        let ds = import_csv(csv, Granularity::Monthly).unwrap();
        assert!(ds.graph().schema().dependencies().is_empty());
    }

    #[test]
    fn nonzero_start_time_is_preserved() {
        let csv = "time,city,v\n5,C1,1\n6,C1,2\n7,C1,3\n";
        let ds = import_csv(csv, Granularity::Monthly).unwrap();
        assert_eq!(ds.series(0).start(), 5);
        assert_eq!(ds.series_len(), 3);
    }

    #[test]
    fn chain_dependencies_are_pruned_to_direct_edges() {
        // city → region → country: the inferred set must not contain the
        // redundant city → country edge (and must stay a valid schema).
        let csv = "\
time,city,region,country,v
0,C1,R1,X,1
0,C2,R1,X,2
0,C3,R2,X,3
0,C4,R2,Y,4
";
        // Note: R2 maps to both X and Y → region does NOT determine
        // country here; but city (4 values) determines both.
        let ds = import_csv(csv, Granularity::Monthly).unwrap();
        let schema = ds.graph().schema();
        for fd in schema.dependencies() {
            assert_eq!(schema.dimensions()[fd.determinant].name(), "city");
        }
    }
}
