//! High-cardinality cubes for the approximate-forecasting workload.
//!
//! The GenX generator reproduces the paper's shapes (up to ~10⁵ base
//! series with several hierarchy levels); the approximate plane needs a
//! different stress profile: 10⁵–10⁶ base cells, **heavy-tailed cell
//! scales** (a few cells dominate the aggregate, the regime where naive
//! uniform sampling has terrible variance and stratification pays) and
//! **controllable seasonality**. To keep a million-cell graph linear in
//! the cell count, the hierarchy is the same functional-dependency chain
//! GenX uses: leaf dimension of cardinality `base_cells`, one grouping
//! dimension above it, so the graph is `base_cells` base nodes +
//! `groups` aggregation nodes + the top node.
//!
//! Per-cell series are generated directly (scale × seasonal profile ×
//! multiplicative noise) instead of via SARIMA simulation: at 10⁶ cells
//! the generator itself must stay cheap, and the approximate estimator
//! only cares about the cross-cell scale distribution, not within-cell
//! ARMA structure. Cell scales are Pareto(α) draws — `tail_index` α
//! around 1.1–1.5 gives the heavy tail where a 0.1 % cell minority
//! carries a double-digit share of the total.

use fdc_cube::{Coord, Dataset, Dimension, FunctionalDependency, Schema};
use fdc_forecast::{Granularity, TimeSeries};
use fdc_rng::Rng;

use crate::genx::GeneratedCube;

/// Specification of a high-cardinality cube.
#[derive(Debug, Clone, PartialEq)]
pub struct HighCardSpec {
    /// Number of base cells (10⁵–10⁶ is the target regime).
    pub base_cells: usize,
    /// Number of groups in the aggregation dimension above the leaf.
    pub groups: usize,
    /// Observations per series.
    pub length: usize,
    /// Seasonal period of the cell profiles (≤ 1 disables seasonality).
    pub seasonal_period: usize,
    /// Seasonal amplitude as a fraction of the cell scale, in [0, 1).
    pub seasonal_strength: f64,
    /// Pareto tail index α of the cell-scale distribution; smaller is
    /// heavier-tailed. Values ≤ 0 fall back to uniform scales.
    pub tail_index: f64,
    /// Multiplicative noise level (stddev as a fraction of the scale).
    pub noise: f64,
    /// Granularity tag attached to every series.
    pub granularity: Granularity,
    /// RNG seed; equal seeds produce byte-identical cubes.
    pub seed: u64,
}

impl HighCardSpec {
    /// A heavy-tailed, mildly seasonal spec at the given cell count.
    pub fn new(base_cells: usize, seed: u64) -> Self {
        HighCardSpec {
            base_cells,
            groups: (base_cells as f64).sqrt().round().max(1.0) as usize,
            length: 36,
            seasonal_period: 4,
            seasonal_strength: 0.3,
            tail_index: 1.3,
            noise: 0.1,
            granularity: Granularity::Quarterly,
            seed,
        }
    }
}

/// Generates a high-cardinality cube.
///
/// # Panics
/// Panics on a zero `base_cells`, zero `length` or `groups` larger than
/// `base_cells` — benchmark-setup programmer errors.
pub fn generate_highcard(spec: &HighCardSpec) -> GeneratedCube {
    assert!(spec.base_cells > 0, "base_cells must be positive");
    assert!(spec.length > 0, "length must be positive");
    let groups = spec.groups.clamp(1, spec.base_cells);

    // Leaf dimension (one value per cell) + group dimension, tied by a
    // proportional functional dependency exactly like GenX — this is
    // what keeps canonicalization from exploding the graph.
    let leaf_values = (0..spec.base_cells).map(|v| format!("c{v}")).collect();
    let group_values = (0..groups).map(|g| format!("g{g}")).collect();
    let mapping = (0..spec.base_cells)
        .map(|v| ((v as u64 * groups as u64) / spec.base_cells as u64) as u32)
        .collect();
    let schema = Schema::new(
        vec![
            Dimension::new("cell".to_string(), leaf_values),
            Dimension::new("group".to_string(), group_values),
        ],
        vec![FunctionalDependency::new(0, 1, mapping)],
    )
    .expect("generated schema is valid");

    let mut root = Rng::seed_from_u64(spec.seed);
    let mut base = Vec::with_capacity(spec.base_cells);
    for v in 0..spec.base_cells {
        let g = ((v as u64 * groups as u64) / spec.base_cells as u64) as u32;
        let mut rng = root.fork(v as u64);
        // Heavy-tailed per-cell scale: Pareto(α) via inverse CDF,
        // clamped so one astronomically lucky draw cannot overflow the
        // aggregate into the e308 range at 10⁶ cells.
        let scale = if spec.tail_index > 0.0 {
            let u = (1.0 - rng.f64()).max(1e-12);
            (10.0 * u.powf(-1.0 / spec.tail_index)).min(1e9)
        } else {
            10.0 + 90.0 * rng.f64()
        };
        let phase = rng.f64() * std::f64::consts::TAU;
        let trend = rng.f64_range(-0.002, 0.004);
        let mut values = Vec::with_capacity(spec.length);
        for t in 0..spec.length {
            let seasonal = if spec.seasonal_period > 1 {
                1.0 + spec.seasonal_strength
                    * (std::f64::consts::TAU * t as f64 / spec.seasonal_period as f64 + phase).sin()
            } else {
                1.0
            };
            let level = 1.0 + trend * t as f64;
            let noise = 1.0 + spec.noise * rng.standard_normal();
            // Floor at 1 % of scale: series stay positive so both
            // multiplicative models and SUM aggregates behave.
            values.push((scale * seasonal * level * noise).max(scale * 0.01));
        }
        base.push((
            Coord::new(vec![v as u32, g]),
            TimeSeries::new(values, spec.granularity),
        ));
    }

    let dataset = Dataset::from_base(schema, base).expect("generated base data is valid");
    GeneratedCube {
        dataset,
        level_cardinalities: vec![spec.base_cells, groups],
    }
}

/// FNV-1a fingerprint over every base series' exact bit patterns —
/// byte-identity of two generated cubes without holding both in memory.
pub fn cube_fingerprint(cube: &GeneratedCube) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    let ds = &cube.dataset;
    let g = ds.graph();
    eat(&(g.base_nodes().len() as u64).to_le_bytes());
    for &b in g.base_nodes() {
        eat(&(b as u64).to_le_bytes());
        for v in ds.series(b).values() {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_hierarchy_keeps_the_graph_linear() {
        let cube = generate_highcard(&HighCardSpec {
            base_cells: 200,
            groups: 10,
            ..HighCardSpec::new(200, 1)
        });
        let g = cube.dataset.graph();
        assert_eq!(g.base_nodes().len(), 200);
        // base + groups + top, nothing else.
        assert_eq!(g.node_count(), 200 + 10 + 1);
        assert_eq!(g.max_level(), 2);
    }

    #[test]
    fn aggregates_are_consistent_sums() {
        let cube = generate_highcard(&HighCardSpec::new(64, 7));
        let ds = &cube.dataset;
        let top = ds.graph().top_node();
        let expected: f64 = ds
            .graph()
            .base_nodes()
            .iter()
            .map(|&b| ds.series(b).values()[0])
            .sum();
        assert!((ds.series(top).values()[0] - expected).abs() < 1e-6 * expected.abs());
    }

    #[test]
    fn scales_are_heavy_tailed() {
        let cube = generate_highcard(&HighCardSpec::new(2_000, 11));
        let ds = &cube.dataset;
        let mut first: Vec<f64> = ds
            .graph()
            .base_nodes()
            .iter()
            .map(|&b| ds.series(b).values()[0])
            .collect();
        first.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = first.iter().sum();
        let top_1pct: f64 = first[..20].iter().sum();
        // Pareto(1.3): the top 1 % of cells must carry a large share —
        // far beyond the 1 % a uniform distribution would give them.
        assert!(
            top_1pct / total > 0.10,
            "top 1% share {:.3} not heavy-tailed",
            top_1pct / total
        );
    }

    #[test]
    fn seasonality_is_controllable() {
        let no_season = generate_highcard(&HighCardSpec {
            seasonal_strength: 0.0,
            noise: 0.0,
            ..HighCardSpec::new(32, 3)
        });
        let seasonal = generate_highcard(&HighCardSpec {
            seasonal_strength: 0.5,
            noise: 0.0,
            ..HighCardSpec::new(32, 3)
        });
        let spread = |cube: &GeneratedCube| {
            let s = cube.dataset.series(cube.dataset.graph().base_nodes()[0]);
            let v = s.values();
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - mean).abs()).sum::<f64>() / v.len() as f64 / mean
        };
        assert!(spread(&no_season) < 0.05, "{}", spread(&no_season));
        assert!(spread(&seasonal) > 0.15, "{}", spread(&seasonal));
    }

    #[test]
    fn all_values_positive_and_finite() {
        let cube = generate_highcard(&HighCardSpec::new(128, 5));
        for v in 0..cube.dataset.node_count() {
            for x in cube.dataset.series(v).values() {
                assert!(x.is_finite() && *x > 0.0);
            }
        }
    }
}
