//! # fdc-datagen
//!
//! Synthetic data generation for the reproduction (§VI-A of the paper).
//!
//! The paper evaluates on three real-world data sets — Tourism (Australian
//! domestic tourism, 32 quarterly base series over purpose × state), Sales
//! (27 monthly series from a market research company over products ×
//! countries) and Energy (86 customers at hourly resolution from the
//! Meregio project) — plus synthetic **GenX** cubes whose base series come
//! from a SARIMA process simulated in R.
//!
//! The real data sets are proprietary or gated behind web downloads, so
//! this crate provides **synthetic proxies** with matched shape (series
//! counts, dimensions, granularity, hierarchy) and matched structure
//! (cross-series correlation along dimensional attributes, seasonality at
//! the natural period, differing noise levels). GenX is reproduced
//! faithfully: independent SARIMA base series, with the paper's rule for
//! the number of hyper-graph levels as a function of X.
//!
//! All generators are deterministic in their seed.

pub mod csv;
pub mod genx;
pub mod highcard;
pub mod noise;
pub mod proxies;
pub mod sarima_gen;

pub use csv::{export_csv, import_csv, CsvError};
pub use genx::{generate_cube, paper_levels, GenSpec, GeneratedCube};
pub use highcard::{cube_fingerprint, generate_highcard, HighCardSpec};
pub use noise::GaussianNoise;
pub use proxies::{energy_proxy, sales_proxy, tourism_proxy};
pub use sarima_gen::{simulate_sarima, SarimaProcess};
