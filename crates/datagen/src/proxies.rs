//! Synthetic proxies of the paper's real-world data sets (§VI-A).
//!
//! The originals are proprietary (Sales: market research excerpt; Energy:
//! EnBW/Meregio) or behind a web download (Tourism: Tourism Research
//! Australia). Each proxy reproduces the documented *shape* — series
//! counts, dimensions, hierarchy, granularity, history length — and the
//! *structural properties* the advisor exploits:
//!
//! * cross-series correlation along dimensional attributes (shared
//!   seasonal and regional components), which makes derivation schemes
//!   worthwhile — unlike GenX, whose series are independent;
//! * noisier base series than aggregates, which makes higher aggregation
//!   levels easier to forecast (the premise of top-down approaches, \[9\]);
//! * seasonality at the natural period of the granularity.

use crate::noise::GaussianNoise;
use fdc_cube::{Coord, Dataset, Dimension, FunctionalDependency, Schema};
use fdc_forecast::{Granularity, TimeSeries};
use std::f64::consts::PI;

/// Shared component mixer: level · (season ⊕ trend) + idiosyncratic noise.
#[allow(clippy::too_many_arguments)]
fn mixed_series(
    length: usize,
    level: f64,
    trend_per_step: f64,
    period: usize,
    seasonal_amplitude: f64,
    seasonal_phase: f64,
    noise_sd: f64,
    noise: &mut GaussianNoise,
) -> Vec<f64> {
    (0..length)
        .map(|t| {
            let season = if period > 1 {
                seasonal_amplitude
                    * ((2.0 * PI * (t % period) as f64 / period as f64) + seasonal_phase).sin()
            } else {
                0.0
            };
            let v =
                level + trend_per_step * t as f64 + level * season + noise.sample(0.0, noise_sd);
            v.max(0.1)
        })
        .collect()
}

/// Tourism proxy: 32 quarterly base series over *purpose of visit* (4
/// values: holiday, business, visiting, other) × *state* (8 Australian
/// states/territories), 32 observations (8 years, 2004–2011).
pub fn tourism_proxy(seed: u64) -> Dataset {
    let purposes = ["holiday", "business", "visiting", "other"];
    let states = ["NSW", "VIC", "QLD", "SA", "WA", "TAS", "NT", "ACT"];
    let schema = Schema::flat(vec![
        Dimension::new("purpose", purposes.iter().map(|s| s.to_string()).collect()),
        Dimension::new("state", states.iter().map(|s| s.to_string()).collect()),
    ])
    .expect("tourism schema is valid");

    let mut noise = GaussianNoise::new(seed);
    // Purpose scales differ strongly (holiday ≫ other); states share a
    // country-wide seasonal pattern with state-specific phase shifts.
    let purpose_level = [400.0, 150.0, 220.0, 60.0];
    let purpose_season = [0.35, 0.08, 0.20, 0.10];
    let mut base = Vec::with_capacity(32);
    for (p, _) in purposes.iter().enumerate() {
        for (s, _) in states.iter().enumerate() {
            let state_scale = 1.0 / (1.0 + s as f64 * 0.35);
            let mut series_noise = noise.fork((p * 8 + s) as u64);
            let values = mixed_series(
                32,
                purpose_level[p] * state_scale,
                purpose_level[p] * state_scale * 0.004,
                4,
                purpose_season[p],
                s as f64 * 0.15,
                purpose_level[p] * state_scale * 0.17,
                &mut series_noise,
            );
            base.push((
                Coord::new(vec![p as u32, s as u32]),
                TimeSeries::new(values, Granularity::Quarterly),
            ));
        }
    }
    Dataset::from_base(schema, base).expect("tourism proxy data is valid")
}

/// Sales proxy: 27 monthly base series over *product* (9, functionally
/// grouped into 3 categories) × *country* (3), 72 observations (6 years,
/// 2004–2009).
pub fn sales_proxy(seed: u64) -> Dataset {
    let products: Vec<String> = (0..9).map(|i| format!("prod{i}")).collect();
    let categories: Vec<String> = (0..3).map(|i| format!("cat{i}")).collect();
    let countries = ["DE", "FR", "UK"];
    let schema = Schema::new(
        vec![
            Dimension::new("product", products),
            Dimension::new("category", categories),
            Dimension::new("country", countries.iter().map(|s| s.to_string()).collect()),
        ],
        vec![FunctionalDependency::new(
            0,
            1,
            vec![0, 0, 0, 1, 1, 1, 2, 2, 2],
        )],
    )
    .expect("sales schema is valid");

    let mut noise = GaussianNoise::new(seed ^ 0x5a1e5);
    let mut base = Vec::with_capacity(27);
    for prod in 0..9u32 {
        let cat = prod / 3;
        for (c, _) in countries.iter().enumerate() {
            let level = 80.0 + prod as f64 * 25.0 + c as f64 * 40.0;
            // Category drives the seasonal shape; country shifts the phase.
            let mut series_noise = noise.fork((prod * 3 + c as u32) as u64);
            let values = mixed_series(
                72,
                level,
                level * 0.006,
                12,
                0.15 + cat as f64 * 0.10,
                c as f64 * 0.4,
                level * 0.18,
                &mut series_noise,
            );
            base.push((
                Coord::new(vec![prod, cat, c as u32]),
                TimeSeries::new(values, Granularity::Monthly),
            ));
        }
    }
    Dataset::from_base(schema, base).expect("sales proxy data is valid")
}

/// Energy proxy: 86 customers at hourly resolution, functionally grouped
/// into 8 districts (the hierarchically organized energy market of the
/// smart-grid motivation). `length` defaults to 336 (two weeks) in
/// [`energy_proxy_default`]; the original covers Nov 2009 – Jun 2010.
pub fn energy_proxy(seed: u64, length: usize) -> Dataset {
    const CUSTOMERS: usize = 86;
    const DISTRICTS: usize = 8;
    let customers: Vec<String> = (0..CUSTOMERS).map(|i| format!("cust{i:02}")).collect();
    let districts: Vec<String> = (0..DISTRICTS).map(|i| format!("district{i}")).collect();
    let mapping: Vec<u32> = (0..CUSTOMERS)
        .map(|i| ((i * DISTRICTS) / CUSTOMERS) as u32)
        .collect();
    let schema = Schema::new(
        vec![
            Dimension::new("customer", customers),
            Dimension::new("district", districts),
        ],
        vec![FunctionalDependency::new(0, 1, mapping.clone())],
    )
    .expect("energy schema is valid");

    let mut noise = GaussianNoise::new(seed ^ 0xe4e6);
    let mut base = Vec::with_capacity(CUSTOMERS);
    for (cust, &district) in mapping.iter().enumerate().take(CUSTOMERS) {
        // Households share the day/night cycle; base series are very noisy
        // relative to their level — the regime where all approaches behave
        // similarly (the paper's Energy finding).
        let level = 2.0 + (cust % 7) as f64 * 0.8;
        let mut series_noise = noise.fork(cust as u64);
        let values = mixed_series(
            length,
            level,
            0.0,
            24,
            0.45,
            (cust % 5) as f64 * 0.2,
            level * 0.45,
            &mut series_noise,
        );
        base.push((
            Coord::new(vec![cust as u32, district]),
            TimeSeries::new(values, Granularity::Hourly),
        ));
    }
    Dataset::from_base(schema, base).expect("energy proxy data is valid")
}

/// [`energy_proxy`] with the default two-week history.
pub fn energy_proxy_default(seed: u64) -> Dataset {
    energy_proxy(seed, 336)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tourism_shape_matches_paper() {
        let ds = tourism_proxy(1);
        assert_eq!(ds.graph().base_nodes().len(), 32);
        assert_eq!(ds.series_len(), 32);
        assert_eq!(ds.series(0).granularity(), Granularity::Quarterly);
        // Graph: base 32, purpose aggregates 4, state aggregates 8, top 1.
        assert_eq!(ds.node_count(), 45);
    }

    #[test]
    fn sales_shape_matches_paper() {
        let ds = sales_proxy(1);
        assert_eq!(ds.graph().base_nodes().len(), 27);
        assert_eq!(ds.series_len(), 72);
        assert_eq!(ds.series(0).granularity(), Granularity::Monthly);
        // FD product → category must hold in every base coordinate.
        for &b in ds.graph().base_nodes() {
            let c = ds.graph().coord(b).values();
            assert_eq!(c[1], c[0] / 3);
        }
    }

    #[test]
    fn energy_shape_matches_paper() {
        let ds = energy_proxy(1, 100);
        assert_eq!(ds.graph().base_nodes().len(), 86);
        assert_eq!(ds.series_len(), 100);
        assert_eq!(ds.series(0).granularity(), Granularity::Hourly);
        let default = energy_proxy_default(1);
        assert_eq!(default.series_len(), 336);
    }

    #[test]
    fn proxies_are_deterministic_and_seed_sensitive() {
        let a = tourism_proxy(7);
        let b = tourism_proxy(7);
        let c = tourism_proxy(8);
        assert_eq!(a.series(0).values(), b.series(0).values());
        assert_ne!(a.series(0).values(), c.series(0).values());
    }

    #[test]
    fn all_values_positive() {
        for ds in [tourism_proxy(2), sales_proxy(2), energy_proxy(2, 96)] {
            for v in 0..ds.node_count() {
                assert!(ds.series(v).values().iter().all(|x| *x > 0.0));
            }
        }
    }

    #[test]
    fn base_series_noisier_than_aggregates() {
        // Coefficient of variation of detrended series should be larger at
        // the base than at the top — the property that makes aggregation
        // schemes attractive.
        let ds = tourism_proxy(3);
        let cv = |vals: &[f64]| {
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            // Lag-1 difference dispersion as a crude noise measure.
            let d: Vec<f64> = vals.windows(2).map(|w| w[1] - w[0]).collect();
            let dm = d.iter().sum::<f64>() / d.len() as f64;
            let dv = d.iter().map(|v| (v - dm) * (v - dm)).sum::<f64>() / d.len() as f64;
            dv.sqrt() / mean
        };
        let base_cv = cv(ds.series(ds.graph().base_nodes()[0]).values());
        let top_cv = cv(ds.series(ds.graph().top_node()).values());
        assert!(
            top_cv < base_cv,
            "top CV {top_cv} should be below base CV {base_cv}"
        );
    }

    #[test]
    fn sales_series_are_seasonal() {
        // Check a clear yearly cycle: correlation of t with t+12 exceeds
        // correlation with t+6 on detrended data.
        let ds = sales_proxy(4);
        let vals = ds.series(ds.graph().top_node()).values();
        let detrended: Vec<f64> = {
            let n = vals.len() as f64;
            let mean_t = (n - 1.0) / 2.0;
            let mean_v = vals.iter().sum::<f64>() / n;
            let slope = vals
                .iter()
                .enumerate()
                .map(|(t, v)| (t as f64 - mean_t) * (v - mean_v))
                .sum::<f64>()
                / vals
                    .iter()
                    .enumerate()
                    .map(|(t, _)| (t as f64 - mean_t).powi(2))
                    .sum::<f64>();
            vals.iter()
                .enumerate()
                .map(|(t, v)| v - slope * t as f64)
                .collect()
        };
        let corr = |lag: usize| {
            let n = detrended.len();
            let mean = detrended.iter().sum::<f64>() / n as f64;
            let var = detrended.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
            (lag..n)
                .map(|t| (detrended[t] - mean) * (detrended[t - lag] - mean))
                .sum::<f64>()
                / ((n - lag) as f64 * var)
        };
        assert!(corr(12) > corr(6) + 0.3, "c12={} c6={}", corr(12), corr(6));
    }
}
