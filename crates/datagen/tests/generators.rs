//! Generator-level guarantees: seeded determinism (same seed →
//! byte-identical cube) and the high-cardinality scale smoke.
//!
//! Determinism here is *byte* identity — every series value must match
//! in its exact IEEE-754 bit pattern, not just approximately — because
//! the approximate plane's reservoirs, the concurrency stress suite and
//! cross-process reproducibility all hash raw bits.

use fdc_datagen::{cube_fingerprint, generate_cube, generate_highcard, GenSpec, HighCardSpec};

#[test]
fn genx_is_byte_identical_in_seed() {
    let a = generate_cube(&GenSpec::new(64, 30, 0xDA7A));
    let b = generate_cube(&GenSpec::new(64, 30, 0xDA7A));
    assert_eq!(cube_fingerprint(&a), cube_fingerprint(&b));
    // Full bit-level check, not just the fingerprint.
    for v in 0..a.dataset.node_count() {
        let av: Vec<u64> = a
            .dataset
            .series(v)
            .values()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let bv: Vec<u64> = b
            .dataset
            .series(v)
            .values()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(av, bv, "node {v} differs bitwise");
    }
    let c = generate_cube(&GenSpec::new(64, 30, 0xDA7B));
    assert_ne!(cube_fingerprint(&a), cube_fingerprint(&c));
}

#[test]
fn highcard_is_byte_identical_in_seed() {
    let spec = HighCardSpec::new(5_000, 0x5EED);
    let a = generate_highcard(&spec);
    let b = generate_highcard(&spec);
    assert_eq!(cube_fingerprint(&a), cube_fingerprint(&b));
    for &n in a.dataset.graph().base_nodes() {
        let av: Vec<u64> = a
            .dataset
            .series(n)
            .values()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let bv: Vec<u64> = b
            .dataset
            .series(n)
            .values()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(av, bv, "base {n} differs bitwise");
    }
    let c = generate_highcard(&HighCardSpec::new(5_000, 0x5EEE));
    assert_ne!(cube_fingerprint(&a), cube_fingerprint(&c));
}

#[test]
fn highcard_spec_fields_shape_the_cube() {
    let cube = generate_highcard(&HighCardSpec {
        base_cells: 1_000,
        groups: 25,
        length: 12,
        ..HighCardSpec::new(1_000, 9)
    });
    let g = cube.dataset.graph();
    assert_eq!(g.base_nodes().len(), 1_000);
    assert_eq!(g.node_count(), 1_000 + 25 + 1);
    assert_eq!(cube.dataset.series_len(), 12);
    assert_eq!(cube.level_cardinalities, vec![1_000, 25]);
}

/// The 10⁶-cell scale smoke: generation (including the full dataset
/// materialization — graph build plus aggregate roll-up) must finish
/// inside a release-build time bound. Run explicitly (the approx-smoke
/// CI job does): `cargo test -p fdc-datagen --release -- --ignored`.
#[test]
#[ignore = "release-scale smoke; CI runs it with --release -- --ignored"]
fn highcard_million_cells_under_time_bound() {
    let started = std::time::Instant::now();
    let cube = generate_highcard(&HighCardSpec {
        length: 24,
        ..HighCardSpec::new(1_000_000, 0xB16)
    });
    let elapsed = started.elapsed();
    assert_eq!(cube.dataset.graph().base_nodes().len(), 1_000_000);
    assert!(
        elapsed < std::time::Duration::from_secs(120),
        "10^6-cell generation took {elapsed:.1?}"
    );
    // The aggregate plane exists and is consistent at scale.
    let ds = &cube.dataset;
    let top = ds.graph().top_node();
    assert!(ds.series(top).values().iter().all(|v| v.is_finite()));
}
