//! Sampling estimators for approximate aggregate forecasting.
//!
//! A high-cardinality aggregation node sums the forecasts of N base
//! cells; fitting a model per cell is infeasible past ~10⁵ cells. The
//! approximate plane (fdc-approx) instead fits models on a stratified
//! sample and scales the sampled forecasts up to the population. This
//! module holds the estimator math, kept in the forecast crate so it is
//! reusable by anything that samples (the FlashP direction: "forecast on
//! samples with error guarantees").
//!
//! ## Estimator
//!
//! Cells are partitioned into strata h = 1..H by per-cell scale; within
//! stratum h the plane samples n_h of N_h cells uniformly (hash-order
//! bottom-k, see fdc-approx). With ŷ_i the per-cell model forecast, the
//! stratified expansion (Horvitz–Thompson with π_i = n_h/N_h) estimator
//! of the population total is
//!
//! ```text
//!   Ŷ = Σ_h (N_h / n_h) Σ_{i ∈ s_h} ŷ_i = Σ_h N_h · ȳ_h
//! ```
//!
//! with the textbook stratified variance (finite-population corrected):
//!
//! ```text
//!   V̂(Ŷ) = Σ_h N_h² (1 − n_h/N_h) s²_h / n_h
//! ```
//!
//! where s²_h is the within-stratum sample variance of ŷ. A confidence
//! interval at level c is `Ŷ ± z_c · √V̂(Ŷ)`. Fully-sampled strata
//! (n_h = N_h) contribute their exact sum and zero variance.

use fdc_obs::MomentSummary;

/// One stratum's contribution to a stratified estimate: the stratum
/// population and the moment summary of the *sampled* per-cell
/// forecasts. `summary.count()` is n_h, `population` is N_h.
#[derive(Debug, Clone, Copy)]
pub struct StratumSample {
    /// Number of cells in the stratum (N_h).
    pub population: u64,
    /// Moments of the sampled cells' forecasts (n_h = `summary.count()`).
    pub summary: MomentSummary,
}

impl StratumSample {
    /// Builds a stratum sample from the sampled forecasts.
    pub fn from_values(population: u64, values: &[f64]) -> Self {
        let mut summary = MomentSummary::new();
        for &v in values {
            summary.insert(v);
        }
        StratumSample {
            population,
            summary,
        }
    }
}

/// A stratified Horvitz–Thompson estimate of a population total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HtEstimate {
    /// Estimated population total Ŷ.
    pub total: f64,
    /// Estimated variance V̂(Ŷ) of the total.
    pub variance: f64,
    /// Cells sampled (Σ n_h).
    pub sampled: u64,
    /// Population size (Σ N_h).
    pub population: u64,
}

impl HtEstimate {
    /// Half-width of the confidence interval at `confidence`
    /// (e.g. 0.95): `z · √V̂`.
    pub fn ci_half_width(&self, confidence: f64) -> f64 {
        z_quantile(confidence) * self.variance.max(0.0).sqrt()
    }
}

/// Computes the stratified expansion estimate over `strata`. Strata with
/// an empty sample but a non-empty population contribute nothing to the
/// total (the caller should avoid producing them: every non-empty
/// stratum must keep at least one sampled cell); strata with n_h == 1
/// or n_h == N_h contribute zero variance.
pub fn stratified_estimate(strata: &[StratumSample]) -> HtEstimate {
    let mut total = 0.0;
    let mut variance = 0.0;
    let mut sampled = 0u64;
    let mut population = 0u64;
    for s in strata {
        let n_h = s.summary.count();
        let cap_n = s.population;
        population += cap_n;
        sampled += n_h.min(cap_n);
        if n_h == 0 || cap_n == 0 {
            continue;
        }
        total += cap_n as f64 * s.summary.mean();
        if n_h >= 2 && n_h < cap_n {
            let fpc = 1.0 - n_h as f64 / cap_n as f64;
            variance +=
                (cap_n as f64) * (cap_n as f64) * fpc * s.summary.sample_variance() / n_h as f64;
        }
    }
    HtEstimate {
        total,
        variance,
        sampled,
        population,
    }
}

/// Two-sided standard-normal quantile for a confidence level in (0, 1):
/// `z` such that P(|Z| ≤ z) = confidence. Uses Acklam's rational
/// approximation of the inverse normal CDF (|relative error| < 1.15e-9),
/// which is plenty for interval construction. Degenerate levels clamp to
/// the nearest meaningful value.
pub fn z_quantile(confidence: f64) -> f64 {
    let c = confidence.clamp(1e-9, 1.0 - 1e-12);
    let p = 0.5 + c / 2.0; // upper-tail probability point
    inverse_normal_cdf(p)
}

/// Acklam's inverse normal CDF approximation on (0, 1).
#[allow(clippy::excessive_precision)] // published coefficients, kept verbatim
fn inverse_normal_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_quantile_matches_textbook_values() {
        assert!(
            (z_quantile(0.95) - 1.959964).abs() < 1e-4,
            "{}",
            z_quantile(0.95)
        );
        assert!((z_quantile(0.90) - 1.644854).abs() < 1e-4);
        assert!((z_quantile(0.99) - 2.575829).abs() < 1e-4);
        assert!((z_quantile(0.6827) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn fully_sampled_strata_are_exact_with_zero_variance() {
        let s = StratumSample::from_values(3, &[1.0, 2.0, 3.0]);
        let est = stratified_estimate(&[s]);
        assert!((est.total - 6.0).abs() < 1e-12);
        assert_eq!(est.variance, 0.0);
        assert_eq!(est.sampled, 3);
        assert_eq!(est.population, 3);
        assert_eq!(est.ci_half_width(0.95), 0.0);
    }

    #[test]
    fn estimate_matches_hand_computation() {
        // Stratum 1: N=10, sample {4, 6} → mean 5, s² = 2.
        // Stratum 2: N=4, sample {1, 3} → mean 2, s² = 2.
        let est = stratified_estimate(&[
            StratumSample::from_values(10, &[4.0, 6.0]),
            StratumSample::from_values(4, &[1.0, 3.0]),
        ]);
        assert!((est.total - (10.0 * 5.0 + 4.0 * 2.0)).abs() < 1e-12);
        // V = 100·(1−0.2)·2/2 + 16·(1−0.5)·2/2 = 80 + 8 = 88.
        assert!((est.variance - 88.0).abs() < 1e-9, "{}", est.variance);
        assert_eq!(est.sampled, 4);
        assert_eq!(est.population, 14);
        let half = est.ci_half_width(0.95);
        assert!((half - 1.959964 * 88.0_f64.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn unbiased_over_all_samples_of_a_tiny_population() {
        // Exhaustive check on one stratum: population {1,2,3,4}, n=2.
        // The expansion estimator must average to the true total 10 over
        // all 6 equally-likely samples.
        let pop = [1.0, 2.0, 3.0, 4.0];
        let mut sum = 0.0;
        let mut count = 0;
        for i in 0..4 {
            for j in (i + 1)..4 {
                let est = stratified_estimate(&[StratumSample::from_values(4, &[pop[i], pop[j]])]);
                sum += est.total;
                count += 1;
            }
        }
        assert_eq!(count, 6);
        assert!((sum / 6.0 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_samples_contribute_total_but_no_variance() {
        let est = stratified_estimate(&[StratumSample::from_values(5, &[2.0])]);
        assert!((est.total - 10.0).abs() < 1e-12);
        assert_eq!(est.variance, 0.0);
        assert_eq!(est.sampled, 1);
    }

    #[test]
    fn empty_strata_are_skipped() {
        let est = stratified_estimate(&[
            StratumSample::from_values(7, &[]),
            StratumSample::from_values(2, &[3.0, 5.0]),
        ]);
        assert!((est.total - 8.0).abs() < 1e-12);
        assert_eq!(est.population, 9);
        assert_eq!(est.sampled, 2);
    }
}
