//! Automatic model selection for a single time series.
//!
//! The advisor treats the forecast method as a pluggable detail (§II-B:
//! "The forecast method that is used to create the model is independent
//! of our approach"). This module provides the common policy used by the
//! evaluation: fit a small set of candidate specifications on the training
//! part and keep the one with the lowest holdout error. The paper found
//! triple exponential smoothing best "in most cases" — selection lets the
//! exceptions pick something better.

use crate::accuracy::AccuracyMeasure;
use crate::model::{FitOptions, ForecastModel, ModelSpec};
use crate::series::TimeSeries;

/// Outcome of model selection: the winning model plus the per-candidate
/// scores (useful for diagnostics and tests).
pub struct SelectionReport {
    /// The fitted winner.
    pub model: Box<dyn ForecastModel>,
    /// The spec of the winner.
    pub spec: ModelSpec,
    /// Holdout error of the winner.
    pub error: f64,
    /// All evaluated `(spec, holdout error)` pairs, including failures as
    /// infinite errors.
    pub candidates: Vec<(ModelSpec, f64)>,
}

/// Default candidate set for a series with the given seasonal period.
pub fn default_candidates(period: usize) -> Vec<ModelSpec> {
    let mut specs = vec![ModelSpec::Ses, ModelSpec::Holt];
    if period > 1 {
        specs.push(ModelSpec::HoltWinters {
            period,
            seasonal: crate::model::SeasonalKind::Additive,
        });
        specs.push(ModelSpec::Sarima {
            order: (1, 0, 0),
            seasonal: (0, 1, 0),
            period,
        });
    } else {
        specs.push(ModelSpec::Arima { p: 1, d: 1, q: 1 });
    }
    specs
}

/// Fits every candidate on the training split of `series`, scores it on
/// the test split with `measure`, refits the winner on the full series and
/// returns it.
///
/// Returns `None` when no candidate could be fitted (series too short for
/// all of them).
pub fn select_best_model(
    series: &TimeSeries,
    specs: &[ModelSpec],
    measure: AccuracyMeasure,
    train_frac: f64,
    options: &FitOptions,
) -> Option<SelectionReport> {
    let (train, test) = series.split(train_frac);
    let mut candidates = Vec::with_capacity(specs.len());
    let mut best: Option<(usize, f64)> = None;
    for (i, spec) in specs.iter().enumerate() {
        let err = match spec.fit(&train, options) {
            Ok(model) => {
                let fc = model.forecast(test.len());
                let e = measure.score(test.values(), &fc);
                if e.is_finite() {
                    e
                } else {
                    f64::INFINITY
                }
            }
            Err(_) => f64::INFINITY,
        };
        candidates.push((spec.clone(), err));
        if best.is_none_or(|(_, be)| err < be) && err.is_finite() {
            best = Some((i, err));
        }
    }
    let (winner_idx, error) = best?;
    let spec = specs[winner_idx].clone();
    // Refit on the full history so the stored model is up to date.
    let model = spec.fit(series, options).ok()?;
    Some(SelectionReport {
        model,
        spec,
        error,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Granularity;

    fn seasonal_series(n: usize, period: usize) -> TimeSeries {
        let values = (0..n)
            .map(|t| {
                200.0
                    + t as f64
                    + 50.0
                        * (2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64).sin()
            })
            .collect();
        TimeSeries::new(values, Granularity::Monthly)
    }

    #[test]
    fn default_candidates_depend_on_period() {
        let with_season = default_candidates(12);
        assert!(with_season
            .iter()
            .any(|s| matches!(s, ModelSpec::HoltWinters { .. })));
        let without = default_candidates(1);
        assert!(without.iter().any(|s| matches!(s, ModelSpec::Arima { .. })));
        assert!(!without
            .iter()
            .any(|s| matches!(s, ModelSpec::HoltWinters { .. })));
    }

    #[test]
    fn seasonal_series_prefers_seasonal_model() {
        let series = seasonal_series(72, 12);
        let report = select_best_model(
            &series,
            &default_candidates(12),
            AccuracyMeasure::Smape,
            0.8,
            &FitOptions::default(),
        )
        .unwrap();
        assert!(
            matches!(
                report.spec,
                ModelSpec::HoltWinters { .. } | ModelSpec::Sarima { .. }
            ),
            "picked {:?}",
            report.spec
        );
        assert!(report.error < 0.05, "error {}", report.error);
    }

    #[test]
    fn trend_series_prefers_trend_capable_model() {
        let values: Vec<f64> = (0..40).map(|t| 10.0 + 3.0 * t as f64).collect();
        let series = TimeSeries::new(values, Granularity::Yearly);
        let report = select_best_model(
            &series,
            &default_candidates(1),
            AccuracyMeasure::Smape,
            0.8,
            &FitOptions::default(),
        )
        .unwrap();
        // SES cannot follow a steep trend; Holt or ARIMA must win.
        assert_ne!(report.spec, ModelSpec::Ses, "SES should lose on trend data");
    }

    #[test]
    fn too_short_series_returns_none() {
        let series = TimeSeries::new(vec![1.0], Granularity::Monthly);
        assert!(select_best_model(
            &series,
            &default_candidates(12),
            AccuracyMeasure::Smape,
            0.8,
            &FitOptions::default(),
        )
        .is_none());
    }

    #[test]
    fn report_contains_all_candidates() {
        let series = seasonal_series(72, 4);
        let specs = default_candidates(4);
        let report = select_best_model(
            &series,
            &specs,
            AccuracyMeasure::Smape,
            0.8,
            &FitOptions::default(),
        )
        .unwrap();
        assert_eq!(report.candidates.len(), specs.len());
        let winner_err = report
            .candidates
            .iter()
            .find(|(s, _)| *s == report.spec)
            .unwrap()
            .1;
        assert!(report
            .candidates
            .iter()
            .all(|(_, e)| *e >= winner_err || !e.is_finite()));
    }
}
