//! Numerical optimization for model parameter estimation.
//!
//! §IV-B.1 of the paper: *"Creating a forecast model requires estimating
//! its parameters using standard local (e.g., Hill-Climbing) or global
//! (e.g., Simulated Annealing) optimization algorithms"*. This module
//! provides those two, plus the Nelder–Mead simplex (a robust default for
//! the low-dimensional smoothing objectives) and a coarse grid search used
//! to seed the local methods.
//!
//! All optimizers minimize a boxed [`Objective`] subject to per-dimension
//! box constraints; candidate points outside the box are clamped to it,
//! which is appropriate for smoothing parameters in `(0, 1)` and ARMA
//! coefficients constrained to `(-1, 1)`.

use fdc_rng::Rng;

/// Records one optimizer run into the metrics registry
/// (`optimize.<algo>.runs` / `optimize.<algo>.evals`), so the advisor's
/// objective-evaluation budget is observable per algorithm.
fn record_run(algo: &str, evaluations: usize) {
    fdc_obs::counter(&fdc_obs::names::optimize_runs(algo)).incr();
    fdc_obs::counter(&fdc_obs::names::optimize_evals(algo)).add(evaluations as u64);
}

/// A function to minimize, with box constraints.
pub trait Objective {
    /// Number of parameters.
    fn dim(&self) -> usize;

    /// Evaluates the objective at `x` (must have length `dim()`).
    fn eval(&self, x: &[f64]) -> f64;

    /// Per-dimension inclusive bounds `(lo, hi)`.
    fn bounds(&self) -> Vec<(f64, f64)>;
}

/// Implements [`Objective`] for a closure plus explicit bounds —
/// convenient in tests and for the model-fitting objectives.
pub struct FnObjective<F: Fn(&[f64]) -> f64> {
    f: F,
    bounds: Vec<(f64, f64)>,
}

impl<F: Fn(&[f64]) -> f64> FnObjective<F> {
    /// Wraps closure `f` with the given box constraints.
    pub fn new(bounds: Vec<(f64, f64)>, f: F) -> Self {
        FnObjective { f, bounds }
    }
}

impl<F: Fn(&[f64]) -> f64> Objective for FnObjective<F> {
    fn dim(&self) -> usize {
        self.bounds.len()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.bounds.clone()
    }
}

/// Result of a minimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations consumed.
    pub evaluations: usize,
}

/// A minimization strategy.
pub trait Optimizer {
    /// Minimizes `objective` starting from `x0`.
    fn minimize(&self, objective: &dyn Objective, x0: &[f64]) -> OptimizeResult;
}

fn clamp_to_bounds(x: &mut [f64], bounds: &[(f64, f64)]) {
    for (v, &(lo, hi)) in x.iter_mut().zip(bounds) {
        *v = v.clamp(lo, hi);
    }
}

fn eval_clamped(
    objective: &dyn Objective,
    bounds: &[(f64, f64)],
    x: &mut [f64],
    evals: &mut usize,
) -> f64 {
    clamp_to_bounds(x, bounds);
    *evals += 1;
    let v = objective.eval(x);
    if v.is_nan() {
        f64::INFINITY
    } else {
        v
    }
}

/// Nelder–Mead downhill simplex with adaptive restarts suppressed —
/// the objectives here are smooth enough that a single pass suffices.
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Maximum objective evaluations.
    pub max_evaluations: usize,
    /// Convergence tolerance on the simplex value spread.
    pub tolerance: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            max_evaluations: 400,
            tolerance: 1e-9,
        }
    }
}

impl Optimizer for NelderMead {
    fn minimize(&self, objective: &dyn Objective, x0: &[f64]) -> OptimizeResult {
        let n = objective.dim();
        assert_eq!(x0.len(), n, "x0 dimension mismatch");
        let bounds = objective.bounds();
        let mut evals = 0usize;

        // Build the initial simplex: x0 plus a perturbation along each axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        let mut first = x0.to_vec();
        let v0 = eval_clamped(objective, &bounds, &mut first, &mut evals);
        simplex.push((first, v0));
        for i in 0..n {
            let mut p = x0.to_vec();
            let span = bounds[i].1 - bounds[i].0;
            let step = if span.is_finite() && span > 0.0 {
                0.1 * span
            } else {
                0.1 * p[i].abs().max(1.0)
            };
            p[i] += step;
            let v = eval_clamped(objective, &bounds, &mut p, &mut evals);
            simplex.push((p, v));
        }

        const ALPHA: f64 = 1.0; // reflection
        const GAMMA: f64 = 2.0; // expansion
        const RHO: f64 = 0.5; // contraction
        const SIGMA: f64 = 0.5; // shrink

        while evals < self.max_evaluations {
            simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
            let best = simplex[0].1;
            let worst = simplex[n].1;
            // Converged only when both the value spread AND the simplex
            // extent are tiny — a value-only criterion stops prematurely on
            // flat or symmetric objectives.
            let x_spread = simplex[1..]
                .iter()
                .flat_map(|(p, _)| p.iter().zip(&simplex[0].0).map(|(a, b)| (a - b).abs()))
                .fold(0.0f64, f64::max);
            if (worst - best).abs() <= self.tolerance * (1.0 + best.abs())
                && x_spread <= self.tolerance.sqrt()
            {
                break;
            }

            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; n];
            for (p, _) in &simplex[..n] {
                for (c, v) in centroid.iter_mut().zip(p) {
                    *c += v / n as f64;
                }
            }

            let reflect = |coef: f64| -> Vec<f64> {
                centroid
                    .iter()
                    .zip(&simplex[n].0)
                    .map(|(c, w)| c + coef * (c - w))
                    .collect()
            };

            let mut xr = reflect(ALPHA);
            let fr = eval_clamped(objective, &bounds, &mut xr, &mut evals);
            if fr < simplex[0].1 {
                // Try to expand.
                let mut xe = reflect(GAMMA);
                let fe = eval_clamped(objective, &bounds, &mut xe, &mut evals);
                simplex[n] = if fe < fr { (xe, fe) } else { (xr, fr) };
            } else if fr < simplex[n - 1].1 {
                simplex[n] = (xr, fr);
            } else {
                // Contract toward the centroid.
                let mut xc: Vec<f64> = centroid
                    .iter()
                    .zip(&simplex[n].0)
                    .map(|(c, w)| c + RHO * (w - c))
                    .collect();
                let fc = eval_clamped(objective, &bounds, &mut xc, &mut evals);
                if fc < simplex[n].1 {
                    simplex[n] = (xc, fc);
                } else {
                    // Shrink all vertices toward the best.
                    let best_point = simplex[0].0.clone();
                    for entry in simplex.iter_mut().skip(1) {
                        let mut p: Vec<f64> = best_point
                            .iter()
                            .zip(&entry.0)
                            .map(|(b, v)| b + SIGMA * (v - b))
                            .collect();
                        let fv = eval_clamped(objective, &bounds, &mut p, &mut evals);
                        *entry = (p, fv);
                    }
                }
            }
        }

        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (x, value) = simplex.swap_remove(0);
        record_run("nelder_mead", evals);
        OptimizeResult {
            x,
            value,
            evaluations: evals,
        }
    }
}

/// Local coordinate hill climbing with geometric step shrinking — the
/// "standard local" estimator the paper names.
#[derive(Debug, Clone)]
pub struct HillClimbing {
    /// Maximum objective evaluations.
    pub max_evaluations: usize,
    /// Initial step as a fraction of each bound span.
    pub initial_step: f64,
    /// Step shrink factor applied when no coordinate move improves.
    pub shrink: f64,
    /// Stop when the step fraction drops below this value.
    pub min_step: f64,
}

impl Default for HillClimbing {
    fn default() -> Self {
        HillClimbing {
            max_evaluations: 400,
            initial_step: 0.25,
            shrink: 0.5,
            min_step: 1e-6,
        }
    }
}

impl Optimizer for HillClimbing {
    fn minimize(&self, objective: &dyn Objective, x0: &[f64]) -> OptimizeResult {
        let n = objective.dim();
        assert_eq!(x0.len(), n, "x0 dimension mismatch");
        let bounds = objective.bounds();
        let spans: Vec<f64> = bounds
            .iter()
            .map(|&(lo, hi)| {
                let s = hi - lo;
                if s.is_finite() && s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        let mut evals = 0usize;
        let mut x = x0.to_vec();
        let mut fx = eval_clamped(objective, &bounds, &mut x, &mut evals);
        let mut step = self.initial_step;

        while step > self.min_step && evals < self.max_evaluations {
            let mut improved = false;
            for i in 0..n {
                for dir in [1.0, -1.0] {
                    if evals >= self.max_evaluations {
                        break;
                    }
                    let mut cand = x.clone();
                    cand[i] += dir * step * spans[i];
                    let fc = eval_clamped(objective, &bounds, &mut cand, &mut evals);
                    if fc < fx {
                        x = cand;
                        fx = fc;
                        improved = true;
                        break; // keep climbing from the improved point
                    }
                }
            }
            if !improved {
                step *= self.shrink;
            }
        }

        record_run("hill_climbing", evals);
        OptimizeResult {
            x,
            value: fx,
            evaluations: evals,
        }
    }
}

/// Simulated annealing with Gaussian proposal moves and geometric cooling
/// — the "standard global" estimator the paper names.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// Maximum objective evaluations.
    pub max_evaluations: usize,
    /// Initial temperature relative to the initial objective value.
    pub initial_temperature: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// Proposal standard deviation as a fraction of each bound span.
    pub proposal_scale: f64,
    /// RNG seed for reproducible estimation.
    pub seed: u64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            max_evaluations: 600,
            initial_temperature: 1.0,
            cooling: 0.995,
            proposal_scale: 0.15,
            seed: 0x5eed,
        }
    }
}

impl SimulatedAnnealing {
    /// Draws a standard normal sample via Box–Muller (keeps us independent
    /// of external distribution crates).
    fn standard_normal(rng: &mut Rng) -> f64 {
        let u1: f64 = rng.f64_range(f64::EPSILON, 1.0);
        let u2: f64 = rng.f64_range(0.0, 1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Optimizer for SimulatedAnnealing {
    fn minimize(&self, objective: &dyn Objective, x0: &[f64]) -> OptimizeResult {
        let n = objective.dim();
        assert_eq!(x0.len(), n, "x0 dimension mismatch");
        let bounds = objective.bounds();
        let spans: Vec<f64> = bounds
            .iter()
            .map(|&(lo, hi)| {
                let s = hi - lo;
                if s.is_finite() && s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut evals = 0usize;

        let mut current = x0.to_vec();
        let mut f_current = eval_clamped(objective, &bounds, &mut current, &mut evals);
        let mut best = current.clone();
        let mut f_best = f_current;
        let mut temperature = self.initial_temperature * (1.0 + f_current.abs());

        while evals < self.max_evaluations {
            let mut cand = current.clone();
            for (i, c) in cand.iter_mut().enumerate() {
                *c += Self::standard_normal(&mut rng) * self.proposal_scale * spans[i];
            }
            let f_cand = eval_clamped(objective, &bounds, &mut cand, &mut evals);
            let accept = f_cand <= f_current || {
                let delta = f_cand - f_current;
                rng.f64() < (-delta / temperature.max(1e-12)).exp()
            };
            if accept {
                current = cand;
                f_current = f_cand;
                if f_current < f_best {
                    best = current.clone();
                    f_best = f_current;
                }
            }
            temperature *= self.cooling;
        }

        record_run("simulated_annealing", evals);
        OptimizeResult {
            x: best,
            value: f_best,
            evaluations: evals,
        }
    }
}

/// Uniform grid search over the bound box — used to seed local optimizers
/// with a decent starting point for multi-modal objectives (ARMA CSS).
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Grid points per dimension.
    pub points_per_dim: usize,
}

impl Default for GridSearch {
    fn default() -> Self {
        GridSearch { points_per_dim: 5 }
    }
}

impl Optimizer for GridSearch {
    fn minimize(&self, objective: &dyn Objective, _x0: &[f64]) -> OptimizeResult {
        let n = objective.dim();
        let bounds = objective.bounds();
        let k = self.points_per_dim.max(1);
        let mut evals = 0usize;
        let mut best: Option<(Vec<f64>, f64)> = None;

        // Iterate over the kⁿ grid with a mixed-radix counter.
        let total = k.pow(n as u32);
        let mut point = vec![0.0; n];
        for idx in 0..total {
            let mut rem = idx;
            for (i, p) in point.iter_mut().enumerate() {
                let pos = rem % k;
                rem /= k;
                let (lo, hi) = bounds[i];
                // Keep grid points strictly inside open intervals like (0,1).
                *p = lo + (hi - lo) * (pos as f64 + 0.5) / k as f64;
            }
            evals += 1;
            let v = objective.eval(&point);
            let v = if v.is_nan() { f64::INFINITY } else { v };
            if best.as_ref().is_none_or(|(_, bv)| v < *bv) {
                best = Some((point.clone(), v));
            }
        }

        let (x, value) = best.expect("grid search evaluated at least one point");
        record_run("grid_search", evals);
        OptimizeResult {
            x,
            value,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shifted quadratic bowl with minimum at (0.3, 0.7).
    fn bowl() -> FnObjective<impl Fn(&[f64]) -> f64> {
        FnObjective::new(vec![(0.0, 1.0), (0.0, 1.0)], |x| {
            (x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2)
        })
    }

    #[test]
    fn nelder_mead_finds_bowl_minimum() {
        let r = NelderMead::default().minimize(&bowl(), &[0.9, 0.1]);
        assert!((r.x[0] - 0.3).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] - 0.7).abs() < 1e-3, "{:?}", r.x);
        assert!(r.value < 1e-6);
    }

    #[test]
    fn hill_climbing_finds_bowl_minimum() {
        let r = HillClimbing::default().minimize(&bowl(), &[0.9, 0.1]);
        assert!((r.x[0] - 0.3).abs() < 1e-2, "{:?}", r.x);
        assert!((r.x[1] - 0.7).abs() < 1e-2, "{:?}", r.x);
    }

    #[test]
    fn annealing_approaches_bowl_minimum() {
        let sa = SimulatedAnnealing {
            max_evaluations: 2000,
            ..SimulatedAnnealing::default()
        };
        let r = sa.minimize(&bowl(), &[0.9, 0.1]);
        assert!(r.value < 1e-2, "value {}", r.value);
    }

    #[test]
    fn annealing_is_deterministic_for_fixed_seed() {
        let sa = SimulatedAnnealing::default();
        let a = sa.minimize(&bowl(), &[0.5, 0.5]);
        let b = sa.minimize(&bowl(), &[0.5, 0.5]);
        assert_eq!(a.x, b.x);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn annealing_escapes_local_minimum() {
        // Double well: local min near x=0.2 (value 0.05), global near
        // x=0.8 (value 0.0).
        let obj = FnObjective::new(vec![(0.0, 1.0)], |x| {
            let a = (x[0] - 0.2).powi(2) + 0.05;
            let b = (x[0] - 0.8).powi(2);
            a.min(b)
        });
        let sa = SimulatedAnnealing {
            max_evaluations: 3000,
            proposal_scale: 0.3,
            ..SimulatedAnnealing::default()
        };
        let r = sa.minimize(&obj, &[0.2]);
        assert!((r.x[0] - 0.8).abs() < 0.05, "stuck at {:?}", r.x);
    }

    #[test]
    fn grid_search_stays_inside_bounds_and_finds_cell() {
        let r = GridSearch { points_per_dim: 9 }.minimize(&bowl(), &[0.0, 0.0]);
        assert_eq!(r.evaluations, 81);
        assert!(r.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((r.x[0] - 0.3).abs() < 0.1);
        assert!((r.x[1] - 0.7).abs() < 0.1);
    }

    #[test]
    fn optimizers_respect_bounds() {
        // Minimum of (x+2)² over [0,1] is at the boundary x=0.
        let obj = FnObjective::new(vec![(0.0, 1.0)], |x| (x[0] + 2.0).powi(2));
        for opt in [
            &NelderMead::default() as &dyn Optimizer,
            &HillClimbing::default(),
            &SimulatedAnnealing::default(),
        ] {
            let r = opt.minimize(&obj, &[0.5]);
            assert!(r.x[0] >= 0.0 && r.x[0] <= 1.0);
            assert!(r.x[0] < 0.05, "expected boundary minimum, got {:?}", r.x);
        }
    }

    #[test]
    fn nan_objective_treated_as_infinite() {
        let obj = FnObjective::new(vec![(0.0, 1.0)], |x| {
            if x[0] < 0.5 {
                f64::NAN
            } else {
                (x[0] - 0.75).powi(2)
            }
        });
        let r = NelderMead::default().minimize(&obj, &[0.9]);
        assert!((r.x[0] - 0.75).abs() < 1e-2);
        assert!(r.value.is_finite());
    }

    #[test]
    fn evaluation_budget_respected() {
        let obj = bowl();
        let nm = NelderMead {
            max_evaluations: 10,
            ..NelderMead::default()
        };
        // Simplex construction costs dim+1 evals; allow small overshoot of
        // one iteration but never unbounded.
        let r = nm.minimize(&obj, &[0.5, 0.5]);
        assert!(r.evaluations <= 20);
    }
}
