//! Residual diagnostics for fitted forecast models.
//!
//! A well-specified model leaves residuals that look like white noise.
//! This module provides the standard checks — the sample autocorrelation
//! function and the Ljung–Box portmanteau statistic — plus a convenience
//! [`ResidualDiagnostics`] report computed from honest one-step-ahead
//! errors (the model is fitted on a warm-up prefix and then replayed
//! through its incremental update over the remainder). The maintenance
//! processor's threshold-based invalidation and model selection both
//! benefit from knowing *when* a model family stops being adequate.

use crate::model::{FitOptions, ModelSpec};
use crate::series::TimeSeries;

/// Sample autocorrelation of `x` at the given lag (0 for degenerate
/// input).
pub fn autocorrelation(x: &[f64], lag: usize) -> f64 {
    let n = x.len();
    if n < 2 || lag >= n {
        return 0.0;
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    if var < 1e-300 {
        return 0.0;
    }
    let cov = (lag..n)
        .map(|t| (x[t] - mean) * (x[t - lag] - mean))
        .sum::<f64>()
        / n as f64;
    cov / var
}

/// The Ljung–Box Q statistic over the first `lags` autocorrelations:
///
/// ```text
/// Q = n (n + 2) Σ_{k=1..m} ρ̂_k² / (n − k)
/// ```
///
/// Under the white-noise null hypothesis Q is χ²-distributed with `m`
/// degrees of freedom (minus the number of fitted parameters). Returns
/// `(q, degrees_of_freedom)`.
pub fn ljung_box(residuals: &[f64], lags: usize, fitted_params: usize) -> (f64, usize) {
    let n = residuals.len();
    if n < 3 || lags == 0 {
        return (0.0, 0);
    }
    let m = lags.min(n - 1);
    let q = (1..=m)
        .map(|k| {
            let rho = autocorrelation(residuals, k);
            rho * rho / (n - k) as f64
        })
        .sum::<f64>()
        * n as f64
        * (n + 2) as f64;
    (q, m.saturating_sub(fitted_params).max(1))
}

/// Approximate upper χ² critical value at the 5% level via the
/// Wilson–Hilferty cube approximation — adequate for a pass/fail residual
/// check without a stats dependency.
pub fn chi_squared_critical_5pct(dof: usize) -> f64 {
    let k = dof.max(1) as f64;
    let z = 1.6449; // standard normal 95% quantile
    let a = 1.0 - 2.0 / (9.0 * k);
    let cube = a + z * (2.0 / (9.0 * k)).sqrt();
    k * cube.powi(3)
}

/// A compact residual report for one model specification on one series.
#[derive(Debug, Clone)]
pub struct ResidualDiagnostics {
    /// Honest one-step-ahead residuals over the post-warm-up part.
    pub residuals: Vec<f64>,
    /// Residual mean (should be near zero).
    pub mean: f64,
    /// Residual standard deviation.
    pub std_dev: f64,
    /// Lag-1 autocorrelation of the residuals.
    pub lag1_autocorrelation: f64,
    /// Ljung–Box Q over `min(10, n/4)` lags.
    pub ljung_box_q: f64,
    /// Degrees of freedom of the Q statistic.
    pub ljung_box_dof: usize,
}

impl ResidualDiagnostics {
    /// Builds the report from raw residuals (`fitted_params` adjusts the
    /// Ljung–Box degrees of freedom).
    pub fn from_residuals(residuals: Vec<f64>, fitted_params: usize) -> ResidualDiagnostics {
        let n = residuals.len().max(1) as f64;
        let mean = residuals.iter().sum::<f64>() / n;
        let var = residuals
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        let lags = (residuals.len() / 4).clamp(1, 10);
        let (q, dof) = ljung_box(&residuals, lags, fitted_params);
        ResidualDiagnostics {
            lag1_autocorrelation: autocorrelation(&residuals, 1),
            ljung_box_q: q,
            ljung_box_dof: dof,
            mean,
            std_dev: var.sqrt(),
            residuals,
        }
    }

    /// Fits `spec` on the first `warmup` observations of `series`, then
    /// replays the remaining observations through the model's incremental
    /// update, collecting honest one-step-ahead residuals.
    pub fn compute(
        spec: &ModelSpec,
        series: &TimeSeries,
        warmup: usize,
        options: &FitOptions,
    ) -> crate::Result<ResidualDiagnostics> {
        let x = series.values();
        let lo = spec.min_observations();
        let hi = x.len().saturating_sub(1);
        if lo > hi {
            return Err(crate::model::ForecastError::SeriesTooShort {
                required: lo + 1,
                got: x.len(),
            });
        }
        let warmup = warmup.clamp(lo, hi);
        let prefix =
            TimeSeries::with_start(x[..warmup].to_vec(), series.start(), series.granularity());
        let mut model = spec.fit(&prefix, options)?;
        let mut residuals = Vec::with_capacity(x.len() - warmup);
        for &actual in &x[warmup..] {
            let predicted = model.forecast(1)[0];
            residuals.push(actual - predicted);
            model.update(actual);
        }
        Ok(Self::from_residuals(residuals, model.params().len()))
    }

    /// Whether the residuals pass the 5% Ljung–Box white-noise check.
    pub fn looks_like_white_noise(&self) -> bool {
        self.ljung_box_q <= chi_squared_critical_5pct(self.ljung_box_dof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SeasonalKind;
    use crate::series::Granularity;

    fn lcg_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn autocorrelation_of_constant_is_zero() {
        assert_eq!(autocorrelation(&[3.0; 10], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative() {
        let x: Vec<f64> = (0..50)
            .map(|t| if t % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&x, 1) < -0.9);
        assert!(autocorrelation(&x, 2) > 0.9);
    }

    #[test]
    fn white_noise_passes_ljung_box() {
        let noise = lcg_noise(300, 42);
        let (q, dof) = ljung_box(&noise, 10, 0);
        assert!(
            q <= chi_squared_critical_5pct(dof) * 1.2,
            "white noise flagged: Q={q}, crit={}",
            chi_squared_critical_5pct(dof)
        );
    }

    #[test]
    fn strongly_correlated_series_fails_ljung_box() {
        // AR(1) with φ=0.9.
        let noise = lcg_noise(300, 7);
        let mut x = vec![0.0];
        for t in 1..300 {
            let prev = x[t - 1];
            x.push(0.9 * prev + noise[t]);
        }
        let (q, dof) = ljung_box(&x, 10, 0);
        assert!(q > chi_squared_critical_5pct(dof) * 3.0, "Q={q}");
    }

    #[test]
    fn chi_squared_critical_increases_with_dof() {
        assert!(chi_squared_critical_5pct(1) < chi_squared_critical_5pct(10));
        // Known value: χ²(10, 0.95) ≈ 18.31.
        assert!((chi_squared_critical_5pct(10) - 18.31).abs() < 0.5);
    }

    #[test]
    fn good_model_leaves_whiter_residuals_than_bad_model() {
        // Strongly seasonal series: Holt-Winters should leave near-white
        // residuals; SES leaves the seasonal structure in them.
        let noise = lcg_noise(120, 3);
        let values: Vec<f64> = (0..120)
            .map(|t| {
                100.0
                    + 30.0 * (2.0 * std::f64::consts::PI * (t % 12) as f64 / 12.0).sin()
                    + noise[t] * 4.0
            })
            .collect();
        let series = TimeSeries::new(values, Granularity::Monthly);
        let opts = FitOptions::default();
        let hw_spec = ModelSpec::HoltWinters {
            period: 12,
            seasonal: SeasonalKind::Additive,
        };
        let d_hw = ResidualDiagnostics::compute(&hw_spec, &series, 48, &opts).unwrap();
        let d_ses = ResidualDiagnostics::compute(&ModelSpec::Ses, &series, 48, &opts).unwrap();
        assert!(
            d_hw.ljung_box_q < d_ses.ljung_box_q,
            "HW Q {} should be below SES Q {}",
            d_hw.ljung_box_q,
            d_ses.ljung_box_q
        );
        assert!(d_hw.std_dev < d_ses.std_dev);
    }

    #[test]
    fn diagnostics_report_is_complete() {
        let values: Vec<f64> = (0..40).map(|t| 10.0 + t as f64).collect();
        let series = TimeSeries::new(values, Granularity::Monthly);
        let d = ResidualDiagnostics::compute(&ModelSpec::Holt, &series, 5, &FitOptions::default())
            .unwrap();
        assert_eq!(d.residuals.len(), 35);
        assert!(d.std_dev >= 0.0);
        assert!(d.ljung_box_dof >= 1);
        // A linear series is fit perfectly: residuals white / tiny.
        assert!(d.std_dev < 1e-6);
    }

    #[test]
    fn compute_rejects_unfittable_spec() {
        let series = TimeSeries::new(vec![1.0, 2.0, 3.0], Granularity::Monthly);
        let spec = ModelSpec::HoltWinters {
            period: 12,
            seasonal: SeasonalKind::Additive,
        };
        assert!(ResidualDiagnostics::compute(&spec, &series, 2, &FitOptions::default()).is_err());
    }
}
