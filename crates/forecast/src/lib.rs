//! # fdc-forecast
//!
//! Time series forecasting substrate for the data-cube reproduction.
//!
//! The paper (§II-B) employs **exponential smoothing** and **ARIMA** models
//! — "thoroughly examined, able to model a wide range of real world time
//! series, and usually computationally more efficient than elaborate
//! machine learning approaches". This crate implements both families from
//! scratch:
//!
//! * [`SimpleExponentialSmoothing`](smoothing::SimpleExponentialSmoothing),
//! * [`Holt`](smoothing::Holt) (double exponential smoothing with trend)
//!   and its damped-trend variant [`DampedHolt`](smoothing::DampedHolt),
//! * [`HoltWinters`](smoothing::HoltWinters) (triple exponential smoothing,
//!   additive or multiplicative seasonality — the model that "worked best in
//!   most cases" in §VI-A),
//! * [`Arima`] / seasonal [`Sarima`] estimated
//!   by conditional sum of squares,
//!
//! together with the numerical optimization machinery the paper references
//! for parameter estimation (§IV-B.1): local [`HillClimbing`]
//! (hill climbing), global [`SimulatedAnnealing`] (simulated annealing),
//! plus the standard [`NelderMead`] simplex and [`GridSearch`] coarse
//! initialization.
//!
//! Accuracy is measured with [`smape`], the symmetric mean
//! absolute percentage error of Eq. (4); other conventional measures are
//! provided for completeness and tests.
//!
//! All models implement [`ForecastModel`], which also supports the
//! *incremental maintenance* used by F²DB (§V): [`ForecastModel::update`]
//! rolls the model state forward by one observation without re-estimating
//! parameters, and [`ForecastModel::refit`] performs full parameter
//! re-estimation.

//! ## Example
//!
//! ```
//! use fdc_forecast::{FitOptions, Granularity, ModelSpec, SeasonalKind, TimeSeries};
//!
//! let values: Vec<f64> = (0..48)
//!     .map(|t| 100.0 + t as f64 + 10.0 * ((t % 12) as f64 / 12.0 * std::f64::consts::TAU).sin())
//!     .collect();
//! let series = TimeSeries::new(values, Granularity::Monthly);
//! let spec = ModelSpec::HoltWinters { period: 12, seasonal: SeasonalKind::Additive };
//! let mut model = spec.fit(&series, &FitOptions::default()).unwrap();
//! let forecast = model.forecast(12);
//! assert_eq!(forecast.len(), 12);
//! model.update(160.0); // incremental maintenance: absorb a new actual
//! ```

pub mod accuracy;
pub mod arima;
pub mod auto;
pub mod backtest;
pub mod decompose;
pub mod diagnostics;
pub mod model;
pub mod naive;
pub mod optimize;
pub mod sampling;
pub mod selection;
pub mod series;
pub mod smoothing;
pub mod transform;

pub use accuracy::{mae, mape, mase, rmse, smape, AccuracyMeasure};
pub use arima::{Arima, ArimaOrder, Sarima, SeasonalOrder};
pub use auto::{auto_arima, AutoArimaOptions, AutoArimaReport};
pub use backtest::{backtest, backtest_select, BacktestOptions, BacktestReport};
pub use decompose::{decompose, suggest_seasonal_kind, Decomposition};
pub use diagnostics::{autocorrelation, ljung_box, ResidualDiagnostics};
pub use model::{FitOptions, ForecastError, ForecastModel, ModelSpec, ModelState, SeasonalKind};
pub use naive::{NaiveKind, NaiveModel};
pub use optimize::{
    GridSearch, HillClimbing, NelderMead, Objective, OptimizeResult, Optimizer, SimulatedAnnealing,
};
pub use sampling::{stratified_estimate, z_quantile, HtEstimate, StratumSample};
pub use selection::{select_best_model, SelectionReport};
pub use series::{Granularity, TimeSeries};
pub use transform::BoxCox;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ForecastError>;
