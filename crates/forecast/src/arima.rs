//! ARIMA and seasonal ARIMA models estimated by conditional sum of
//! squares (CSS).
//!
//! The seasonal model is
//!
//! ```text
//! φ(B) Φ(Bˢ) (1−B)ᵈ (1−Bˢ)ᴰ x_t = θ(B) Θ(Bˢ) ε_t
//! ```
//!
//! Both lag polynomials are expanded into plain ARMA coefficient vectors
//! over the differenced, mean-centered series `w_t`, residuals are
//! computed with the conditional recursion (pre-sample values treated as
//! zero), and the raw coefficients are estimated by grid-seeded numerical
//! optimization (§IV-B.1 of the paper: parameter estimation "involves
//! numerical optimization methods that iterate several times over the
//! data").
//!
//! Incremental maintenance (needed by F²DB, §V) keeps per-stage
//! differencing ring buffers plus short histories of `w` and residuals, so
//! absorbing one new observation is `O(p + q + d + D·s)`.

use crate::model::{
    FitOptions, ForecastError, ForecastModel, ModelSpec, ModelState, OptimizerKind,
};
use crate::optimize::{
    FnObjective, GridSearch, HillClimbing, NelderMead, Optimizer, SimulatedAnnealing,
};
use crate::series::TimeSeries;

/// Bound for individual AR/MA coefficients; keeps the recursions stable
/// while covering virtually all practically identified models.
const COEF_BOUND: (f64, f64) = (-0.95, 0.95);

/// Non-seasonal order (p, d, q).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArimaOrder {
    /// Autoregressive order.
    pub p: usize,
    /// Degree of regular differencing.
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
}

impl ArimaOrder {
    /// Creates an order triple.
    pub fn new(p: usize, d: usize, q: usize) -> Self {
        ArimaOrder { p, d, q }
    }
}

/// Seasonal order (P, D, Q) with period `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeasonalOrder {
    /// Seasonal autoregressive order.
    pub p: usize,
    /// Degree of seasonal differencing.
    pub d: usize,
    /// Seasonal moving-average order.
    pub q: usize,
    /// Seasonal period (1 disables all seasonal terms).
    pub period: usize,
}

impl SeasonalOrder {
    /// Creates a seasonal order.
    pub fn new(p: usize, d: usize, q: usize, period: usize) -> Self {
        SeasonalOrder { p, d, q, period }
    }

    /// The all-zero seasonal order (plain ARIMA).
    pub fn none() -> Self {
        SeasonalOrder {
            p: 0,
            d: 0,
            q: 0,
            period: 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Differencing pipeline
// ---------------------------------------------------------------------------

/// One differencing stage `(1 − B^lag)` with a ring buffer of the last
/// `lag` stage inputs, enabling both incremental differencing of new
/// observations and integration of forecasts.
#[derive(Debug, Clone, PartialEq)]
struct DiffStage {
    lag: usize,
    /// Ring buffer of the last `lag` inputs; `pos` indexes the oldest.
    buffer: Vec<f64>,
    pos: usize,
}

impl DiffStage {
    fn new(lag: usize, last_inputs: &[f64]) -> Self {
        debug_assert_eq!(last_inputs.len(), lag);
        DiffStage {
            lag,
            buffer: last_inputs.to_vec(),
            pos: 0,
        }
    }

    /// Feeds one input, returning the differenced output.
    fn push(&mut self, z: f64) -> f64 {
        let old = self.buffer[self.pos];
        self.buffer[self.pos] = z;
        self.pos = (self.pos + 1) % self.lag;
        z - old
    }

    /// Buffer contents in chronological order (oldest first).
    fn chronological(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.lag);
        for i in 0..self.lag {
            out.push(self.buffer[(self.pos + i) % self.lag]);
        }
        out
    }
}

/// The full differencing pipeline: `D` seasonal stages followed by `d`
/// regular stages.
#[derive(Debug, Clone, PartialEq)]
struct Differencer {
    stages: Vec<DiffStage>,
}

impl Differencer {
    /// Batch-differences `x`, returning the differenced series `w` and the
    /// pipeline primed with the tail of `x` for incremental use.
    fn batch(x: &[f64], d: usize, seasonal_d: usize, period: usize) -> Option<(Vec<f64>, Self)> {
        let mut lags = vec![period; seasonal_d];
        lags.extend(std::iter::repeat_n(1, d));
        let total: usize = lags.iter().sum();
        if x.len() <= total {
            return None;
        }
        let mut current = x.to_vec();
        let mut stages = Vec::with_capacity(lags.len());
        for lag in lags {
            let next: Vec<f64> = (lag..current.len())
                .map(|t| current[t] - current[t - lag])
                .collect();
            stages.push(DiffStage::new(lag, &current[current.len() - lag..]));
            current = next;
        }
        Some((current, Differencer { stages }))
    }

    /// Incrementally differences one new raw observation.
    fn push(&mut self, x: f64) -> f64 {
        let mut z = x;
        for stage in &mut self.stages {
            z = stage.push(z);
        }
        z
    }

    /// Integrates `w_forecasts` back to the original scale using the
    /// buffered stage tails (without mutating the pipeline).
    fn integrate(&self, w_forecasts: &[f64]) -> Vec<f64> {
        let mut current = w_forecasts.to_vec();
        for stage in self.stages.iter().rev() {
            let mut hist = stage.chronological();
            let lag = stage.lag;
            let mut out = Vec::with_capacity(current.len());
            for &w in &current {
                let z = w + hist[hist.len() - lag];
                hist.push(z);
                out.push(z);
            }
            current = out;
        }
        current
    }

    /// Flattens all stage buffers (chronological per stage) for storage.
    fn flatten(&self) -> Vec<f64> {
        self.stages.iter().flat_map(|s| s.chronological()).collect()
    }

    /// Rebuilds the pipeline from flattened buffers.
    fn restore(d: usize, seasonal_d: usize, period: usize, flat: &[f64]) -> Option<Self> {
        let mut lags = vec![period; seasonal_d];
        lags.extend(std::iter::repeat_n(1, d));
        if flat.len() != lags.iter().sum::<usize>() {
            return None;
        }
        let mut stages = Vec::new();
        let mut off = 0;
        for lag in lags {
            stages.push(DiffStage::new(lag, &flat[off..off + lag]));
            off += lag;
        }
        Some(Differencer { stages })
    }
}

// ---------------------------------------------------------------------------
// Polynomial expansion
// ---------------------------------------------------------------------------

/// Expands `(1 − Σ cᵢ Bⁱ)(1 − Σ Cⱼ B^{s·j})` into the coefficient vector
/// `a` such that the product equals `1 − Σ a_k B^k` (AR convention).
fn expand_ar(nonseasonal: &[f64], seasonal: &[f64], period: usize) -> Vec<f64> {
    expand(nonseasonal, seasonal, period, -1.0)
}

/// Expands `(1 + Σ cᵢ Bⁱ)(1 + Σ Cⱼ B^{s·j})` into `b` such that the
/// product equals `1 + Σ b_k B^k` (MA convention).
fn expand_ma(nonseasonal: &[f64], seasonal: &[f64], period: usize) -> Vec<f64> {
    expand(nonseasonal, seasonal, period, 1.0)
}

/// Shared expansion: builds full polynomials with constant term 1 and
/// signed lag coefficients, convolves them, then extracts the lag
/// coefficients back with the same sign convention.
fn expand(nonseasonal: &[f64], seasonal: &[f64], period: usize, sign: f64) -> Vec<f64> {
    let n1 = nonseasonal.len();
    let n2 = seasonal.len() * period;
    let mut poly1 = vec![0.0; n1 + 1];
    poly1[0] = 1.0;
    for (i, &c) in nonseasonal.iter().enumerate() {
        poly1[i + 1] = sign * c;
    }
    let mut poly2 = vec![0.0; n2 + 1];
    poly2[0] = 1.0;
    for (j, &c) in seasonal.iter().enumerate() {
        poly2[(j + 1) * period] = sign * c;
    }
    // Convolution.
    let mut prod = vec![0.0; n1 + n2 + 1];
    for (i, &a) in poly1.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        for (j, &b) in poly2.iter().enumerate() {
            prod[i + j] += a * b;
        }
    }
    prod[1..].iter().map(|&v| sign * v).collect()
}

/// Conditional residual recursion shared by fitting, state priming and
/// scoring. `w` must already be mean-centered. Returns residuals (same
/// length as `w`).
fn css_residuals(w: &[f64], ar: &[f64], ma: &[f64]) -> Vec<f64> {
    let n = w.len();
    let mut e = vec![0.0; n];
    for t in 0..n {
        let mut pred = 0.0;
        for (i, &a) in ar.iter().enumerate() {
            if t > i {
                pred += a * w[t - i - 1];
            }
        }
        for (j, &b) in ma.iter().enumerate() {
            if t > j {
                pred += b * e[t - j - 1];
            }
        }
        e[t] = w[t] - pred;
    }
    e
}

fn css_objective(w: &[f64], ar: &[f64], ma: &[f64]) -> f64 {
    let e = css_residuals(w, ar, ma);
    let skip = ar.len().min(w.len());
    let count = (w.len() - skip).max(1);
    e[skip..].iter().map(|v| v * v).sum::<f64>() / count as f64
}

// ---------------------------------------------------------------------------
// Sarima
// ---------------------------------------------------------------------------

/// Seasonal ARIMA model. A plain [`Arima`] wraps this type with an
/// all-zero seasonal order.
#[derive(Debug, Clone, PartialEq)]
pub struct Sarima {
    order: ArimaOrder,
    seasonal: SeasonalOrder,
    /// Raw coefficients: φ (p), Φ (P), θ (q), Θ (Q).
    raw: Vec<f64>,
    /// Expanded AR coefficients over w.
    ar: Vec<f64>,
    /// Expanded MA coefficients over w.
    ma: Vec<f64>,
    /// Mean of the differenced training series (centering constant).
    mean: f64,
    differencer: Differencer,
    /// Recent centered w values, chronological, length = ar.len().
    recent_w: Vec<f64>,
    /// Recent residuals, chronological, length = ma.len().
    recent_e: Vec<f64>,
    observations: usize,
}

impl Sarima {
    /// Fits a SARIMA model by grid-seeded CSS minimization.
    pub fn fit(
        series: &TimeSeries,
        order: ArimaOrder,
        seasonal: SeasonalOrder,
        options: &FitOptions,
    ) -> crate::Result<Self> {
        if seasonal.period == 0 {
            return Err(ForecastError::InvalidParameter(
                "seasonal period must be at least 1".into(),
            ));
        }
        if (seasonal.p > 0 || seasonal.d > 0 || seasonal.q > 0) && seasonal.period < 2 {
            return Err(ForecastError::InvalidParameter(
                "seasonal terms require a period of at least 2".into(),
            ));
        }
        let x = series.values();
        let total_diff = order.d + seasonal.d * seasonal.period;
        let ar_len = order.p + seasonal.p * seasonal.period;
        let ma_len = order.q + seasonal.q * seasonal.period;
        let required = total_diff + ar_len + ma_len + 4;
        if x.len() < required {
            return Err(ForecastError::SeriesTooShort {
                required,
                got: x.len(),
            });
        }

        let (w_raw, differencer) = Differencer::batch(x, order.d, seasonal.d, seasonal.period)
            .ok_or(ForecastError::SeriesTooShort {
                required,
                got: x.len(),
            })?;
        let mean = w_raw.iter().sum::<f64>() / w_raw.len() as f64;
        let w: Vec<f64> = w_raw.iter().map(|v| v - mean).collect();

        let dim = order.p + seasonal.p + order.q + seasonal.q;
        let raw = if dim == 0 {
            Vec::new()
        } else {
            let obj = FnObjective::new(vec![COEF_BOUND; dim], |params| {
                let (ar, ma) = Self::expand_params(params, order, seasonal);
                css_objective(&w, &ar, &ma)
            });
            // Coarse grid seed, finer for low dimensions.
            let points = if dim <= 2 { 7 } else { 3 };
            let seed = GridSearch {
                points_per_dim: points,
            }
            .minimize(&obj, &vec![0.0; dim]);
            let max_evaluations = options.max_iterations.max(50) * dim.max(1);
            let refined = match options.optimizer {
                OptimizerKind::NelderMead => NelderMead {
                    max_evaluations,
                    ..NelderMead::default()
                }
                .minimize(&obj, &seed.x),
                OptimizerKind::HillClimbing => HillClimbing {
                    max_evaluations,
                    ..HillClimbing::default()
                }
                .minimize(&obj, &seed.x),
                OptimizerKind::SimulatedAnnealing => SimulatedAnnealing {
                    max_evaluations,
                    seed: options.seed,
                    ..SimulatedAnnealing::default()
                }
                .minimize(&obj, &seed.x),
            };
            if refined.value.is_finite() {
                refined.x
            } else {
                return Err(ForecastError::EstimationFailed(
                    "CSS objective diverged for all candidate parameters".into(),
                ));
            }
        };

        let (ar, ma) = Self::expand_params(&raw, order, seasonal);
        let e = css_residuals(&w, &ar, &ma);
        let recent_w = tail(&w, ar.len());
        let recent_e = tail(&e, ma.len());

        Ok(Sarima {
            order,
            seasonal,
            raw,
            ar,
            ma,
            mean,
            differencer,
            recent_w,
            recent_e,
            observations: x.len(),
        })
    }

    fn expand_params(
        raw: &[f64],
        order: ArimaOrder,
        seasonal: SeasonalOrder,
    ) -> (Vec<f64>, Vec<f64>) {
        let (phi, rest) = raw.split_at(order.p);
        let (cap_phi, rest) = rest.split_at(seasonal.p);
        let (theta, cap_theta) = rest.split_at(order.q);
        let ar = expand_ar(phi, cap_phi, seasonal.period);
        let ma = expand_ma(theta, cap_theta, seasonal.period);
        (ar, ma)
    }

    /// Non-seasonal order.
    pub fn order(&self) -> ArimaOrder {
        self.order
    }

    /// Seasonal order.
    pub fn seasonal_order(&self) -> SeasonalOrder {
        self.seasonal
    }

    /// Raw (unexpanded) coefficient estimates.
    pub fn raw_params(&self) -> &[f64] {
        &self.raw
    }

    fn forecast_impl(&self, horizon: usize) -> Vec<f64> {
        // Forecast recursion on the centered differenced series with
        // future shocks set to zero.
        let ar_len = self.ar.len();
        let ma_len = self.ma.len();
        let mut w_ext = self.recent_w.clone();
        let e_hist = &self.recent_e;
        let mut w_forecasts = Vec::with_capacity(horizon);
        for k in 0..horizon {
            let mut pred = 0.0;
            for (i, &a) in self.ar.iter().enumerate() {
                // Value i+1 steps back from the point being forecast.
                let idx = w_ext.len() as isize - 1 - i as isize;
                if idx >= 0 {
                    pred += a * w_ext[idx as usize];
                }
            }
            for (j, &b) in self.ma.iter().enumerate() {
                // Residuals are only known for the historical part.
                let steps_back = j + 1;
                if steps_back > k {
                    let hist_idx = e_hist.len() as isize - (steps_back - k) as isize;
                    if hist_idx >= 0 {
                        pred += b * e_hist[hist_idx as usize];
                    }
                }
            }
            if !pred.is_finite() {
                pred = 0.0;
            }
            w_ext.push(pred);
            w_forecasts.push(pred + self.mean);
            // Bound the rolling history so long horizons stay O(h·(p+q)).
            if w_ext.len() > ar_len.max(ma_len) + horizon + 1 {
                // never triggered in practice; safety against huge horizons
            }
        }
        let mut out = self.differencer.integrate(&w_forecasts);
        for v in &mut out {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        out
    }

    /// Restores from serialized state.
    pub fn from_state(state: &ModelState) -> crate::Result<Self> {
        let (order, seasonal) = match &state.spec {
            ModelSpec::Sarima {
                order,
                seasonal,
                period,
            } => (
                ArimaOrder::new(order.0, order.1, order.2),
                SeasonalOrder::new(seasonal.0, seasonal.1, seasonal.2, *period),
            ),
            _ => {
                return Err(ForecastError::InvalidState("expected SARIMA state".into()));
            }
        };
        Self::from_state_with(state, order, seasonal)
    }

    fn from_state_with(
        state: &ModelState,
        order: ArimaOrder,
        seasonal: SeasonalOrder,
    ) -> crate::Result<Self> {
        let dim = order.p + seasonal.p + order.q + seasonal.q;
        if state.params.len() != dim {
            return Err(ForecastError::InvalidState(
                "parameter count mismatch".into(),
            ));
        }
        let (ar, ma) = Self::expand_params(&state.params, order, seasonal);
        let ar_len = ar.len();
        let ma_len = ma.len();
        let diff_len = order.d + seasonal.d * seasonal.period;
        let expected = 1 + ar_len + ma_len + diff_len;
        if state.state.len() != expected {
            return Err(ForecastError::InvalidState(format!(
                "state length mismatch: expected {expected}, got {}",
                state.state.len()
            )));
        }
        let mean = state.state[0];
        let recent_w = state.state[1..1 + ar_len].to_vec();
        let recent_e = state.state[1 + ar_len..1 + ar_len + ma_len].to_vec();
        let flat = &state.state[1 + ar_len + ma_len..];
        let differencer = Differencer::restore(order.d, seasonal.d, seasonal.period, flat)
            .ok_or_else(|| ForecastError::InvalidState("bad differencer buffers".into()))?;
        Ok(Sarima {
            order,
            seasonal,
            raw: state.params.clone(),
            ar,
            ma,
            mean,
            differencer,
            recent_w,
            recent_e,
            observations: state.observations,
        })
    }

    fn state_impl(&self, spec: ModelSpec) -> ModelState {
        let mut state = vec![self.mean];
        state.extend_from_slice(&self.recent_w);
        state.extend_from_slice(&self.recent_e);
        state.extend(self.differencer.flatten());
        ModelState {
            spec,
            params: self.raw.clone(),
            state,
            observations: self.observations,
        }
    }
}

fn tail(v: &[f64], n: usize) -> Vec<f64> {
    if n == 0 {
        Vec::new()
    } else if v.len() >= n {
        v[v.len() - n..].to_vec()
    } else {
        // Pad the front with zeros (conditional convention).
        let mut out = vec![0.0; n - v.len()];
        out.extend_from_slice(v);
        out
    }
}

fn shift_push(buf: &mut [f64], v: f64) {
    if buf.is_empty() {
        return;
    }
    buf.copy_within(1.., 0);
    *buf.last_mut().expect("non-empty") = v;
}

impl ForecastModel for Sarima {
    fn name(&self) -> &'static str {
        "sarima"
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        self.forecast_impl(horizon)
    }

    fn update(&mut self, value: f64) {
        let w = self.differencer.push(value) - self.mean;
        let mut pred = 0.0;
        for (i, &a) in self.ar.iter().enumerate() {
            let idx = self.recent_w.len() as isize - 1 - i as isize;
            if idx >= 0 {
                pred += a * self.recent_w[idx as usize];
            }
        }
        for (j, &b) in self.ma.iter().enumerate() {
            let idx = self.recent_e.len() as isize - 1 - j as isize;
            if idx >= 0 {
                pred += b * self.recent_e[idx as usize];
            }
        }
        let e = w - pred;
        shift_push(&mut self.recent_w, w);
        shift_push(&mut self.recent_e, e);
        self.observations += 1;
    }

    fn refit(&mut self, series: &TimeSeries, options: &FitOptions) -> crate::Result<()> {
        *self = Self::fit(series, self.order, self.seasonal, options)?;
        Ok(())
    }

    fn params(&self) -> Vec<f64> {
        self.raw.clone()
    }

    fn state(&self) -> ModelState {
        self.state_impl(ModelSpec::Sarima {
            order: (self.order.p, self.order.d, self.order.q),
            seasonal: (self.seasonal.p, self.seasonal.d, self.seasonal.q),
            period: self.seasonal.period,
        })
    }

    fn observations(&self) -> usize {
        self.observations
    }

    fn boxed_clone(&self) -> Box<dyn ForecastModel> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Arima (non-seasonal wrapper)
// ---------------------------------------------------------------------------

/// Non-seasonal ARIMA(p, d, q); a thin wrapper over [`Sarima`] with an
/// all-zero seasonal part, kept as a distinct type so stored model state
/// identifies the family the user requested.
#[derive(Debug, Clone, PartialEq)]
pub struct Arima {
    inner: Sarima,
}

impl Arima {
    /// Fits an ARIMA(p, d, q) model by CSS.
    pub fn fit(
        series: &TimeSeries,
        order: ArimaOrder,
        options: &FitOptions,
    ) -> crate::Result<Self> {
        Ok(Arima {
            inner: Sarima::fit(series, order, SeasonalOrder::none(), options)?,
        })
    }

    /// The model order.
    pub fn order(&self) -> ArimaOrder {
        self.inner.order()
    }

    /// Raw coefficient estimates (φ then θ).
    pub fn raw_params(&self) -> &[f64] {
        self.inner.raw_params()
    }

    /// Restores from serialized state.
    pub fn from_state(state: &ModelState) -> crate::Result<Self> {
        let order = match &state.spec {
            ModelSpec::Arima { p, d, q } => ArimaOrder::new(*p, *d, *q),
            _ => return Err(ForecastError::InvalidState("expected ARIMA state".into())),
        };
        Ok(Arima {
            inner: Sarima::from_state_with(state, order, SeasonalOrder::none())?,
        })
    }
}

impl ForecastModel for Arima {
    fn name(&self) -> &'static str {
        "arima"
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        self.inner.forecast_impl(horizon)
    }

    fn update(&mut self, value: f64) {
        self.inner.update(value);
    }

    fn refit(&mut self, series: &TimeSeries, options: &FitOptions) -> crate::Result<()> {
        self.inner.refit(series, options)
    }

    fn params(&self) -> Vec<f64> {
        self.inner.params()
    }

    fn state(&self) -> ModelState {
        let order = self.inner.order();
        self.inner.state_impl(ModelSpec::Arima {
            p: order.p,
            d: order.d,
            q: order.q,
        })
    }

    fn observations(&self) -> usize {
        self.inner.observations()
    }

    fn boxed_clone(&self) -> Box<dyn ForecastModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Granularity;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(values, Granularity::Monthly)
    }

    // -- differencing --------------------------------------------------------

    #[test]
    fn batch_differencing_matches_manual() {
        let x = [1.0, 3.0, 6.0, 10.0, 15.0];
        let (w, _) = Differencer::batch(&x, 1, 0, 1).unwrap();
        assert_eq!(w, vec![2.0, 3.0, 4.0, 5.0]);
        let (w2, _) = Differencer::batch(&x, 2, 0, 1).unwrap();
        assert_eq!(w2, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn seasonal_differencing_matches_manual() {
        let x = [1.0, 2.0, 3.0, 5.0, 7.0, 9.0];
        let (w, _) = Differencer::batch(&x, 0, 1, 3).unwrap();
        assert_eq!(w, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn incremental_differencing_matches_batch() {
        let x: Vec<f64> = (0..20)
            .map(|t| (t as f64).powi(2) * 0.1 + t as f64)
            .collect();
        let (w_full, _) = Differencer::batch(&x, 1, 1, 4).unwrap();
        let (_, mut diff) = Differencer::batch(&x[..15], 1, 1, 4).unwrap();
        let mut incr = Vec::new();
        for &v in &x[15..] {
            incr.push(diff.push(v));
        }
        assert_eq!(&w_full[w_full.len() - 5..], incr.as_slice());
    }

    #[test]
    fn integration_inverts_differencing() {
        let x: Vec<f64> = (0..24)
            .map(|t| 5.0 + t as f64 * 2.0 + ((t % 4) as f64))
            .collect();
        // Difference the first 20, then "forecast" the true differenced
        // values of the last 4 and integrate: must reproduce x exactly.
        let (w_all, _) = Differencer::batch(&x, 1, 1, 4).unwrap();
        let (_, diff) = Differencer::batch(&x[..20], 1, 1, 4).unwrap();
        let future_w = &w_all[w_all.len() - 4..];
        let rebuilt = diff.integrate(future_w);
        for (a, b) in rebuilt.iter().zip(&x[20..]) {
            assert!((a - b).abs() < 1e-9, "{rebuilt:?} vs {:?}", &x[20..]);
        }
    }

    #[test]
    fn differencing_requires_enough_data() {
        assert!(Differencer::batch(&[1.0, 2.0], 2, 0, 1).is_none());
    }

    // -- polynomial expansion -------------------------------------------------

    #[test]
    fn ar_expansion_includes_cross_terms() {
        // (1 − 0.5B)(1 − 0.4B²) = 1 − 0.5B − 0.4B² + 0.2B³
        let a = expand_ar(&[0.5], &[0.4], 2);
        assert_eq!(a.len(), 3);
        assert!((a[0] - 0.5).abs() < 1e-12);
        assert!((a[1] - 0.4).abs() < 1e-12);
        assert!((a[2] + 0.2).abs() < 1e-12);
    }

    #[test]
    fn ma_expansion_includes_cross_terms() {
        // (1 + 0.5B)(1 + 0.4B²) = 1 + 0.5B + 0.4B² + 0.2B³
        let b = expand_ma(&[0.5], &[0.4], 2);
        assert!((b[0] - 0.5).abs() < 1e-12);
        assert!((b[1] - 0.4).abs() < 1e-12);
        assert!((b[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn expansion_without_seasonal_is_identity() {
        let a = expand_ar(&[0.7, -0.2], &[], 4);
        assert_eq!(a, vec![0.7, -0.2]);
    }

    // -- residual recursion ----------------------------------------------------

    #[test]
    fn residuals_of_white_noise_under_null_model() {
        let w = [1.0, -0.5, 0.25, 0.7];
        let e = css_residuals(&w, &[], &[]);
        assert_eq!(e, w.to_vec());
    }

    #[test]
    fn residuals_of_pure_ar1() {
        // w_t = 0.5 w_{t-1} exactly → residuals all 0 after t=0.
        let mut w = vec![1.0];
        for t in 1..10 {
            let prev = w[t - 1];
            w.push(0.5 * prev);
        }
        let e = css_residuals(&w, &[0.5], &[]);
        for &v in &e[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    // -- model fitting ----------------------------------------------------------

    /// Deterministic AR(1) series driven by LCG white noise so the test is
    /// reproducible without depending on `rand`.
    fn ar1_series(n: usize, phi: f64) -> TimeSeries {
        let mut values = vec![10.0];
        let mut state = 0x1234_5678_9abc_def0_u64;
        for t in 1..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            let prev = values[t - 1];
            values.push(10.0 + phi * (prev - 10.0) + noise);
        }
        ts(values)
    }

    #[test]
    fn ar1_coefficient_recovered() {
        let series = ar1_series(200, 0.7);
        let model = Arima::fit(&series, ArimaOrder::new(1, 0, 0), &FitOptions::default()).unwrap();
        let phi = model.raw_params()[0];
        assert!((phi - 0.7).abs() < 0.15, "estimated φ = {phi}");
    }

    #[test]
    fn random_walk_arima010_forecasts_near_last_value() {
        let values: Vec<f64> = (0..30).map(|t| 100.0 + t as f64).collect();
        let model = Arima::fit(
            &ts(values),
            ArimaOrder::new(0, 1, 0),
            &FitOptions::default(),
        )
        .unwrap();
        let fc = model.forecast(3);
        // Drift = mean of differences = 1 → forecasts 130, 131, 132.
        assert!((fc[0] - 130.0).abs() < 1e-6, "{fc:?}");
        assert!((fc[2] - 132.0).abs() < 1e-6, "{fc:?}");
    }

    #[test]
    fn sarima_fits_seasonal_series() {
        let values: Vec<f64> = (0..60)
            .map(|t| 50.0 + ((t % 4) as f64) * 10.0 + t as f64 * 0.2)
            .collect();
        let model = Sarima::fit(
            &ts(values.clone()),
            ArimaOrder::new(0, 1, 0),
            SeasonalOrder::new(0, 1, 0, 4),
            &FitOptions::default(),
        )
        .unwrap();
        let fc = model.forecast(4);
        let truth: Vec<f64> = (60..64)
            .map(|t| 50.0 + ((t % 4) as f64) * 10.0 + t as f64 * 0.2)
            .collect();
        for (f, t) in fc.iter().zip(&truth) {
            assert!((f - t).abs() < 1.0, "{fc:?} vs {truth:?}");
        }
    }

    #[test]
    fn fit_rejects_short_series() {
        assert!(matches!(
            Arima::fit(
                &ts(vec![1.0; 4]),
                ArimaOrder::new(2, 1, 2),
                &FitOptions::default()
            ),
            Err(ForecastError::SeriesTooShort { .. })
        ));
    }

    #[test]
    fn fit_rejects_zero_period() {
        assert!(Sarima::fit(
            &ts(vec![1.0; 50]),
            ArimaOrder::new(1, 0, 0),
            SeasonalOrder::new(1, 0, 0, 0),
            &FitOptions::default(),
        )
        .is_err());
    }

    #[test]
    fn update_matches_refitted_residual_path() {
        let series = ar1_series(100, 0.6);
        let mut model =
            Arima::fit(&series, ArimaOrder::new(1, 0, 1), &FitOptions::default()).unwrap();
        let before = model.observations();
        model.update(12.0);
        model.update(11.5);
        assert_eq!(model.observations(), before + 2);
        assert!(model.forecast(3).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn update_shifts_known_state_correctly() {
        // Hand-checkable ARIMA(1,0,0) with φ=0.5, mean 0 via symmetric data.
        let series = ts(vec![0.0, 1.0, -1.0, 2.0, -2.0, 1.0, -1.0, 0.0, 0.0, 0.0]);
        let mut model =
            Arima::fit(&series, ArimaOrder::new(1, 0, 0), &FitOptions::default()).unwrap();
        let phi = model.raw_params()[0];
        let mean = model.inner.mean;
        let w_last = model.inner.recent_w[0];
        model.update(3.0);
        let expected_w = 3.0 - mean;
        assert!((model.inner.recent_w[0] - expected_w).abs() < 1e-12);
        // One-step forecast should be mean + φ·w_new (integration is identity
        // for d=0).
        let fc = model.forecast(1)[0];
        assert!((fc - (mean + phi * expected_w)).abs() < 1e-9);
        let _ = w_last;
    }

    #[test]
    fn sarima_state_round_trip() {
        let values: Vec<f64> = (0..60)
            .map(|t| 50.0 + ((t % 4) as f64) * 10.0 + t as f64 * 0.2)
            .collect();
        let model = Sarima::fit(
            &ts(values),
            ArimaOrder::new(1, 1, 1),
            SeasonalOrder::new(0, 1, 0, 4),
            &FitOptions::default(),
        )
        .unwrap();
        let restored = Sarima::from_state(&model.state()).unwrap();
        assert_eq!(restored.forecast(8), model.forecast(8));
        // Restored model must also keep evolving identically.
        let mut a = model.clone();
        let mut b = restored;
        a.update(55.0);
        b.update(55.0);
        assert_eq!(a.forecast(4), b.forecast(4));
    }

    #[test]
    fn arima_state_round_trip() {
        let series = ar1_series(80, 0.5);
        let model = Arima::fit(&series, ArimaOrder::new(1, 0, 1), &FitOptions::default()).unwrap();
        let restored = Arima::from_state(&model.state()).unwrap();
        assert_eq!(restored.forecast(5), model.forecast(5));
    }

    #[test]
    fn from_state_rejects_mismatched_spec() {
        let series = ar1_series(80, 0.5);
        let model = Arima::fit(&series, ArimaOrder::new(1, 0, 0), &FitOptions::default()).unwrap();
        assert!(Sarima::from_state(&model.state()).is_err());
        let mut bad = model.state();
        bad.state.pop();
        assert!(Arima::from_state(&bad).is_err());
    }

    #[test]
    fn forecasts_are_finite_even_for_boundary_parameters() {
        // Construct the state directly with extreme-but-bounded φ.
        let series = ar1_series(60, 0.9);
        let model = Arima::fit(&series, ArimaOrder::new(2, 1, 2), &FitOptions::default()).unwrap();
        let fc = model.forecast(50);
        assert!(fc.iter().all(|v| v.is_finite()));
    }
}
