//! Time series container and basic operations.

/// Sampling granularity of a time series.
///
/// The paper's data sets span quarterly (Tourism), monthly (Sales) and
/// hourly (Energy) resolutions; the granularity determines the natural
/// seasonal period used when fitting seasonal models (§VI-A: "we set the
/// seasonality according to the granularity of the data").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Hourly observations; daily seasonality (period 24).
    Hourly,
    /// Daily observations; weekly seasonality (period 7).
    Daily,
    /// Weekly observations; yearly seasonality (period 52).
    Weekly,
    /// Monthly observations; yearly seasonality (period 12).
    Monthly,
    /// Quarterly observations; yearly seasonality (period 4).
    Quarterly,
    /// Yearly observations; no seasonality.
    Yearly,
}

impl Granularity {
    /// The natural seasonal period for this granularity (1 = no season).
    pub fn seasonal_period(self) -> usize {
        match self {
            Granularity::Hourly => 24,
            Granularity::Daily => 7,
            Granularity::Weekly => 52,
            Granularity::Monthly => 12,
            Granularity::Quarterly => 4,
            Granularity::Yearly => 1,
        }
    }
}

/// An ordered sequence of measure values according to the time dimension
/// (§II-A).
///
/// A `TimeSeries` is either a *base* time series (one per combination of
/// categorical attribute values) or an *aggregated* series formed by
/// summing base series. Values are evenly spaced; the logical time of the
/// first observation is `start`, which allows series that became active at
/// different times to be aligned.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    values: Vec<f64>,
    start: i64,
    granularity: Granularity,
}

impl TimeSeries {
    /// Creates a series starting at logical time 0.
    pub fn new(values: Vec<f64>, granularity: Granularity) -> Self {
        TimeSeries {
            values,
            start: 0,
            granularity,
        }
    }

    /// Creates a series with an explicit logical start time.
    pub fn with_start(values: Vec<f64>, start: i64, granularity: Granularity) -> Self {
        TimeSeries {
            values,
            start,
            granularity,
        }
    }

    /// The observations in time order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Logical time of the first observation.
    #[inline]
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Logical time one past the last observation.
    #[inline]
    pub fn end(&self) -> i64 {
        self.start + self.values.len() as i64
    }

    /// Sampling granularity.
    #[inline]
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends one observation (used by the maintenance processor when new
    /// actual values arrive).
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Sum over the whole history — the `h_s` quantity of Eq. (2).
    pub fn history_sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean of the observations (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.history_sum() / self.values.len() as f64
        }
    }

    /// Population variance of the observations (0 for fewer than 2 values).
    pub fn variance(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64
    }

    /// Splits the series into a training and a testing part; `train_frac`
    /// is clamped so both parts are non-empty whenever `len() >= 2`.
    ///
    /// The paper uses "about 80% of the data to train the forecast models
    /// and the remaining data to find and evaluate the best configuration"
    /// (§VI-A).
    pub fn split(&self, train_frac: f64) -> (TimeSeries, TimeSeries) {
        let n = self.values.len();
        let mut k = ((n as f64) * train_frac).round() as usize;
        if n >= 2 {
            k = k.clamp(1, n - 1);
        } else {
            k = n;
        }
        let train = TimeSeries::with_start(self.values[..k].to_vec(), self.start, self.granularity);
        let test = TimeSeries::with_start(
            self.values[k..].to_vec(),
            self.start + k as i64,
            self.granularity,
        );
        (train, test)
    }

    /// Element-wise sum of several aligned series (the SUM aggregation of
    /// §II-A). All series must share start, length and granularity.
    ///
    /// Returns `None` when `series` is empty or misaligned.
    pub fn aggregate_sum(series: &[&TimeSeries]) -> Option<TimeSeries> {
        let first = series.first()?;
        let n = first.len();
        if series
            .iter()
            .any(|s| s.len() != n || s.start != first.start || s.granularity != first.granularity)
        {
            return None;
        }
        let mut values = vec![0.0; n];
        for s in series {
            for (acc, v) in values.iter_mut().zip(s.values()) {
                *acc += v;
            }
        }
        Some(TimeSeries::with_start(
            values,
            first.start,
            first.granularity,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: &[f64]) -> TimeSeries {
        TimeSeries::new(values.to_vec(), Granularity::Monthly)
    }

    #[test]
    fn seasonal_periods() {
        assert_eq!(Granularity::Hourly.seasonal_period(), 24);
        assert_eq!(Granularity::Quarterly.seasonal_period(), 4);
        assert_eq!(Granularity::Yearly.seasonal_period(), 1);
    }

    #[test]
    fn basic_accessors() {
        let s = TimeSeries::with_start(vec![1.0, 2.0, 3.0], 5, Granularity::Daily);
        assert_eq!(s.len(), 3);
        assert_eq!(s.start(), 5);
        assert_eq!(s.end(), 8);
        assert!(!s.is_empty());
        assert_eq!(s.granularity(), Granularity::Daily);
    }

    #[test]
    fn history_sum_and_mean() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.history_sum(), 10.0);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(ts(&[]).mean(), 0.0);
    }

    #[test]
    fn variance_known_value() {
        let s = ts(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(ts(&[1.0]).variance(), 0.0);
    }

    #[test]
    fn split_eighty_twenty() {
        let s = ts(&(0..10).map(|v| v as f64).collect::<Vec<_>>());
        let (train, test) = s.split(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert_eq!(test.start(), 8);
        assert_eq!(test.values(), &[8.0, 9.0]);
    }

    #[test]
    fn split_never_produces_empty_parts() {
        let s = ts(&[1.0, 2.0]);
        let (train, test) = s.split(0.999);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
        let (train, test) = s.split(0.0);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn aggregate_sum_adds_elementwise() {
        let a = ts(&[1.0, 2.0]);
        let b = ts(&[10.0, 20.0]);
        let sum = TimeSeries::aggregate_sum(&[&a, &b]).unwrap();
        assert_eq!(sum.values(), &[11.0, 22.0]);
    }

    #[test]
    fn aggregate_sum_rejects_misaligned() {
        let a = ts(&[1.0, 2.0]);
        let b = ts(&[1.0]);
        assert!(TimeSeries::aggregate_sum(&[&a, &b]).is_none());
        let c = TimeSeries::with_start(vec![1.0, 2.0], 1, Granularity::Monthly);
        assert!(TimeSeries::aggregate_sum(&[&a, &c]).is_none());
        assert!(TimeSeries::aggregate_sum(&[]).is_none());
    }

    #[test]
    fn push_extends_series() {
        let mut s = ts(&[1.0]);
        s.push(2.0);
        assert_eq!(s.values(), &[1.0, 2.0]);
        assert_eq!(s.end(), 2);
    }
}
