//! Variance-stabilizing transforms.
//!
//! Many cube measures (sales counts, visits, energy) have variance that
//! grows with the level; a Box–Cox transform before fitting and the
//! inverse after forecasting often improves additive-model fits. The
//! transform is provided as a standalone utility: the advisor treats the
//! forecast method as a black box (§II-B), so transforms compose at the
//! call site rather than inside the models.

use crate::model::ForecastError;
use crate::series::TimeSeries;

/// A fitted Box–Cox transform `y = (xᵏ − 1)/λ` (λ ≠ 0) or `y = ln x`
/// (λ = 0), with a shift making the data strictly positive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxCox {
    /// The exponent λ.
    pub lambda: f64,
    /// Shift added before transforming (0 when data is already positive).
    pub shift: f64,
}

impl BoxCox {
    /// Creates a transform with a fixed λ for the given data (derives the
    /// positivity shift).
    pub fn with_lambda(x: &[f64], lambda: f64) -> crate::Result<Self> {
        if x.is_empty() {
            return Err(ForecastError::InvalidParameter(
                "Box-Cox needs at least one observation".into(),
            ));
        }
        let min = x.iter().copied().fold(f64::INFINITY, f64::min);
        let shift = if min > 0.0 { 0.0 } else { -min + 1.0 };
        Ok(BoxCox { lambda, shift })
    }

    /// Selects λ from a small grid by maximizing the Box–Cox
    /// log-likelihood (normality of the transformed data).
    pub fn fit(x: &[f64]) -> crate::Result<Self> {
        if x.len() < 3 {
            return Err(ForecastError::SeriesTooShort {
                required: 3,
                got: x.len(),
            });
        }
        let candidate = BoxCox::with_lambda(x, 1.0)?;
        let shift = candidate.shift;
        let grid = [-1.0, -0.5, 0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0];
        let mut best = (1.0, f64::NEG_INFINITY);
        for &lambda in &grid {
            let t = BoxCox { lambda, shift };
            let y: Vec<f64> = x.iter().map(|&v| t.forward(v)).collect();
            let n = y.len() as f64;
            let mean = y.iter().sum::<f64>() / n;
            let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            if var <= 0.0 {
                continue;
            }
            // Profile log-likelihood: −n/2·ln σ² + (λ−1)·Σ ln(x+shift).
            let log_jac: f64 = x.iter().map(|&v| (v + shift).max(1e-300).ln()).sum();
            let ll = -n / 2.0 * var.ln() + (lambda - 1.0) * log_jac;
            if ll > best.1 {
                best = (lambda, ll);
            }
        }
        Ok(BoxCox {
            lambda: best.0,
            shift,
        })
    }

    /// Transforms one value.
    pub fn forward(&self, x: f64) -> f64 {
        let v = (x + self.shift).max(1e-300);
        if self.lambda.abs() < 1e-12 {
            v.ln()
        } else {
            (v.powf(self.lambda) - 1.0) / self.lambda
        }
    }

    /// Inverts one transformed value.
    pub fn inverse(&self, y: f64) -> f64 {
        let v = if self.lambda.abs() < 1e-12 {
            y.exp()
        } else {
            let base = self.lambda * y + 1.0;
            // Guard against slightly-negative bases from forecast noise.
            base.max(1e-300).powf(1.0 / self.lambda)
        };
        v - self.shift
    }

    /// Transforms a whole series.
    pub fn forward_series(&self, series: &TimeSeries) -> TimeSeries {
        TimeSeries::with_start(
            series.values().iter().map(|&v| self.forward(v)).collect(),
            series.start(),
            series.granularity(),
        )
    }

    /// Inverts a slice of forecasts.
    pub fn inverse_all(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.inverse(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Granularity;

    #[test]
    fn forward_inverse_round_trip() {
        for lambda in [-1.0, -0.5, 0.0, 0.5, 1.0, 2.0] {
            let t = BoxCox { lambda, shift: 0.0 };
            for x in [0.1, 1.0, 5.0, 123.4] {
                let y = t.forward(x);
                assert!(
                    (t.inverse(y) - x).abs() < 1e-9,
                    "λ={lambda} x={x} inverted to {}",
                    t.inverse(y)
                );
            }
        }
    }

    #[test]
    fn lambda_one_is_a_shift() {
        let t = BoxCox {
            lambda: 1.0,
            shift: 0.0,
        };
        assert!((t.forward(5.0) - 4.0).abs() < 1e-12); // (x−1)/1
        assert!((t.inverse(4.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_zero_is_log() {
        let t = BoxCox {
            lambda: 0.0,
            shift: 0.0,
        };
        assert!((t.forward(std::f64::consts::E) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nonpositive_data_gets_shifted() {
        let t = BoxCox::with_lambda(&[-3.0, 0.0, 2.0], 0.5).unwrap();
        assert_eq!(t.shift, 4.0);
        let y = t.forward(-3.0);
        assert!(y.is_finite());
        assert!((t.inverse(y) + 3.0).abs() < 1e-9);
    }

    #[test]
    fn fit_prefers_log_for_multiplicative_growth() {
        // Exponential growth: log (λ≈0) should beat identity (λ=1).
        let x: Vec<f64> = (0..60).map(|t| (0.1 * t as f64).exp()).collect();
        let t = BoxCox::fit(&x).unwrap();
        assert!(
            t.lambda <= 0.25,
            "expected λ near 0 for exponential data, got {}",
            t.lambda
        );
    }

    #[test]
    fn fit_keeps_identity_for_already_gaussian_data() {
        // Linear data with additive noise: identity should be competitive
        // (λ close to 1, certainly not log).
        let mut state = 42u64;
        let x: Vec<f64> = (0..200)
            .map(|t| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                100.0 + t as f64 * 0.1 + noise * 5.0
            })
            .collect();
        let t = BoxCox::fit(&x).unwrap();
        assert!(t.lambda >= 0.5, "got λ = {}", t.lambda);
    }

    #[test]
    fn series_round_trip() {
        let series = TimeSeries::new(vec![1.0, 4.0, 9.0, 16.0], Granularity::Monthly);
        let t = BoxCox::with_lambda(series.values(), 0.5).unwrap();
        let transformed = t.forward_series(&series);
        let back = t.inverse_all(transformed.values());
        for (a, b) in back.iter().zip(series.values()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(transformed.start(), series.start());
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(BoxCox::with_lambda(&[], 1.0).is_err());
        assert!(BoxCox::fit(&[1.0]).is_err());
    }
}
