//! Classical seasonal decomposition (moving-average method).
//!
//! Splits a series into trend + seasonal + remainder components, the
//! standard first look at any seasonal series and a useful diagnostic for
//! choosing between the additive and multiplicative Holt–Winters
//! variants. The implementation is the textbook centered-moving-average
//! procedure (Hyndman & Athanasopoulos, FPP §6.3).

use crate::model::{ForecastError, SeasonalKind};
use crate::series::TimeSeries;

/// The components of a decomposed series (aligned with the input; trend
/// is `NaN`-free — edges are linearly extrapolated).
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Centered-moving-average trend.
    pub trend: Vec<f64>,
    /// Seasonal component, periodic with the requested period
    /// (sums to ~0 per cycle for additive; averages to ~1 for
    /// multiplicative).
    pub seasonal: Vec<f64>,
    /// Remainder after removing trend and seasonality.
    pub remainder: Vec<f64>,
    /// The decomposition mode.
    pub kind: SeasonalKind,
    /// The seasonal period used.
    pub period: usize,
}

impl Decomposition {
    /// Strength of seasonality in `[0, 1]` (Wang–Smith–Hyndman measure):
    /// `max(0, 1 − Var(remainder) / Var(seasonal + remainder))`.
    pub fn seasonal_strength(&self) -> f64 {
        strength(&self.remainder, &self.seasonal)
    }

    /// Strength of trend in `[0, 1]`:
    /// `max(0, 1 − Var(remainder) / Var(trend + remainder))`.
    pub fn trend_strength(&self) -> f64 {
        strength(&self.remainder, &self.trend)
    }
}

fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / x.len() as f64
}

fn strength(remainder: &[f64], component: &[f64]) -> f64 {
    let combined: Vec<f64> = remainder
        .iter()
        .zip(component)
        .map(|(r, c)| r + c)
        .collect();
    let vc = variance(&combined);
    if vc <= 0.0 {
        return 0.0;
    }
    (1.0 - variance(remainder) / vc).max(0.0)
}

/// Decomposes `series` with the given seasonal period.
///
/// Requires at least two full cycles. Multiplicative decomposition
/// requires strictly positive data.
pub fn decompose(
    series: &TimeSeries,
    period: usize,
    kind: SeasonalKind,
) -> crate::Result<Decomposition> {
    let x = series.values();
    if period < 2 {
        return Err(ForecastError::InvalidParameter(
            "decomposition needs a period of at least 2".into(),
        ));
    }
    if x.len() < 2 * period {
        return Err(ForecastError::SeriesTooShort {
            required: 2 * period,
            got: x.len(),
        });
    }
    if kind == SeasonalKind::Multiplicative && x.iter().any(|&v| v <= 0.0) {
        return Err(ForecastError::InvalidParameter(
            "multiplicative decomposition requires positive data".into(),
        ));
    }
    let n = x.len();

    // Centered moving average of window `period` (period+1 with half
    // weights at the ends when the period is even).
    let half = period / 2;
    let mut trend = vec![f64::NAN; n];
    for t in half..n - half {
        let avg = if period.is_multiple_of(2) {
            let mut sum = 0.5 * x[t - half] + 0.5 * x[t + half];
            sum += x[(t - half + 1)..(t + half)].iter().sum::<f64>();
            sum / period as f64
        } else {
            x[t - half..=t + half].iter().sum::<f64>() / period as f64
        };
        trend[t] = avg;
    }
    // Extrapolate the edges linearly from the first/last two defined
    // points so every index has a trend value.
    let first = half;
    let last = n - half - 1;
    let head_slope = trend[first + 1] - trend[first];
    for t in (0..first).rev() {
        trend[t] = trend[t + 1] - head_slope;
    }
    let tail_slope = trend[last] - trend[last - 1];
    for t in last + 1..n {
        trend[t] = trend[t - 1] + tail_slope;
    }

    // Detrend and average per season position.
    let mut season_sum = vec![0.0; period];
    let mut season_count = vec![0usize; period];
    for t in 0..n {
        let detrended = match kind {
            SeasonalKind::Additive => x[t] - trend[t],
            SeasonalKind::Multiplicative => {
                if trend[t].abs() < 1e-12 {
                    1.0
                } else {
                    x[t] / trend[t]
                }
            }
        };
        season_sum[t % period] += detrended;
        season_count[t % period] += 1;
    }
    let mut indices: Vec<f64> = season_sum
        .iter()
        .zip(&season_count)
        .map(|(s, &c)| s / c.max(1) as f64)
        .collect();
    // Normalize: additive indices sum to 0; multiplicative average to 1.
    match kind {
        SeasonalKind::Additive => {
            let mean = indices.iter().sum::<f64>() / period as f64;
            for i in &mut indices {
                *i -= mean;
            }
        }
        SeasonalKind::Multiplicative => {
            let mean = indices.iter().sum::<f64>() / period as f64;
            if mean.abs() > 1e-12 {
                for i in &mut indices {
                    *i /= mean;
                }
            }
        }
    }

    let seasonal: Vec<f64> = (0..n).map(|t| indices[t % period]).collect();
    let remainder: Vec<f64> = (0..n)
        .map(|t| match kind {
            SeasonalKind::Additive => x[t] - trend[t] - seasonal[t],
            SeasonalKind::Multiplicative => {
                let denom = trend[t] * seasonal[t];
                if denom.abs() < 1e-12 {
                    0.0
                } else {
                    x[t] / denom - 1.0
                }
            }
        })
        .collect();

    Ok(Decomposition {
        trend,
        seasonal,
        remainder,
        kind,
        period,
    })
}

/// Suggests additive vs multiplicative seasonality by comparing the
/// remainder variance of both decompositions (only additive is tried for
/// data containing non-positive values).
pub fn suggest_seasonal_kind(series: &TimeSeries, period: usize) -> crate::Result<SeasonalKind> {
    let additive = decompose(series, period, SeasonalKind::Additive)?;
    if series.values().iter().any(|&v| v <= 0.0) {
        return Ok(SeasonalKind::Additive);
    }
    let multiplicative = decompose(series, period, SeasonalKind::Multiplicative)?;
    // Compare scale-free remainders: the multiplicative remainder is
    // already relative; normalize the additive one by the trend level.
    let mean_trend = additive.trend.iter().sum::<f64>() / additive.trend.len() as f64;
    let add_rel: Vec<f64> = additive
        .remainder
        .iter()
        .map(|r| r / mean_trend.abs().max(1e-12))
        .collect();
    if variance(&multiplicative.remainder) < variance(&add_rel) {
        Ok(SeasonalKind::Multiplicative)
    } else {
        Ok(SeasonalKind::Additive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Granularity;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(values, Granularity::Monthly)
    }

    #[test]
    fn additive_decomposition_recovers_components() {
        let n = 72;
        let values: Vec<f64> = (0..n)
            .map(|t| {
                50.0 + 0.5 * t as f64
                    + 10.0 * (std::f64::consts::TAU * (t % 12) as f64 / 12.0).sin()
            })
            .collect();
        let d = decompose(&ts(values), 12, SeasonalKind::Additive).unwrap();
        // Trend is close to the true line in the interior.
        for t in 12..60 {
            let truth = 50.0 + 0.5 * t as f64;
            assert!(
                (d.trend[t] - truth).abs() < 1.0,
                "t={t}: {} vs {truth}",
                d.trend[t]
            );
        }
        // Seasonal indices match the sine (peak ≈ +10 near position 3).
        let peak = d.seasonal[..12].iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - 10.0).abs() < 1.0, "peak {peak}");
        // Remainder is tiny for this noiseless construction.
        assert!(variance(&d.remainder) < 0.5);
        // Component strengths are decisive.
        assert!(d.seasonal_strength() > 0.95);
        assert!(d.trend_strength() > 0.95);
    }

    #[test]
    fn multiplicative_decomposition_on_scaling_seasonality() {
        let n = 72;
        let values: Vec<f64> = (0..n)
            .map(|t| {
                (100.0 + 2.0 * t as f64)
                    * (1.0 + 0.3 * (std::f64::consts::TAU * (t % 12) as f64 / 12.0).sin())
            })
            .collect();
        let d = decompose(&ts(values.clone()), 12, SeasonalKind::Multiplicative).unwrap();
        // Indices average to 1 and hit ~1.3 at the peak.
        let mean: f64 = d.seasonal[..12].iter().sum::<f64>() / 12.0;
        assert!((mean - 1.0).abs() < 1e-6);
        let peak = d.seasonal[..12].iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - 1.3).abs() < 0.05, "peak {peak}");
        assert_eq!(
            suggest_seasonal_kind(&ts(values), 12).unwrap(),
            SeasonalKind::Multiplicative
        );
    }

    #[test]
    fn additive_data_is_suggested_additive() {
        let values: Vec<f64> = (0..48)
            .map(|t| 200.0 + 8.0 * (std::f64::consts::TAU * (t % 4) as f64 / 4.0).sin())
            .collect();
        assert_eq!(
            suggest_seasonal_kind(&ts(values), 4).unwrap(),
            SeasonalKind::Additive
        );
    }

    #[test]
    fn odd_period_decomposition_works() {
        let values: Vec<f64> = (0..35).map(|t| 10.0 + ((t % 7) as f64) - 3.0).collect();
        let d = decompose(&ts(values), 7, SeasonalKind::Additive).unwrap();
        assert_eq!(d.period, 7);
        assert!(d.trend.iter().all(|v| v.is_finite()));
        // Flat trend: the trend strength is ~0, the seasonal strength high.
        assert!(d.seasonal_strength() > 0.9);
        assert!(d.trend_strength() < 0.5);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(decompose(&ts(vec![1.0; 10]), 1, SeasonalKind::Additive).is_err());
        assert!(decompose(&ts(vec![1.0; 7]), 4, SeasonalKind::Additive).is_err());
        let mut with_zero = vec![1.0; 24];
        with_zero[5] = 0.0;
        assert!(decompose(&ts(with_zero), 4, SeasonalKind::Multiplicative).is_err());
    }
}
