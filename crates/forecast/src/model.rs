//! The [`ForecastModel`] abstraction, model specifications and
//! serializable model state.

use crate::arima::{Arima, ArimaOrder, Sarima, SeasonalOrder};
use crate::series::TimeSeries;
use crate::smoothing::{DampedHolt, Holt, HoltWinters, SimpleExponentialSmoothing};

/// Errors raised while fitting or using forecast models.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastError {
    /// The training series is too short for the requested model.
    SeriesTooShort {
        /// Minimum number of observations the model needs.
        required: usize,
        /// Number of observations supplied.
        got: usize,
    },
    /// A parameter was outside its legal domain.
    InvalidParameter(String),
    /// Numerical optimization failed to produce a usable estimate.
    EstimationFailed(String),
    /// The model state in storage is incompatible with the requested
    /// operation (e.g. deserialized state of a different model type).
    InvalidState(String),
}

impl std::fmt::Display for ForecastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForecastError::SeriesTooShort { required, got } => {
                write!(
                    f,
                    "series too short: need {required} observations, got {got}"
                )
            }
            ForecastError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ForecastError::EstimationFailed(msg) => write!(f, "estimation failed: {msg}"),
            ForecastError::InvalidState(msg) => write!(f, "invalid model state: {msg}"),
        }
    }
}

impl std::error::Error for ForecastError {}

/// Kind of seasonal component for triple exponential smoothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeasonalKind {
    /// Seasonal effect added to the level (robust for series containing
    /// zeros).
    Additive,
    /// Seasonal effect scales the level.
    Multiplicative,
}

/// Options controlling model fitting.
#[derive(Debug, Clone)]
pub struct FitOptions {
    /// Which optimizer estimates smoothing/ARMA parameters.
    pub optimizer: OptimizerKind,
    /// Maximum optimizer iterations.
    pub max_iterations: usize,
    /// Seed for stochastic optimizers (simulated annealing).
    pub seed: u64,
    /// Artificial extra model-creation time, in microseconds of busy work —
    /// used only by the Fig. 8(c,d) experiments that "artificially vary the
    /// time that is required to create a single forecast model" (§VI-C).
    pub artificial_cost_us: u64,
    /// Artificial extra model-creation time, in microseconds of *sleep* —
    /// models the I/O portion of a (re-)fit: inside the DBMS, re-estimating
    /// a model scans the stored base history, during which the CPU is idle.
    /// Used by the concurrency benchmarks to expose lock-hold cost.
    pub artificial_stall_us: u64,
}

impl FitOptions {
    /// Burns the configured artificial model-creation cost: busy work
    /// first, then the I/O-style sleep. Every fit and re-fit entry point
    /// pays this once per model.
    pub fn apply_artificial_cost(&self) {
        if self.artificial_cost_us > 0 {
            busy_wait_us(self.artificial_cost_us);
        }
        if self.artificial_stall_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.artificial_stall_us));
        }
    }
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            optimizer: OptimizerKind::NelderMead,
            max_iterations: 200,
            seed: 0x5eed,
            artificial_cost_us: 0,
            artificial_stall_us: 0,
        }
    }
}

/// Which numerical optimizer estimates model parameters (§IV-B.1:
/// "standard local (e.g., Hill-Climbing) or global (e.g., Simulated
/// Annealing) optimization algorithms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizerKind {
    /// Nelder–Mead simplex (default; robust for the ≤3-parameter smoothing
    /// models and small ARMA orders).
    NelderMead,
    /// Local coordinate hill climbing.
    HillClimbing,
    /// Global simulated annealing.
    SimulatedAnnealing,
}

/// Declarative specification of a model type plus structural
/// hyper-parameters. The advisor and the baselines fit models through this
/// type so the forecast method stays "independent of our approach"
/// (§II-B).
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// Simple exponential smoothing.
    Ses,
    /// Holt's linear trend (double exponential smoothing).
    Holt,
    /// Holt's method with a damped trend (the trend flattens out at long
    /// horizons — often more robust than the plain linear trend).
    HoltDamped,
    /// Holt–Winters triple exponential smoothing.
    HoltWinters {
        /// Length of the seasonal cycle.
        period: usize,
        /// Additive or multiplicative seasonality.
        seasonal: SeasonalKind,
    },
    /// Non-seasonal ARIMA(p, d, q).
    Arima {
        /// Autoregressive order.
        p: usize,
        /// Degree of differencing.
        d: usize,
        /// Moving-average order.
        q: usize,
    },
    /// Seasonal ARIMA(p, d, q)(P, D, Q)ₛ.
    Sarima {
        /// Non-seasonal order.
        order: (usize, usize, usize),
        /// Seasonal order.
        seasonal: (usize, usize, usize),
        /// Seasonal period.
        period: usize,
    },
}

impl ModelSpec {
    /// The minimum series length this spec can be fitted on.
    pub fn min_observations(&self) -> usize {
        match self {
            ModelSpec::Ses => 2,
            ModelSpec::Holt => 3,
            ModelSpec::HoltDamped => 3,
            ModelSpec::HoltWinters { period, .. } => 2 * period.max(&1) + 1,
            ModelSpec::Arima { p, d, q } => (p + d + q + 2).max(4),
            ModelSpec::Sarima {
                order: (p, d, q),
                seasonal: (sp, sd, sq),
                period,
            } => (p + d + q + (sp + sd + sq) * period + 2).max(4),
        }
    }

    /// Fits a model of this spec on `series`.
    pub fn fit(
        &self,
        series: &TimeSeries,
        options: &FitOptions,
    ) -> crate::Result<Box<dyn ForecastModel>> {
        options.apply_artificial_cost();
        match self {
            ModelSpec::Ses => Ok(Box::new(SimpleExponentialSmoothing::fit(series, options)?)),
            ModelSpec::Holt => Ok(Box::new(Holt::fit(series, options)?)),
            ModelSpec::HoltDamped => Ok(Box::new(DampedHolt::fit(series, options)?)),
            ModelSpec::HoltWinters { period, seasonal } => Ok(Box::new(HoltWinters::fit(
                series, *period, *seasonal, options,
            )?)),
            ModelSpec::Arima { p, d, q } => Ok(Box::new(Arima::fit(
                series,
                ArimaOrder::new(*p, *d, *q),
                options,
            )?)),
            ModelSpec::Sarima {
                order,
                seasonal,
                period,
            } => Ok(Box::new(Sarima::fit(
                series,
                ArimaOrder::new(order.0, order.1, order.2),
                SeasonalOrder::new(seasonal.0, seasonal.1, seasonal.2, *period),
                options,
            )?)),
        }
    }

    /// A reasonable default spec for a given seasonal period: triple
    /// exponential smoothing when a season exists (the paper found it
    /// "worked best in most cases", §VI-A), Holt otherwise.
    pub fn default_for_period(period: usize) -> ModelSpec {
        if period > 1 {
            ModelSpec::HoltWinters {
                period,
                seasonal: SeasonalKind::Additive,
            }
        } else {
            ModelSpec::Holt
        }
    }

    /// Like [`ModelSpec::default_for_period`], but degrades to simpler
    /// specs when the (training) history is too short for the seasonal
    /// model — so short data sets get Holt or SES instead of nothing.
    pub fn default_for_history(period: usize, history_len: usize) -> ModelSpec {
        let preferred = Self::default_for_period(period);
        if preferred.min_observations() <= history_len {
            preferred
        } else if ModelSpec::Holt.min_observations() <= history_len {
            ModelSpec::Holt
        } else {
            ModelSpec::Ses
        }
    }
}

/// Burns roughly `us` microseconds of CPU. Deliberately a busy loop (not a
/// sleep) so it contributes to measured model *creation time* the way real
/// parameter estimation would.
fn busy_wait_us(us: u64) {
    let start = std::time::Instant::now();
    let dur = std::time::Duration::from_micros(us);
    let mut sink = 0u64;
    while start.elapsed() < dur {
        // Mix the counter so the loop cannot be optimized away.
        sink = sink.wrapping_mul(6364136223846793005).wrapping_add(1);
        std::hint::black_box(sink);
    }
}

/// Serializable snapshot of a fitted model: what F²DB's second catalog
/// table stores ("the forecast models itself including state and parameter
/// values", §V).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    /// Structural specification the state belongs to.
    pub spec: ModelSpec,
    /// Estimated parameters (meaning depends on `spec`).
    pub params: Vec<f64>,
    /// Internal smoothing / residual state needed to resume forecasting.
    pub state: Vec<f64>,
    /// Number of observations the model has absorbed.
    pub observations: usize,
}

/// A fitted forecast model over a single time series of a node (§II-B).
///
/// Implementations capture "the dependency of future on past data". The
/// trait supports both query-time forecasting and the incremental
/// maintenance performed by F²DB when new values arrive. Models are
/// `Send + Sync` so a catalog shard can serve `forecast` calls from many
/// reader threads behind a shared lock.
pub trait ForecastModel: Send + Sync {
    /// Human-readable model family name.
    fn name(&self) -> &'static str;

    /// Forecasts the next `horizon` values after the end of the absorbed
    /// history.
    fn forecast(&self, horizon: usize) -> Vec<f64>;

    /// Absorbs one new actual observation, updating internal state
    /// *without* re-estimating parameters (cheap incremental maintenance).
    fn update(&mut self, value: f64);

    /// Fully re-estimates parameters on `series` (expensive maintenance,
    /// triggered lazily by F²DB when a model was marked invalid).
    fn refit(&mut self, series: &TimeSeries, options: &FitOptions) -> crate::Result<()>;

    /// Estimated parameters (for diagnostics and storage).
    fn params(&self) -> Vec<f64>;

    /// Serializable state snapshot.
    fn state(&self) -> ModelState;

    /// Number of observations absorbed so far.
    fn observations(&self) -> usize;

    /// Clones the model behind the trait object.
    fn boxed_clone(&self) -> Box<dyn ForecastModel>;
}

impl Clone for Box<dyn ForecastModel> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Restores a model from its serialized [`ModelState`].
pub fn restore_model(state: &ModelState) -> crate::Result<Box<dyn ForecastModel>> {
    match &state.spec {
        ModelSpec::Ses => Ok(Box::new(SimpleExponentialSmoothing::from_state(state)?)),
        ModelSpec::Holt => Ok(Box::new(Holt::from_state(state)?)),
        ModelSpec::HoltDamped => Ok(Box::new(DampedHolt::from_state(state)?)),
        ModelSpec::HoltWinters { .. } => Ok(Box::new(HoltWinters::from_state(state)?)),
        ModelSpec::Arima { .. } => Ok(Box::new(Arima::from_state(state)?)),
        ModelSpec::Sarima { .. } => Ok(Box::new(Sarima::from_state(state)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Granularity;

    fn series(n: usize) -> TimeSeries {
        let values = (0..n).map(|i| 10.0 + (i as f64) * 0.5).collect();
        TimeSeries::new(values, Granularity::Monthly)
    }

    #[test]
    fn min_observations_scale_with_structure() {
        assert_eq!(ModelSpec::Ses.min_observations(), 2);
        assert!(
            ModelSpec::HoltWinters {
                period: 12,
                seasonal: SeasonalKind::Additive
            }
            .min_observations()
                > 24
        );
        assert!(
            ModelSpec::Sarima {
                order: (1, 0, 1),
                seasonal: (1, 1, 0),
                period: 12
            }
            .min_observations()
                >= 26
        );
    }

    #[test]
    fn default_for_period_picks_seasonal_model() {
        assert!(matches!(
            ModelSpec::default_for_period(12),
            ModelSpec::HoltWinters { period: 12, .. }
        ));
        assert_eq!(ModelSpec::default_for_period(1), ModelSpec::Holt);
    }

    #[test]
    fn fit_dispatches_to_each_family() {
        let s = series(40);
        let opts = FitOptions::default();
        for spec in [
            ModelSpec::Ses,
            ModelSpec::Holt,
            ModelSpec::HoltWinters {
                period: 4,
                seasonal: SeasonalKind::Additive,
            },
            ModelSpec::Arima { p: 1, d: 1, q: 1 },
            ModelSpec::Sarima {
                order: (1, 0, 0),
                seasonal: (1, 0, 0),
                period: 4,
            },
        ] {
            let model = spec.fit(&s, &opts).unwrap();
            let fc = model.forecast(3);
            assert_eq!(fc.len(), 3);
            assert!(fc.iter().all(|v| v.is_finite()), "{spec:?} produced {fc:?}");
        }
    }

    #[test]
    fn state_round_trips_through_restore() {
        let s = series(30);
        let opts = FitOptions::default();
        let model = ModelSpec::Holt.fit(&s, &opts).unwrap();
        let state = model.state();
        let restored = restore_model(&state).unwrap();
        assert_eq!(restored.forecast(5), model.forecast(5));
        assert_eq!(restored.observations(), model.observations());
    }

    #[test]
    fn artificial_cost_burns_time() {
        let s = series(20);
        let opts = FitOptions {
            artificial_cost_us: 3_000,
            ..FitOptions::default()
        };
        let start = std::time::Instant::now();
        ModelSpec::Ses.fit(&s, &opts).unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_micros(3_000));
    }

    #[test]
    fn clone_box_preserves_behavior() {
        let s = series(25);
        let model = ModelSpec::Ses.fit(&s, &FitOptions::default()).unwrap();
        let cloned = model.clone();
        assert_eq!(cloned.forecast(4), model.forecast(4));
    }
}
