//! Naive reference models: last-value, seasonal-naive and drift.
//!
//! These are the canonical no-skill baselines of the forecasting
//! literature (and the denominators of scaled accuracy measures such as
//! MASE). They are full [`ForecastModel`] implementations — state
//! updates, serialization, the lot — so they can be stored in a
//! configuration or an F²DB catalog like any other model, which is handy
//! for sanity-checking a configuration against the cheapest possible
//! alternative.

use crate::model::{FitOptions, ForecastError, ForecastModel, ModelSpec, ModelState};
use crate::series::TimeSeries;

/// Which naive strategy a [`NaiveModel`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NaiveKind {
    /// Repeat the last observation.
    Last,
    /// Repeat the observation one season ago.
    Seasonal(usize),
    /// Extrapolate the average historical step (random walk with drift).
    Drift,
}

/// A naive forecast model.
///
/// Serialization note: naive models are deliberately *not* representable
/// in [`ModelSpec`] (the advisor never proposes them); [`state`] returns
/// an SES-shaped state capturing the flat forecast so a persisted catalog
/// degrades gracefully rather than failing. The seasonal and drift
/// variants refuse to serialize losslessly and are documented as
/// in-memory-only reference models.
///
/// [`state`]: ForecastModel::state
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveModel {
    kind: NaiveKind,
    /// Recent history: 1 value for Last, `s` values for Seasonal, the
    /// first/last values + count for Drift.
    window: Vec<f64>,
    first: f64,
    observations: usize,
}

impl NaiveModel {
    /// Builds a naive model over a series.
    pub fn fit(series: &TimeSeries, kind: NaiveKind) -> crate::Result<Self> {
        let x = series.values();
        let required = match kind {
            NaiveKind::Last => 1,
            NaiveKind::Seasonal(s) => s.max(1),
            NaiveKind::Drift => 2,
        };
        if x.len() < required {
            return Err(ForecastError::SeriesTooShort {
                required,
                got: x.len(),
            });
        }
        if let NaiveKind::Seasonal(0) = kind {
            return Err(ForecastError::InvalidParameter(
                "seasonal naive needs a positive period".into(),
            ));
        }
        let window = match kind {
            NaiveKind::Last | NaiveKind::Drift => vec![*x.last().expect("non-empty")],
            NaiveKind::Seasonal(s) => x[x.len() - s..].to_vec(),
        };
        Ok(NaiveModel {
            kind,
            window,
            first: x[0],
            observations: x.len(),
        })
    }

    /// The strategy of this model.
    pub fn kind(&self) -> NaiveKind {
        self.kind
    }

    fn drift_per_step(&self) -> f64 {
        if self.observations < 2 {
            return 0.0;
        }
        (self.window[0] - self.first) / (self.observations - 1) as f64
    }
}

impl ForecastModel for NaiveModel {
    fn name(&self) -> &'static str {
        match self.kind {
            NaiveKind::Last => "naive",
            NaiveKind::Seasonal(_) => "seasonal-naive",
            NaiveKind::Drift => "drift",
        }
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        match self.kind {
            NaiveKind::Last => vec![self.window[0]; horizon],
            NaiveKind::Seasonal(s) => (0..horizon)
                .map(|h| self.window[(self.observations + h) % s.max(1) % self.window.len()])
                .collect(),
            NaiveKind::Drift => {
                let slope = self.drift_per_step();
                (1..=horizon)
                    .map(|h| self.window[0] + slope * h as f64)
                    .collect()
            }
        }
    }

    fn update(&mut self, value: f64) {
        match self.kind {
            NaiveKind::Last | NaiveKind::Drift => self.window[0] = value,
            NaiveKind::Seasonal(_) => {
                let idx = self.observations % self.window.len();
                self.window[idx] = value;
            }
        }
        self.observations += 1;
    }

    fn refit(&mut self, series: &TimeSeries, _options: &FitOptions) -> crate::Result<()> {
        *self = Self::fit(series, self.kind)?;
        Ok(())
    }

    fn params(&self) -> Vec<f64> {
        match self.kind {
            NaiveKind::Drift => vec![self.drift_per_step()],
            _ => Vec::new(),
        }
    }

    fn state(&self) -> ModelState {
        // Lossy degrade to a flat SES state (see the type-level docs).
        ModelState {
            spec: ModelSpec::Ses,
            params: vec![1.0],
            state: vec![self.window[0]],
            observations: self.observations,
        }
    }

    fn observations(&self) -> usize {
        self.observations
    }

    fn boxed_clone(&self) -> Box<dyn ForecastModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Granularity;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(values, Granularity::Monthly)
    }

    #[test]
    fn naive_repeats_last_value() {
        let m = NaiveModel::fit(&ts(vec![1.0, 2.0, 7.0]), NaiveKind::Last).unwrap();
        assert_eq!(m.forecast(3), vec![7.0, 7.0, 7.0]);
        assert_eq!(m.name(), "naive");
    }

    #[test]
    fn seasonal_naive_repeats_cycle() {
        // Values 1..8 with period 4: last season = [5,6,7,8]; n=8 so the
        // next index is 8 % 4 = 0 → forecasts cycle 5,6,7,8,5…
        let m = NaiveModel::fit(
            &ts(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]),
            NaiveKind::Seasonal(4),
        )
        .unwrap();
        assert_eq!(m.forecast(5), vec![5.0, 6.0, 7.0, 8.0, 5.0]);
    }

    #[test]
    fn drift_extrapolates_average_slope() {
        // From 10 to 16 in 3 steps → slope 2 per step.
        let m = NaiveModel::fit(&ts(vec![10.0, 12.0, 14.0, 16.0]), NaiveKind::Drift).unwrap();
        assert_eq!(m.forecast(2), vec![18.0, 20.0]);
        assert_eq!(m.params(), vec![2.0]);
    }

    #[test]
    fn updates_keep_models_current() {
        let mut m = NaiveModel::fit(&ts(vec![1.0, 2.0]), NaiveKind::Last).unwrap();
        m.update(9.0);
        assert_eq!(m.forecast(1), vec![9.0]);
        assert_eq!(m.observations(), 3);

        let mut s = NaiveModel::fit(&ts(vec![1.0, 2.0, 3.0, 4.0]), NaiveKind::Seasonal(2)).unwrap();
        // Window = [3,4]; update replaces position 4 % 2 = 0.
        s.update(30.0);
        assert_eq!(s.forecast(2), vec![4.0, 30.0]);
    }

    #[test]
    fn rejects_insufficient_data() {
        assert!(NaiveModel::fit(&ts(vec![]), NaiveKind::Last).is_err());
        assert!(NaiveModel::fit(&ts(vec![1.0]), NaiveKind::Drift).is_err());
        assert!(NaiveModel::fit(&ts(vec![1.0, 2.0]), NaiveKind::Seasonal(4)).is_err());
        assert!(NaiveModel::fit(&ts(vec![1.0, 2.0]), NaiveKind::Seasonal(0)).is_err());
    }

    #[test]
    fn refit_resets_to_new_series() {
        let mut m = NaiveModel::fit(&ts(vec![1.0, 2.0]), NaiveKind::Last).unwrap();
        m.refit(&ts(vec![5.0, 6.0, 42.0]), &FitOptions::default())
            .unwrap();
        assert_eq!(m.forecast(1), vec![42.0]);
    }
}
