//! Exponential smoothing models: simple, Holt (trend) and Holt–Winters
//! (trend + seasonality).
//!
//! These are the workhorse models of the paper's evaluation — "triple
//! exponential smoothing worked best in most cases, where we set the
//! seasonality according to the granularity of the data" (§VI-A).
//! Smoothing parameters are estimated by minimizing the in-sample
//! one-step-ahead sum of squared errors with the optimizer selected in
//! [`FitOptions`].

use crate::model::{
    FitOptions, ForecastError, ForecastModel, ModelSpec, ModelState, OptimizerKind, SeasonalKind,
};
use crate::optimize::{FnObjective, HillClimbing, NelderMead, Optimizer, SimulatedAnnealing};
use crate::series::TimeSeries;

/// Bounds for smoothing parameters: open interval (0, 1) approximated by a
/// closed interval that keeps the recursions numerically stable.
const SMOOTH_BOUNDS: (f64, f64) = (0.01, 0.99);

fn run_optimizer(
    kind: OptimizerKind,
    seed: u64,
    max_iterations: usize,
    objective: &dyn crate::optimize::Objective,
    x0: &[f64],
) -> Vec<f64> {
    let max_evaluations = max_iterations.max(50) * objective.dim().max(1);
    match kind {
        OptimizerKind::NelderMead => {
            NelderMead {
                max_evaluations,
                ..NelderMead::default()
            }
            .minimize(objective, x0)
            .x
        }
        OptimizerKind::HillClimbing => {
            HillClimbing {
                max_evaluations,
                ..HillClimbing::default()
            }
            .minimize(objective, x0)
            .x
        }
        OptimizerKind::SimulatedAnnealing => {
            SimulatedAnnealing {
                max_evaluations,
                seed,
                ..SimulatedAnnealing::default()
            }
            .minimize(objective, x0)
            .x
        }
    }
}

// ---------------------------------------------------------------------------
// Simple exponential smoothing
// ---------------------------------------------------------------------------

/// Simple exponential smoothing: one level component, one parameter `α`.
///
/// Appropriate for series without trend or seasonality; the flat forecast
/// equals the current level.
#[derive(Debug, Clone, PartialEq)]
pub struct SimpleExponentialSmoothing {
    alpha: f64,
    level: f64,
    observations: usize,
}

impl SimpleExponentialSmoothing {
    /// Fits `α` by one-step SSE minimization.
    pub fn fit(series: &TimeSeries, options: &FitOptions) -> crate::Result<Self> {
        let x = series.values();
        if x.len() < 2 {
            return Err(ForecastError::SeriesTooShort {
                required: 2,
                got: x.len(),
            });
        }
        let objective = FnObjective::new(vec![SMOOTH_BOUNDS], |p| Self::sse(x, p[0]));
        let best = run_optimizer(
            options.optimizer,
            options.seed,
            options.max_iterations,
            &objective,
            &[0.3],
        );
        Ok(Self::with_params(x, best[0]))
    }

    /// Builds the model with a fixed `α` (no estimation).
    pub fn with_params(x: &[f64], alpha: f64) -> Self {
        let mut level = x[0];
        for &v in &x[1..] {
            level = alpha * v + (1.0 - alpha) * level;
        }
        SimpleExponentialSmoothing {
            alpha,
            level,
            observations: x.len(),
        }
    }

    /// The estimated smoothing parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn sse(x: &[f64], alpha: f64) -> f64 {
        let mut level = x[0];
        let mut sse = 0.0;
        for &v in &x[1..] {
            let e = v - level;
            sse += e * e;
            level = alpha * v + (1.0 - alpha) * level;
        }
        sse
    }

    /// Restores from a serialized state.
    pub fn from_state(state: &ModelState) -> crate::Result<Self> {
        if !matches!(state.spec, ModelSpec::Ses) {
            return Err(ForecastError::InvalidState("expected SES state".into()));
        }
        let (alpha, level) = match (state.params.as_slice(), state.state.as_slice()) {
            ([a], [l]) => (*a, *l),
            _ => return Err(ForecastError::InvalidState("malformed SES state".into())),
        };
        Ok(SimpleExponentialSmoothing {
            alpha,
            level,
            observations: state.observations,
        })
    }
}

impl ForecastModel for SimpleExponentialSmoothing {
    fn name(&self) -> &'static str {
        "ses"
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        vec![self.level; horizon]
    }

    fn update(&mut self, value: f64) {
        self.level = self.alpha * value + (1.0 - self.alpha) * self.level;
        self.observations += 1;
    }

    fn refit(&mut self, series: &TimeSeries, options: &FitOptions) -> crate::Result<()> {
        *self = Self::fit(series, options)?;
        Ok(())
    }

    fn params(&self) -> Vec<f64> {
        vec![self.alpha]
    }

    fn state(&self) -> ModelState {
        ModelState {
            spec: ModelSpec::Ses,
            params: vec![self.alpha],
            state: vec![self.level],
            observations: self.observations,
        }
    }

    fn observations(&self) -> usize {
        self.observations
    }

    fn boxed_clone(&self) -> Box<dyn ForecastModel> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Holt (double exponential smoothing)
// ---------------------------------------------------------------------------

/// Holt's linear trend method: level + trend components, parameters `α`
/// and `β`. Forecast at horizon `h` is `level + h·trend`.
#[derive(Debug, Clone, PartialEq)]
pub struct Holt {
    alpha: f64,
    beta: f64,
    level: f64,
    trend: f64,
    observations: usize,
}

impl Holt {
    /// Fits `α`, `β` by one-step SSE minimization.
    pub fn fit(series: &TimeSeries, options: &FitOptions) -> crate::Result<Self> {
        let x = series.values();
        if x.len() < 3 {
            return Err(ForecastError::SeriesTooShort {
                required: 3,
                got: x.len(),
            });
        }
        let objective = FnObjective::new(vec![SMOOTH_BOUNDS, SMOOTH_BOUNDS], |p| {
            Self::sse(x, p[0], p[1])
        });
        let best = run_optimizer(
            options.optimizer,
            options.seed,
            options.max_iterations,
            &objective,
            &[0.3, 0.1],
        );
        Ok(Self::with_params(x, best[0], best[1]))
    }

    /// Builds the model with fixed parameters.
    pub fn with_params(x: &[f64], alpha: f64, beta: f64) -> Self {
        let mut level = x[0];
        let mut trend = x[1] - x[0];
        for &v in &x[1..] {
            let prev_level = level;
            level = alpha * v + (1.0 - alpha) * (level + trend);
            trend = beta * (level - prev_level) + (1.0 - beta) * trend;
        }
        Holt {
            alpha,
            beta,
            level,
            trend,
            observations: x.len(),
        }
    }

    /// `(α, β)`.
    pub fn parameters(&self) -> (f64, f64) {
        (self.alpha, self.beta)
    }

    fn sse(x: &[f64], alpha: f64, beta: f64) -> f64 {
        let mut level = x[0];
        let mut trend = x[1] - x[0];
        let mut sse = 0.0;
        for &v in &x[1..] {
            let f = level + trend;
            let e = v - f;
            sse += e * e;
            let prev_level = level;
            level = alpha * v + (1.0 - alpha) * (level + trend);
            trend = beta * (level - prev_level) + (1.0 - beta) * trend;
        }
        sse
    }

    /// Restores from a serialized state.
    pub fn from_state(state: &ModelState) -> crate::Result<Self> {
        if !matches!(state.spec, ModelSpec::Holt) {
            return Err(ForecastError::InvalidState("expected Holt state".into()));
        }
        let (alpha, beta, level, trend) = match (state.params.as_slice(), state.state.as_slice()) {
            ([a, b], [l, t]) => (*a, *b, *l, *t),
            _ => return Err(ForecastError::InvalidState("malformed Holt state".into())),
        };
        Ok(Holt {
            alpha,
            beta,
            level,
            trend,
            observations: state.observations,
        })
    }
}

impl ForecastModel for Holt {
    fn name(&self) -> &'static str {
        "holt"
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        (1..=horizon)
            .map(|h| self.level + h as f64 * self.trend)
            .collect()
    }

    fn update(&mut self, value: f64) {
        let prev_level = self.level;
        self.level = self.alpha * value + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
        self.observations += 1;
    }

    fn refit(&mut self, series: &TimeSeries, options: &FitOptions) -> crate::Result<()> {
        *self = Self::fit(series, options)?;
        Ok(())
    }

    fn params(&self) -> Vec<f64> {
        vec![self.alpha, self.beta]
    }

    fn state(&self) -> ModelState {
        ModelState {
            spec: ModelSpec::Holt,
            params: vec![self.alpha, self.beta],
            state: vec![self.level, self.trend],
            observations: self.observations,
        }
    }

    fn observations(&self) -> usize {
        self.observations
    }

    fn boxed_clone(&self) -> Box<dyn ForecastModel> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Damped-trend Holt
// ---------------------------------------------------------------------------

/// Holt's method with a damped trend: parameters `α`, `β` and damping
/// `φ ∈ (0, 1)`. The forecast at horizon `h` is
/// `level + (φ + φ² + … + φʰ)·trend`, so the trend flattens out instead
/// of extrapolating linearly forever — the empirically safer default for
/// long horizons (Gardner & McKenzie).
#[derive(Debug, Clone, PartialEq)]
pub struct DampedHolt {
    alpha: f64,
    beta: f64,
    phi: f64,
    level: f64,
    trend: f64,
    observations: usize,
}

impl DampedHolt {
    /// Fits `α`, `β`, `φ` by one-step SSE minimization.
    pub fn fit(series: &TimeSeries, options: &FitOptions) -> crate::Result<Self> {
        let x = series.values();
        if x.len() < 3 {
            return Err(ForecastError::SeriesTooShort {
                required: 3,
                got: x.len(),
            });
        }
        // φ is bounded to [0.7, 0.99]: lower values damp so aggressively
        // the model degenerates to SES (standard practice).
        let objective = FnObjective::new(vec![SMOOTH_BOUNDS, SMOOTH_BOUNDS, (0.7, 0.99)], |p| {
            Self::sse(x, p[0], p[1], p[2])
        });
        let best = run_optimizer(
            options.optimizer,
            options.seed,
            options.max_iterations,
            &objective,
            &[0.3, 0.1, 0.9],
        );
        Ok(Self::with_params(x, best[0], best[1], best[2]))
    }

    /// Builds the model with fixed parameters.
    pub fn with_params(x: &[f64], alpha: f64, beta: f64, phi: f64) -> Self {
        let mut level = x[0];
        let mut trend = x[1] - x[0];
        for &v in &x[1..] {
            let prev_level = level;
            level = alpha * v + (1.0 - alpha) * (level + phi * trend);
            trend = beta * (level - prev_level) + (1.0 - beta) * phi * trend;
        }
        DampedHolt {
            alpha,
            beta,
            phi,
            level,
            trend,
            observations: x.len(),
        }
    }

    /// `(α, β, φ)`.
    pub fn parameters(&self) -> (f64, f64, f64) {
        (self.alpha, self.beta, self.phi)
    }

    fn sse(x: &[f64], alpha: f64, beta: f64, phi: f64) -> f64 {
        let mut level = x[0];
        let mut trend = x[1] - x[0];
        let mut sse = 0.0;
        for &v in &x[1..] {
            let f = level + phi * trend;
            let e = v - f;
            sse += e * e;
            let prev_level = level;
            level = alpha * v + (1.0 - alpha) * (level + phi * trend);
            trend = beta * (level - prev_level) + (1.0 - beta) * phi * trend;
        }
        sse
    }

    /// Restores from a serialized state.
    pub fn from_state(state: &ModelState) -> crate::Result<Self> {
        if !matches!(state.spec, ModelSpec::HoltDamped) {
            return Err(ForecastError::InvalidState(
                "expected damped-Holt state".into(),
            ));
        }
        let (alpha, beta, phi, level, trend) =
            match (state.params.as_slice(), state.state.as_slice()) {
                ([a, b, p], [l, t]) => (*a, *b, *p, *l, *t),
                _ => {
                    return Err(ForecastError::InvalidState(
                        "malformed damped-Holt state".into(),
                    ))
                }
            };
        Ok(DampedHolt {
            alpha,
            beta,
            phi,
            level,
            trend,
            observations: state.observations,
        })
    }
}

impl ForecastModel for DampedHolt {
    fn name(&self) -> &'static str {
        "holt-damped"
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        let mut damp_sum = 0.0;
        let mut damp = 1.0;
        (1..=horizon)
            .map(|_| {
                damp *= self.phi;
                damp_sum += damp;
                self.level + damp_sum * self.trend
            })
            .collect()
    }

    fn update(&mut self, value: f64) {
        let prev_level = self.level;
        self.level = self.alpha * value + (1.0 - self.alpha) * (self.level + self.phi * self.trend);
        self.trend =
            self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.phi * self.trend;
        self.observations += 1;
    }

    fn refit(&mut self, series: &TimeSeries, options: &FitOptions) -> crate::Result<()> {
        *self = Self::fit(series, options)?;
        Ok(())
    }

    fn params(&self) -> Vec<f64> {
        vec![self.alpha, self.beta, self.phi]
    }

    fn state(&self) -> ModelState {
        ModelState {
            spec: ModelSpec::HoltDamped,
            params: vec![self.alpha, self.beta, self.phi],
            state: vec![self.level, self.trend],
            observations: self.observations,
        }
    }

    fn observations(&self) -> usize {
        self.observations
    }

    fn boxed_clone(&self) -> Box<dyn ForecastModel> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Holt–Winters (triple exponential smoothing)
// ---------------------------------------------------------------------------

/// Holt–Winters triple exponential smoothing with additive or
/// multiplicative seasonality.
///
/// The seasonal array is indexed by `t mod period`, where `t` counts
/// absorbed observations, and is updated in place as the recursion
/// proceeds.
#[derive(Debug, Clone, PartialEq)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
    kind: SeasonalKind,
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    observations: usize,
}

impl HoltWinters {
    /// Fits `α`, `β`, `γ` by one-step SSE minimization.
    ///
    /// Multiplicative seasonality requires strictly positive observations;
    /// otherwise [`ForecastError::InvalidParameter`] is returned.
    pub fn fit(
        series: &TimeSeries,
        period: usize,
        kind: SeasonalKind,
        options: &FitOptions,
    ) -> crate::Result<Self> {
        let x = series.values();
        if period < 2 {
            return Err(ForecastError::InvalidParameter(
                "Holt-Winters requires a seasonal period of at least 2".into(),
            ));
        }
        let required = 2 * period + 1;
        if x.len() < required {
            return Err(ForecastError::SeriesTooShort {
                required,
                got: x.len(),
            });
        }
        if kind == SeasonalKind::Multiplicative && x.iter().any(|&v| v <= 0.0) {
            return Err(ForecastError::InvalidParameter(
                "multiplicative seasonality requires strictly positive data".into(),
            ));
        }
        let objective = FnObjective::new(vec![SMOOTH_BOUNDS, SMOOTH_BOUNDS, SMOOTH_BOUNDS], |p| {
            Self::sse(x, period, kind, p[0], p[1], p[2])
        });
        let best = run_optimizer(
            options.optimizer,
            options.seed,
            options.max_iterations,
            &objective,
            &[0.3, 0.05, 0.1],
        );
        Ok(Self::with_params(
            x, period, kind, best[0], best[1], best[2],
        ))
    }

    /// Builds the model with fixed parameters.
    pub fn with_params(
        x: &[f64],
        period: usize,
        kind: SeasonalKind,
        alpha: f64,
        beta: f64,
        gamma: f64,
    ) -> Self {
        let (mut level, mut trend, mut seasonal) = Self::initial_components(x, period, kind);
        for (t, &v) in x.iter().enumerate().skip(period) {
            Self::step(
                v,
                t,
                period,
                kind,
                alpha,
                beta,
                gamma,
                &mut level,
                &mut trend,
                &mut seasonal,
            );
        }
        HoltWinters {
            alpha,
            beta,
            gamma,
            period,
            kind,
            level,
            trend,
            seasonal,
            observations: x.len(),
        }
    }

    /// `(α, β, γ)`.
    pub fn parameters(&self) -> (f64, f64, f64) {
        (self.alpha, self.beta, self.gamma)
    }

    /// The seasonal period.
    pub fn period(&self) -> usize {
        self.period
    }

    /// Classical initialization: level = mean of the first season, trend =
    /// averaged per-step difference between the first two seasons, seasonal
    /// indices from the first season relative to its mean.
    fn initial_components(x: &[f64], period: usize, kind: SeasonalKind) -> (f64, f64, Vec<f64>) {
        let m = period;
        let season1_mean = x[..m].iter().sum::<f64>() / m as f64;
        let trend = if x.len() >= 2 * m {
            let season2_mean = x[m..2 * m].iter().sum::<f64>() / m as f64;
            (season2_mean - season1_mean) / m as f64
        } else {
            0.0
        };
        let seasonal: Vec<f64> = (0..m)
            .map(|i| match kind {
                SeasonalKind::Additive => x[i] - season1_mean,
                SeasonalKind::Multiplicative => {
                    if season1_mean.abs() < f64::EPSILON {
                        1.0
                    } else {
                        x[i] / season1_mean
                    }
                }
            })
            .collect();
        (season1_mean, trend, seasonal)
    }

    /// One recursion step at time `t` with observation `v`.
    #[allow(clippy::too_many_arguments)]
    fn step(
        v: f64,
        t: usize,
        period: usize,
        kind: SeasonalKind,
        alpha: f64,
        beta: f64,
        gamma: f64,
        level: &mut f64,
        trend: &mut f64,
        seasonal: &mut [f64],
    ) {
        let si = t % period;
        let s_old = seasonal[si];
        let prev_level = *level;
        match kind {
            SeasonalKind::Additive => {
                *level = alpha * (v - s_old) + (1.0 - alpha) * (*level + *trend);
                *trend = beta * (*level - prev_level) + (1.0 - beta) * *trend;
                seasonal[si] = gamma * (v - *level) + (1.0 - gamma) * s_old;
            }
            SeasonalKind::Multiplicative => {
                let s_safe = if s_old.abs() < 1e-9 { 1.0 } else { s_old };
                *level = alpha * (v / s_safe) + (1.0 - alpha) * (*level + *trend);
                *trend = beta * (*level - prev_level) + (1.0 - beta) * *trend;
                let l_safe = if level.abs() < 1e-9 { 1.0 } else { *level };
                seasonal[si] = gamma * (v / l_safe) + (1.0 - gamma) * s_old;
            }
        }
    }

    fn sse(x: &[f64], period: usize, kind: SeasonalKind, alpha: f64, beta: f64, gamma: f64) -> f64 {
        let (mut level, mut trend, mut seasonal) = Self::initial_components(x, period, kind);
        let mut sse = 0.0;
        for (t, &v) in x.iter().enumerate().skip(period) {
            let s = seasonal[t % period];
            let f = match kind {
                SeasonalKind::Additive => level + trend + s,
                SeasonalKind::Multiplicative => (level + trend) * s,
            };
            let e = v - f;
            sse += e * e;
            Self::step(
                v,
                t,
                period,
                kind,
                alpha,
                beta,
                gamma,
                &mut level,
                &mut trend,
                &mut seasonal,
            );
        }
        sse
    }

    /// Restores from a serialized state.
    pub fn from_state(state: &ModelState) -> crate::Result<Self> {
        let (period, kind) = match state.spec {
            ModelSpec::HoltWinters { period, seasonal } => (period, seasonal),
            _ => {
                return Err(ForecastError::InvalidState(
                    "expected Holt-Winters state".into(),
                ))
            }
        };
        if state.params.len() != 3 || state.state.len() != 2 + period {
            return Err(ForecastError::InvalidState(
                "malformed Holt-Winters state".into(),
            ));
        }
        Ok(HoltWinters {
            alpha: state.params[0],
            beta: state.params[1],
            gamma: state.params[2],
            period,
            kind,
            level: state.state[0],
            trend: state.state[1],
            seasonal: state.state[2..].to_vec(),
            observations: state.observations,
        })
    }
}

impl ForecastModel for HoltWinters {
    fn name(&self) -> &'static str {
        "holt-winters"
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        (1..=horizon)
            .map(|h| {
                let s = self.seasonal[(self.observations + h - 1) % self.period];
                match self.kind {
                    SeasonalKind::Additive => self.level + h as f64 * self.trend + s,
                    SeasonalKind::Multiplicative => (self.level + h as f64 * self.trend) * s,
                }
            })
            .collect()
    }

    fn update(&mut self, value: f64) {
        let t = self.observations;
        Self::step(
            value,
            t,
            self.period,
            self.kind,
            self.alpha,
            self.beta,
            self.gamma,
            &mut self.level,
            &mut self.trend,
            &mut self.seasonal,
        );
        self.observations += 1;
    }

    fn refit(&mut self, series: &TimeSeries, options: &FitOptions) -> crate::Result<()> {
        *self = Self::fit(series, self.period, self.kind, options)?;
        Ok(())
    }

    fn params(&self) -> Vec<f64> {
        vec![self.alpha, self.beta, self.gamma]
    }

    fn state(&self) -> ModelState {
        let mut state = vec![self.level, self.trend];
        state.extend_from_slice(&self.seasonal);
        ModelState {
            spec: ModelSpec::HoltWinters {
                period: self.period,
                seasonal: self.kind,
            },
            params: vec![self.alpha, self.beta, self.gamma],
            state,
            observations: self.observations,
        }
    }

    fn observations(&self) -> usize {
        self.observations
    }

    fn boxed_clone(&self) -> Box<dyn ForecastModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Granularity;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(values, Granularity::Monthly)
    }

    fn seasonal_series(n: usize, period: usize) -> TimeSeries {
        let values = (0..n)
            .map(|t| {
                100.0
                    + 0.5 * t as f64
                    + 20.0
                        * (2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64).sin()
            })
            .collect();
        ts(values)
    }

    #[test]
    fn ses_constant_series_forecasts_constant() {
        let model =
            SimpleExponentialSmoothing::fit(&ts(vec![5.0; 20]), &FitOptions::default()).unwrap();
        let fc = model.forecast(3);
        for v in fc {
            assert!((v - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ses_rejects_tiny_series() {
        assert!(matches!(
            SimpleExponentialSmoothing::fit(&ts(vec![1.0]), &FitOptions::default()),
            Err(ForecastError::SeriesTooShort { .. })
        ));
    }

    #[test]
    fn ses_update_matches_batch() {
        let values: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let full = SimpleExponentialSmoothing::with_params(&values, 0.4);
        let mut incremental = SimpleExponentialSmoothing::with_params(&values[..15], 0.4);
        for &v in &values[15..] {
            incremental.update(v);
        }
        assert!((incremental.level - full.level).abs() < 1e-12);
        assert_eq!(incremental.observations(), full.observations());
    }

    #[test]
    fn ses_high_alpha_tracks_last_value() {
        let model = SimpleExponentialSmoothing::with_params(&[1.0, 2.0, 3.0, 10.0], 0.99);
        assert!((model.forecast(1)[0] - 10.0).abs() < 0.2);
    }

    #[test]
    fn holt_recovers_linear_trend() {
        let values: Vec<f64> = (0..30).map(|t| 3.0 + 2.0 * t as f64).collect();
        let model = Holt::fit(&ts(values), &FitOptions::default()).unwrap();
        let fc = model.forecast(3);
        // Next values should continue the line: 63, 65, 67 (last value 61).
        assert!((fc[0] - 63.0).abs() < 0.5, "{fc:?}");
        assert!((fc[2] - 67.0).abs() < 1.0, "{fc:?}");
    }

    #[test]
    fn holt_update_matches_batch() {
        let values: Vec<f64> = (0..25).map(|t| t as f64 + (t as f64 * 0.3).cos()).collect();
        let full = Holt::with_params(&values, 0.5, 0.2);
        let mut incremental = Holt::with_params(&values[..20], 0.5, 0.2);
        for &v in &values[20..] {
            incremental.update(v);
        }
        assert!((incremental.level - full.level).abs() < 1e-12);
        assert!((incremental.trend - full.trend).abs() < 1e-12);
    }

    #[test]
    fn holt_winters_recovers_seasonal_pattern() {
        let series = seasonal_series(48, 12);
        let model =
            HoltWinters::fit(&series, 12, SeasonalKind::Additive, &FitOptions::default()).unwrap();
        // Forecast the next full season and compare against the generating
        // process.
        let fc = model.forecast(12);
        let truth: Vec<f64> = (48..60)
            .map(|t| {
                100.0
                    + 0.5 * t as f64
                    + 20.0 * (2.0 * std::f64::consts::PI * (t % 12) as f64 / 12.0).sin()
            })
            .collect();
        let err = crate::accuracy::smape(&truth, &fc);
        assert!(err < 0.05, "SMAPE {err} too high: {fc:?}");
    }

    #[test]
    fn holt_winters_multiplicative_on_positive_data() {
        let values: Vec<f64> = (0..36)
            .map(|t| (50.0 + t as f64) * (1.0 + 0.3 * ((t % 4) as f64 - 1.5) / 3.0))
            .collect();
        let model = HoltWinters::fit(
            &ts(values),
            4,
            SeasonalKind::Multiplicative,
            &FitOptions::default(),
        )
        .unwrap();
        assert!(model.forecast(4).iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn holt_winters_multiplicative_rejects_nonpositive() {
        let mut values = vec![1.0; 20];
        values[3] = 0.0;
        assert!(matches!(
            HoltWinters::fit(
                &ts(values),
                4,
                SeasonalKind::Multiplicative,
                &FitOptions::default()
            ),
            Err(ForecastError::InvalidParameter(_))
        ));
    }

    #[test]
    fn holt_winters_rejects_short_series_and_tiny_period() {
        assert!(matches!(
            HoltWinters::fit(
                &ts(vec![1.0; 8]),
                4,
                SeasonalKind::Additive,
                &FitOptions::default()
            ),
            Err(ForecastError::SeriesTooShort { .. })
        ));
        assert!(matches!(
            HoltWinters::fit(
                &ts(vec![1.0; 8]),
                1,
                SeasonalKind::Additive,
                &FitOptions::default()
            ),
            Err(ForecastError::InvalidParameter(_))
        ));
    }

    #[test]
    fn holt_winters_update_matches_batch() {
        let series = seasonal_series(40, 4);
        let x = series.values();
        let full = HoltWinters::with_params(x, 4, SeasonalKind::Additive, 0.4, 0.1, 0.2);
        let mut incr = HoltWinters::with_params(&x[..32], 4, SeasonalKind::Additive, 0.4, 0.1, 0.2);
        for &v in &x[32..] {
            incr.update(v);
        }
        assert!((incr.level - full.level).abs() < 1e-9);
        assert!((incr.trend - full.trend).abs() < 1e-9);
        for (a, b) in incr.seasonal.iter().zip(&full.seasonal) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn holt_winters_state_round_trip() {
        let series = seasonal_series(36, 12);
        let model =
            HoltWinters::fit(&series, 12, SeasonalKind::Additive, &FitOptions::default()).unwrap();
        let restored = HoltWinters::from_state(&model.state()).unwrap();
        assert_eq!(restored.forecast(6), model.forecast(6));
    }

    #[test]
    fn from_state_rejects_wrong_spec() {
        let series = seasonal_series(36, 12);
        let model = Holt::fit(&series, &FitOptions::default()).unwrap();
        assert!(HoltWinters::from_state(&model.state()).is_err());
        assert!(SimpleExponentialSmoothing::from_state(&model.state()).is_err());
    }

    #[test]
    fn all_optimizers_fit_holt_winters() {
        let series = seasonal_series(48, 4);
        for optimizer in [
            OptimizerKind::NelderMead,
            OptimizerKind::HillClimbing,
            OptimizerKind::SimulatedAnnealing,
        ] {
            let opts = FitOptions {
                optimizer,
                ..FitOptions::default()
            };
            let model = HoltWinters::fit(&series, 4, SeasonalKind::Additive, &opts).unwrap();
            let fc = model.forecast(4);
            assert!(fc.iter().all(|v| v.is_finite()), "{optimizer:?}: {fc:?}");
        }
    }

    #[test]
    fn damped_holt_flattens_at_long_horizons() {
        let values: Vec<f64> = (0..40).map(|t| 10.0 + 2.0 * t as f64).collect();
        let m = DampedHolt::with_params(&values, 0.5, 0.2, 0.8);
        let fc = m.forecast(200);
        // With damping, increments shrink geometrically: the last steps
        // are nearly flat while the first step still moves.
        let first_step = fc[1] - fc[0];
        let last_step = fc[199] - fc[198];
        assert!(last_step.abs() < first_step.abs() * 0.01);
        // The limit is level + φ/(1−φ)·trend — finite.
        assert!(fc[199].is_finite());
        // An undamped Holt keeps climbing linearly by comparison.
        let plain = Holt::with_params(&values, 0.5, 0.2);
        assert!(plain.forecast(200)[199] > fc[199]);
    }

    #[test]
    fn damped_holt_fits_and_round_trips() {
        let values: Vec<f64> = (0..30).map(|t| 50.0 + 1.5 * t as f64).collect();
        let series = ts(values);
        let m = DampedHolt::fit(&series, &FitOptions::default()).unwrap();
        let (a, b, p) = m.parameters();
        assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b));
        assert!((0.7..=0.99).contains(&p));
        let restored = DampedHolt::from_state(&m.state()).unwrap();
        assert_eq!(restored.forecast(6), m.forecast(6));
        assert!(DampedHolt::from_state(
            &Holt::fit(&series, &FitOptions::default()).unwrap().state()
        )
        .is_err());
    }

    #[test]
    fn damped_holt_update_matches_batch() {
        let values: Vec<f64> = (0..25).map(|t| t as f64 + (t as f64 * 0.4).sin()).collect();
        let full = DampedHolt::with_params(&values, 0.4, 0.2, 0.85);
        let mut incr = DampedHolt::with_params(&values[..20], 0.4, 0.2, 0.85);
        for &v in &values[20..] {
            incr.update(v);
        }
        assert!((incr.level - full.level).abs() < 1e-12);
        assert!((incr.trend - full.trend).abs() < 1e-12);
    }

    #[test]
    fn refit_replaces_parameters() {
        let series = seasonal_series(48, 4);
        let mut model =
            HoltWinters::with_params(series.values(), 4, SeasonalKind::Additive, 0.9, 0.9, 0.9);
        model
            .refit(&series, &FitOptions::default())
            .expect("refit succeeds");
        let (a, b, g) = model.parameters();
        // Fitted parameters should differ from the deliberately bad fixed ones.
        assert!(a != 0.9 || b != 0.9 || g != 0.9);
    }
}
