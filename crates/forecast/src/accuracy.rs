//! Forecast accuracy measures.
//!
//! The paper's evaluation metric is the **symmetric mean absolute
//! percentage error** (SMAPE, Eq. 4) — scale-independent and bounded in
//! `[0, 1]`, "making it easily comparable" (§II-D). The remaining measures
//! are the conventional alternatives from Hyndman & Koehler, *Another look
//! at measures of forecast accuracy* \[18\], provided for tests and for
//! users who prefer scale-dependent diagnostics.

/// Which accuracy measure to use when scoring forecasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccuracyMeasure {
    /// Symmetric mean absolute percentage error (the paper's measure).
    Smape,
    /// Mean absolute percentage error.
    Mape,
    /// Mean absolute error.
    Mae,
    /// Root mean squared error.
    Rmse,
}

impl AccuracyMeasure {
    /// Scores `forecast` against `actual` with the selected measure.
    pub fn score(self, actual: &[f64], forecast: &[f64]) -> f64 {
        match self {
            AccuracyMeasure::Smape => smape(actual, forecast),
            AccuracyMeasure::Mape => mape(actual, forecast),
            AccuracyMeasure::Mae => mae(actual, forecast),
            AccuracyMeasure::Rmse => rmse(actual, forecast),
        }
    }
}

fn paired<'a>(actual: &'a [f64], forecast: &'a [f64]) -> impl Iterator<Item = (f64, f64)> + 'a {
    debug_assert_eq!(
        actual.len(),
        forecast.len(),
        "actual and forecast lengths must match"
    );
    actual.iter().copied().zip(forecast.iter().copied())
}

/// Symmetric mean absolute percentage error — Eq. (4) of the paper:
///
/// ```text
/// SMAPE = mean( |x_t − x̂_t| / (x_t + x̂_t) )
/// ```
///
/// Pairs where `x_t + x̂_t` is zero (both values zero for a non-negative
/// measure) contribute a zero error, keeping the measure defined on sparse
/// cube cells. Returns 0 for empty input.
pub fn smape(actual: &[f64], forecast: &[f64]) -> f64 {
    if actual.is_empty() {
        return 0.0;
    }
    let sum: f64 = paired(actual, forecast)
        .map(|(x, f)| {
            let denom = (x + f).abs();
            if denom < f64::EPSILON {
                0.0
            } else {
                (x - f).abs() / denom
            }
        })
        .sum();
    sum / actual.len() as f64
}

/// Mean absolute percentage error. Zero actual values contribute zero to
/// keep the measure finite on sparse data.
pub fn mape(actual: &[f64], forecast: &[f64]) -> f64 {
    if actual.is_empty() {
        return 0.0;
    }
    let sum: f64 = paired(actual, forecast)
        .map(|(x, f)| {
            if x.abs() < f64::EPSILON {
                0.0
            } else {
                ((x - f) / x).abs()
            }
        })
        .sum();
    sum / actual.len() as f64
}

/// Mean absolute error.
pub fn mae(actual: &[f64], forecast: &[f64]) -> f64 {
    if actual.is_empty() {
        return 0.0;
    }
    paired(actual, forecast)
        .map(|(x, f)| (x - f).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Root mean squared error.
pub fn rmse(actual: &[f64], forecast: &[f64]) -> f64 {
    if actual.is_empty() {
        return 0.0;
    }
    (paired(actual, forecast)
        .map(|(x, f)| (x - f) * (x - f))
        .sum::<f64>()
        / actual.len() as f64)
        .sqrt()
}

/// Mean absolute scaled error relative to the in-sample naive forecast of
/// `train`. Returns `f64::INFINITY` when the naive error is zero (constant
/// training series) and the forecast is not perfect.
pub fn mase(train: &[f64], actual: &[f64], forecast: &[f64]) -> f64 {
    if actual.is_empty() {
        return 0.0;
    }
    let naive_err: f64 = train.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>()
        / (train.len().saturating_sub(1)).max(1) as f64;
    let err = mae(actual, forecast);
    if naive_err < f64::EPSILON {
        if err < f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        err / naive_err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smape_perfect_forecast_is_zero() {
        assert_eq!(smape(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn smape_bounded_in_unit_interval() {
        // Worst case: forecast 0 for a positive actual → error 1.
        assert!((smape(&[5.0, 10.0], &[0.0, 0.0]) - 1.0).abs() < 1e-12);
        let e = smape(&[1.0, 2.0, 3.0], &[3.0, 1.0, 0.5]);
        assert!(e > 0.0 && e <= 1.0);
    }

    #[test]
    fn smape_known_value() {
        // |2-1|/(2+1) = 1/3 and |4-6|/(4+6) = 0.2 → mean = 0.2667
        let e = smape(&[2.0, 4.0], &[1.0, 6.0]);
        assert!((e - (1.0 / 3.0 + 0.2) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn smape_zero_pairs_contribute_zero() {
        assert_eq!(smape(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn smape_empty_is_zero() {
        assert_eq!(smape(&[], &[]), 0.0);
    }

    #[test]
    fn mape_known_value() {
        assert!((mape(&[2.0, 4.0], &[1.0, 5.0]) - (0.5 + 0.25) / 2.0).abs() < 1e-12);
        assert_eq!(mape(&[0.0], &[1.0]), 0.0); // zero actual skipped
    }

    #[test]
    fn mae_and_rmse_known_values() {
        assert_eq!(mae(&[1.0, 2.0], &[2.0, 4.0]), 1.5);
        assert!((rmse(&[1.0, 2.0], &[2.0, 4.0]) - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mase_scales_by_naive_error() {
        // Naive in-sample error of [1,2,3] is 1; forecast MAE is 0.5.
        let v = mase(&[1.0, 2.0, 3.0], &[4.0, 5.0], &[4.5, 4.5]);
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mase_constant_train() {
        assert_eq!(mase(&[2.0, 2.0], &[2.0], &[2.0]), 0.0);
        assert!(mase(&[2.0, 2.0], &[2.0], &[3.0]).is_infinite());
    }

    #[test]
    fn measure_dispatch() {
        let a = [1.0, 2.0];
        let f = [2.0, 2.0];
        assert_eq!(AccuracyMeasure::Mae.score(&a, &f), mae(&a, &f));
        assert_eq!(AccuracyMeasure::Smape.score(&a, &f), smape(&a, &f));
        assert_eq!(AccuracyMeasure::Mape.score(&a, &f), mape(&a, &f));
        assert_eq!(AccuracyMeasure::Rmse.score(&a, &f), rmse(&a, &f));
    }
}
