//! Rolling-origin backtesting (time series cross-validation).
//!
//! A single train/test split — the paper's evaluation protocol — can be
//! lucky or unlucky about where the cut falls. A rolling-origin backtest
//! refits the model at several origins and aggregates the error over all
//! of them, giving a lower-variance estimate of a specification's
//! accuracy on one series. Useful for model selection on important nodes
//! and for validating advisor configurations offline.

use crate::accuracy::AccuracyMeasure;
use crate::model::{FitOptions, ForecastError, ModelSpec};
use crate::series::TimeSeries;

/// Configuration of a rolling-origin backtest.
#[derive(Debug, Clone)]
pub struct BacktestOptions {
    /// Forecast horizon evaluated at each origin.
    pub horizon: usize,
    /// Number of origins (folds).
    pub folds: usize,
    /// Minimum training length for the first origin; `None` uses the
    /// spec's minimum plus one seasonal period of slack.
    pub min_train: Option<usize>,
    /// Accuracy measure aggregated over folds.
    pub measure: AccuracyMeasure,
    /// Fitting options per fold.
    pub fit: FitOptions,
}

impl Default for BacktestOptions {
    fn default() -> Self {
        BacktestOptions {
            horizon: 4,
            folds: 5,
            min_train: None,
            measure: AccuracyMeasure::Smape,
            fit: FitOptions::default(),
        }
    }
}

/// Result of a backtest: per-fold errors and their aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct BacktestReport {
    /// `(origin, error)` per fold — origin is the training length used.
    pub folds: Vec<(usize, f64)>,
    /// Mean error over all folds.
    pub mean_error: f64,
    /// Worst fold error.
    pub max_error: f64,
}

/// Runs a rolling-origin backtest of `spec` on `series`.
///
/// Origins are evenly spaced so that the last origin leaves exactly
/// `horizon` observations for testing. Fails when the series cannot
/// accommodate the requested folds.
pub fn backtest(
    series: &TimeSeries,
    spec: &ModelSpec,
    options: &BacktestOptions,
) -> crate::Result<BacktestReport> {
    if options.horizon == 0 || options.folds == 0 {
        return Err(ForecastError::InvalidParameter(
            "backtest needs a positive horizon and fold count".into(),
        ));
    }
    let n = series.len();
    let min_train = options
        .min_train
        .unwrap_or_else(|| spec.min_observations() + 2)
        .max(spec.min_observations());
    let last_origin = n
        .checked_sub(options.horizon)
        .ok_or(ForecastError::SeriesTooShort {
            required: options.horizon + min_train,
            got: n,
        })?;
    if last_origin < min_train {
        return Err(ForecastError::SeriesTooShort {
            required: options.horizon + min_train,
            got: n,
        });
    }
    // Evenly spaced origins in [min_train, last_origin].
    let span = last_origin - min_train;
    let origins: Vec<usize> = if options.folds == 1 || span == 0 {
        vec![last_origin]
    } else {
        let folds = options.folds.min(span + 1);
        (0..folds)
            .map(|k| min_train + (span * k) / (folds - 1))
            .collect()
    };

    let x = series.values();
    let mut folds = Vec::with_capacity(origins.len());
    for &origin in &origins {
        let train =
            TimeSeries::with_start(x[..origin].to_vec(), series.start(), series.granularity());
        let model = spec.fit(&train, &options.fit)?;
        let fc = model.forecast(options.horizon);
        let actual = &x[origin..origin + options.horizon];
        folds.push((origin, options.measure.score(actual, &fc)));
    }
    let mean_error = folds.iter().map(|f| f.1).sum::<f64>() / folds.len() as f64;
    let max_error = folds.iter().map(|f| f.1).fold(0.0, f64::max);
    Ok(BacktestReport {
        folds,
        mean_error,
        max_error,
    })
}

/// Backtests several specs and returns them ranked by mean error
/// (unfittable specs are dropped).
pub fn backtest_select(
    series: &TimeSeries,
    specs: &[ModelSpec],
    options: &BacktestOptions,
) -> Vec<(ModelSpec, BacktestReport)> {
    let mut out: Vec<(ModelSpec, BacktestReport)> = specs
        .iter()
        .filter_map(|spec| {
            backtest(series, spec, options)
                .ok()
                .map(|r| (spec.clone(), r))
        })
        .collect();
    out.sort_by(|a, b| a.1.mean_error.total_cmp(&b.1.mean_error));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SeasonalKind;
    use crate::series::Granularity;

    fn seasonal_series(n: usize) -> TimeSeries {
        let values = (0..n)
            .map(|t| {
                100.0
                    + 0.4 * t as f64
                    + 12.0 * (std::f64::consts::TAU * (t % 12) as f64 / 12.0).sin()
            })
            .collect();
        TimeSeries::new(values, Granularity::Monthly)
    }

    #[test]
    fn backtest_produces_requested_folds() {
        let series = seasonal_series(96);
        let report = backtest(&series, &ModelSpec::Holt, &BacktestOptions::default()).unwrap();
        assert_eq!(report.folds.len(), 5);
        // Origins strictly increasing, last one leaves exactly `horizon`.
        for w in report.folds.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(report.folds.last().unwrap().0, 96 - 4);
        assert!(report.mean_error <= report.max_error + 1e-12);
    }

    #[test]
    fn seasonal_model_wins_backtest_selection_on_seasonal_data() {
        let series = seasonal_series(120);
        let ranked = backtest_select(
            &series,
            &[
                ModelSpec::Ses,
                ModelSpec::Holt,
                ModelSpec::HoltWinters {
                    period: 12,
                    seasonal: SeasonalKind::Additive,
                },
            ],
            &BacktestOptions::default(),
        );
        assert_eq!(ranked.len(), 3);
        assert!(
            matches!(ranked[0].0, ModelSpec::HoltWinters { .. }),
            "winner was {:?}",
            ranked[0].0
        );
    }

    #[test]
    fn backtest_rejects_impossible_setups() {
        let series = seasonal_series(10);
        assert!(backtest(
            &series,
            &ModelSpec::Holt,
            &BacktestOptions {
                horizon: 0,
                ..BacktestOptions::default()
            }
        )
        .is_err());
        assert!(backtest(
            &series,
            &ModelSpec::HoltWinters {
                period: 12,
                seasonal: SeasonalKind::Additive
            },
            &BacktestOptions::default()
        )
        .is_err());
        let tiny = TimeSeries::new(vec![1.0, 2.0], Granularity::Monthly);
        assert!(backtest(&tiny, &ModelSpec::Holt, &BacktestOptions::default()).is_err());
    }

    #[test]
    fn single_fold_uses_last_origin() {
        let series = seasonal_series(60);
        let report = backtest(
            &series,
            &ModelSpec::Ses,
            &BacktestOptions {
                folds: 1,
                horizon: 6,
                ..BacktestOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.folds.len(), 1);
        assert_eq!(report.folds[0].0, 54);
    }

    #[test]
    fn unfittable_specs_are_dropped_from_selection() {
        let series = seasonal_series(20);
        let ranked = backtest_select(
            &series,
            &[
                ModelSpec::Ses,
                ModelSpec::HoltWinters {
                    period: 12,
                    seasonal: SeasonalKind::Additive,
                },
            ],
            &BacktestOptions::default(),
        );
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].0, ModelSpec::Ses);
    }
}
