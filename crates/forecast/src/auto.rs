//! Automatic ARIMA order selection by corrected AIC.
//!
//! Complements [`crate::selection`] (which picks between model
//! *families*) with a search over the `(p, d, q)(P, D, Q)` structure of
//! the ARIMA family itself — the textbook `auto.arima` workflow reduced
//! to the small orders that matter in practice:
//!
//! 1. pick `d` (and seasonal `D`) by variance reduction of differencing,
//! 2. grid over small `(p, q)` / `(P, Q)` orders,
//! 3. score each candidate with AICc computed from the CSS residual
//!    variance, and
//! 4. return the winner fitted on the full series.

use crate::arima::{Sarima, SeasonalOrder};
use crate::model::{FitOptions, ForecastError};
use crate::series::TimeSeries;
use crate::ArimaOrder;

/// Result of an automatic order search.
pub struct AutoArimaReport {
    /// The winning fitted model.
    pub model: Sarima,
    /// Winning non-seasonal order.
    pub order: ArimaOrder,
    /// Winning seasonal order.
    pub seasonal: SeasonalOrder,
    /// AICc of the winner.
    pub aicc: f64,
    /// All evaluated candidates: `(order, seasonal, aicc)`.
    pub candidates: Vec<(ArimaOrder, SeasonalOrder, f64)>,
}

/// Search bounds for [`auto_arima`].
#[derive(Debug, Clone)]
pub struct AutoArimaOptions {
    /// Maximum non-seasonal AR order.
    pub max_p: usize,
    /// Maximum non-seasonal MA order.
    pub max_q: usize,
    /// Maximum regular differencing.
    pub max_d: usize,
    /// Seasonal period (1 disables the seasonal search).
    pub period: usize,
    /// Maximum seasonal AR/MA order.
    pub max_seasonal: usize,
    /// Fitting options for each candidate.
    pub fit: FitOptions,
}

impl Default for AutoArimaOptions {
    fn default() -> Self {
        AutoArimaOptions {
            max_p: 2,
            max_q: 2,
            max_d: 2,
            period: 1,
            max_seasonal: 1,
            fit: FitOptions::default(),
        }
    }
}

/// Chooses the differencing order `d ≤ max_d` by the classic rule of
/// thumb: difference while the lag-`lag` sample autocorrelation stays
/// above 0.9 (near-unit-root behaviour). Stationary but strongly
/// autocorrelated series (e.g. AR(1) with φ = 0.75) are correctly left
/// undifferenced, where a variance-minimizing rule would over-difference.
pub fn choose_differencing(x: &[f64], max_d: usize, lag: usize) -> usize {
    let mut cur = x.to_vec();
    let mut d = 0usize;
    while d < max_d && cur.len() > lag + 2 {
        if crate::diagnostics::autocorrelation(&cur, lag) <= 0.9 {
            break;
        }
        cur = (lag..cur.len()).map(|t| cur[t] - cur[t - lag]).collect();
        d += 1;
    }
    d
}

/// AICc from a CSS fit: `n·ln(σ̂²) + 2k + 2k(k+1)/(n−k−1)` where `k`
/// counts coefficients plus the innovation variance.
pub fn aicc_from_residual_variance(sigma2: f64, n: usize, coefficients: usize) -> f64 {
    let k = (coefficients + 1) as f64;
    let n = n as f64;
    let denom = (n - k - 1.0).max(1.0);
    n * sigma2.max(1e-300).ln() + 2.0 * k + 2.0 * k * (k + 1.0) / denom
}

/// Runs the order search and returns the winner.
pub fn auto_arima(
    series: &TimeSeries,
    options: &AutoArimaOptions,
) -> crate::Result<AutoArimaReport> {
    let x = series.values();
    if x.len() < 8 {
        return Err(ForecastError::SeriesTooShort {
            required: 8,
            got: x.len(),
        });
    }
    let d = choose_differencing(x, options.max_d, 1);
    let seasonal_d = if options.period > 1 {
        choose_differencing(x, 1, options.period)
    } else {
        0
    };

    let seasonal_orders: Vec<(usize, usize)> = if options.period > 1 {
        let m = options.max_seasonal;
        (0..=m)
            .flat_map(|sp| (0..=m).map(move |sq| (sp, sq)))
            .collect()
    } else {
        vec![(0, 0)]
    };

    let mut candidates = Vec::new();
    let mut best: Option<(ArimaOrder, SeasonalOrder, f64, Sarima)> = None;
    for p in 0..=options.max_p {
        for q in 0..=options.max_q {
            for &(sp, sq) in &seasonal_orders {
                let order = ArimaOrder::new(p, d, q);
                let seasonal = SeasonalOrder::new(sp, seasonal_d, sq, options.period.max(1));
                let Ok(model) = Sarima::fit(series, order, seasonal, &options.fit) else {
                    continue;
                };
                // Residual variance from honest one-step replays over the
                // fitted sample (approximated via the model's own CSS).
                let sigma2 = in_sample_sigma2(&model, series);
                let coefficients = p + q + sp + sq;
                let n = x.len() - d - seasonal_d * options.period.max(1);
                let aicc = aicc_from_residual_variance(sigma2, n, coefficients);
                candidates.push((order, seasonal, aicc));
                if best.as_ref().is_none_or(|(_, _, b, _)| aicc < *b) {
                    best = Some((order, seasonal, aicc, model));
                }
            }
        }
    }
    let (order, seasonal, aicc, model) = best.ok_or_else(|| {
        ForecastError::EstimationFailed("no ARIMA candidate could be fitted".into())
    })?;
    Ok(AutoArimaReport {
        model,
        order,
        seasonal,
        aicc,
        candidates,
    })
}

/// Approximates the innovation variance of a fitted model by replaying
/// the series through a clone and collecting one-step errors.
fn in_sample_sigma2(model: &Sarima, series: &TimeSeries) -> f64 {
    use crate::model::ForecastModel;
    let x = series.values();
    let warm = (x.len() / 3).max(4).min(x.len() - 1);
    let prefix = TimeSeries::with_start(x[..warm].to_vec(), series.start(), series.granularity());
    // Refit cheaply with the already-estimated parameters by restoring
    // state: simply clone the model and replay is not possible backwards,
    // so fit a fresh instance on the prefix with the same orders and the
    // same optimizer budget.
    let refit = Sarima::fit(
        &prefix,
        model.order(),
        model.seasonal_order(),
        &FitOptions::default(),
    );
    let mut m: Box<dyn ForecastModel> = match refit {
        Ok(m) => Box::new(m),
        Err(_) => model.boxed_clone(),
    };
    let mut sse = 0.0;
    let mut count = 0usize;
    for &actual in &x[warm..] {
        let predicted = m.forecast(1)[0];
        let e = actual - predicted;
        sse += e * e;
        count += 1;
        m.update(actual);
    }
    if count == 0 {
        f64::INFINITY
    } else {
        sse / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Granularity;

    fn lcg_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn choose_differencing_detects_trend() {
        // A strongly trending series needs d = 1; white noise needs d = 0.
        let trend: Vec<f64> = (0..100).map(|t| t as f64 * 5.0).collect();
        assert_eq!(choose_differencing(&trend, 2, 1), 1);
        let noise = lcg_noise(100, 1);
        assert_eq!(choose_differencing(&noise, 2, 1), 0);
    }

    #[test]
    fn aicc_penalizes_parameters() {
        let small = aicc_from_residual_variance(1.0, 100, 1);
        let big = aicc_from_residual_variance(1.0, 100, 5);
        assert!(big > small);
        // Better fit (smaller variance) wins despite more parameters when
        // the improvement is large.
        let good_fit = aicc_from_residual_variance(0.25, 100, 5);
        assert!(good_fit < small);
    }

    use crate::model::ForecastModel;

    #[test]
    fn auto_arima_prefers_ar_structure_on_ar_data() {
        let noise = lcg_noise(240, 9);
        let mut x = vec![10.0];
        for t in 1..240 {
            let prev = x[t - 1];
            x.push(10.0 + 0.75 * (prev - 10.0) + noise[t]);
        }
        let series = TimeSeries::new(x, Granularity::Monthly);
        let report = auto_arima(&series, &AutoArimaOptions::default()).unwrap();
        assert_eq!(report.order.d, 0, "stationary data needs no differencing");
        assert!(
            report.order.p >= 1,
            "AR data should select p >= 1, got {:?}",
            report.order
        );
        assert!(!report.candidates.is_empty());
        assert!(report.model.forecast(5).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn auto_arima_differences_trending_data() {
        let noise = lcg_noise(160, 4);
        let x: Vec<f64> = (0..160).map(|t| 5.0 * t as f64 + noise[t] * 2.0).collect();
        let series = TimeSeries::new(x, Granularity::Monthly);
        let report = auto_arima(&series, &AutoArimaOptions::default()).unwrap();
        assert!(report.order.d >= 1, "got {:?}", report.order);
    }

    #[test]
    fn auto_arima_rejects_tiny_series() {
        let series = TimeSeries::new(vec![1.0; 4], Granularity::Monthly);
        assert!(auto_arima(&series, &AutoArimaOptions::default()).is_err());
    }

    #[test]
    fn seasonal_search_is_enabled_by_period() {
        let values: Vec<f64> = (0..96)
            .map(|t| 50.0 + 20.0 * ((t % 12) as f64 / 12.0 * std::f64::consts::TAU).sin())
            .collect();
        let series = TimeSeries::new(values, Granularity::Monthly);
        let options = AutoArimaOptions {
            period: 12,
            ..AutoArimaOptions::default()
        };
        let report = auto_arima(&series, &options).unwrap();
        assert!(
            report.seasonal.d >= 1 || report.seasonal.p >= 1 || report.seasonal.q >= 1,
            "seasonal structure not detected: {:?}",
            report.seasonal
        );
    }
}
