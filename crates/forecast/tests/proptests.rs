//! Randomized property tests of the forecasting substrate, driven by
//! the deterministic workspace RNG.

use fdc_forecast::model::restore_model;
use fdc_forecast::{
    smape, FitOptions, ForecastModel, Granularity, ModelSpec, SeasonalKind, TimeSeries,
};
use fdc_rng::Rng;

fn random_series(rng: &mut Rng, min_len: usize) -> TimeSeries {
    let len = min_len + rng.usize_below(64);
    let v: Vec<f64> = (0..len).map(|_| rng.f64_range(1.0, 1000.0)).collect();
    TimeSeries::new(v, Granularity::Monthly)
}

/// Incremental update equals batch recomputation for SES (the
/// invariant F²DB maintenance relies on).
#[test]
fn ses_incremental_equals_batch() {
    use fdc_forecast::smoothing::SimpleExponentialSmoothing;
    let mut rng = Rng::seed_from_u64(0xf01);
    for case in 0..48 {
        let series = random_series(&mut rng, 8);
        let alpha = rng.f64_range(0.05, 0.95);
        let extra: Vec<f64> = (0..1 + rng.usize_below(7))
            .map(|_| rng.f64_range(1.0, 1000.0))
            .collect();
        let mut all = series.values().to_vec();
        all.extend_from_slice(&extra);
        let batch = SimpleExponentialSmoothing::with_params(&all, alpha);
        let mut incr = SimpleExponentialSmoothing::with_params(series.values(), alpha);
        for &v in &extra {
            incr.update(v);
        }
        assert!(
            (incr.forecast(1)[0] - batch.forecast(1)[0]).abs() < 1e-9,
            "case {case}"
        );
        assert_eq!(incr.observations(), batch.observations());
    }
}

/// Holt incremental update equals batch recomputation.
#[test]
fn holt_incremental_equals_batch() {
    use fdc_forecast::smoothing::Holt;
    let mut rng = Rng::seed_from_u64(0xf02);
    for case in 0..48 {
        let series = random_series(&mut rng, 8);
        let alpha = rng.f64_range(0.05, 0.95);
        let beta = rng.f64_range(0.05, 0.95);
        let extra: Vec<f64> = (0..1 + rng.usize_below(7))
            .map(|_| rng.f64_range(1.0, 1000.0))
            .collect();
        let mut all = series.values().to_vec();
        all.extend_from_slice(&extra);
        let batch = Holt::with_params(&all, alpha, beta);
        let mut incr = Holt::with_params(series.values(), alpha, beta);
        for &v in &extra {
            incr.update(v);
        }
        assert!(
            (incr.forecast(3)[2] - batch.forecast(3)[2]).abs() < 1e-6,
            "case {case}"
        );
    }
}

/// Every fitted model produces finite forecasts of the requested
/// length, and restores identically from serialized state.
#[test]
fn fitted_models_forecast_finitely_and_round_trip() {
    let mut rng = Rng::seed_from_u64(0xf03);
    let opts = FitOptions::default();
    for case in 0..24 {
        let series = random_series(&mut rng, 30);
        let horizon = 1 + rng.usize_below(23);
        for spec in [
            ModelSpec::Ses,
            ModelSpec::Holt,
            ModelSpec::HoltWinters {
                period: 4,
                seasonal: SeasonalKind::Additive,
            },
            ModelSpec::Arima { p: 1, d: 1, q: 0 },
        ] {
            let model = spec.fit(&series, &opts).expect("series long enough");
            let fc = model.forecast(horizon);
            assert_eq!(fc.len(), horizon);
            assert!(
                fc.iter().all(|v| v.is_finite()),
                "case {case} {spec:?}: {fc:?}"
            );
            let restored = restore_model(&model.state()).expect("state is valid");
            assert_eq!(restored.forecast(horizon), fc);
        }
    }
}

/// A constant series is forecast (almost) exactly by every smoothing
/// model.
#[test]
fn constant_series_forecast_exactly() {
    let mut rng = Rng::seed_from_u64(0xf04);
    let opts = FitOptions::default();
    for _ in 0..32 {
        let level = rng.f64_range(1.0, 1e4);
        let len = 12 + rng.usize_below(28);
        let series = TimeSeries::new(vec![level; len], Granularity::Quarterly);
        for spec in [ModelSpec::Ses, ModelSpec::Holt] {
            let model = spec.fit(&series, &opts).unwrap();
            for v in model.forecast(4) {
                assert!((v - level).abs() < 1e-6 * level, "{spec:?} -> {v}");
            }
        }
    }
}

/// SMAPE of a forecast scaled toward the actual decreases
/// monotonically (closer forecasts are never judged worse).
#[test]
fn smape_monotone_under_contraction() {
    let mut rng = Rng::seed_from_u64(0xf05);
    for _ in 0..48 {
        let n = 4 + rng.usize_below(28);
        let actual: Vec<f64> = (0..n).map(|_| rng.f64_range(1.0, 1e4)).collect();
        let scale = rng.f64_range(1.1, 4.0);
        let far: Vec<f64> = actual.iter().map(|v| v * scale).collect();
        let near: Vec<f64> = actual
            .iter()
            .map(|v| v * (1.0 + (scale - 1.0) / 2.0))
            .collect();
        assert!(smape(&actual, &near) <= smape(&actual, &far) + 1e-12);
    }
}

/// Train/test split partitions the series exactly.
#[test]
fn split_partitions_series() {
    let mut rng = Rng::seed_from_u64(0xf06);
    for _ in 0..48 {
        let series = random_series(&mut rng, 4);
        let frac = rng.f64();
        let (train, test) = series.split(frac);
        assert_eq!(train.len() + test.len(), series.len());
        let mut joined = train.values().to_vec();
        joined.extend_from_slice(test.values());
        assert_eq!(joined.as_slice(), series.values());
        assert_eq!(test.start(), train.end());
    }
}
