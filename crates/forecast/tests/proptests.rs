//! Property-based tests of the forecasting substrate.

use fdc_forecast::model::restore_model;
use fdc_forecast::{
    smape, FitOptions, ForecastModel, Granularity, ModelSpec, SeasonalKind, TimeSeries,
};
use proptest::prelude::*;

fn series_strategy(min_len: usize) -> impl Strategy<Value = TimeSeries> {
    proptest::collection::vec(1.0f64..1000.0, min_len..min_len + 64)
        .prop_map(|v| TimeSeries::new(v, Granularity::Monthly))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental update equals batch recomputation for SES (the
    /// invariant F²DB maintenance relies on).
    #[test]
    fn ses_incremental_equals_batch(
        series in series_strategy(8),
        alpha in 0.05f64..0.95,
        extra in proptest::collection::vec(1.0f64..1000.0, 1..8),
    ) {
        use fdc_forecast::smoothing::SimpleExponentialSmoothing;
        let mut all = series.values().to_vec();
        all.extend_from_slice(&extra);
        let batch = SimpleExponentialSmoothing::with_params(&all, alpha);
        let mut incr = SimpleExponentialSmoothing::with_params(series.values(), alpha);
        for &v in &extra {
            incr.update(v);
        }
        prop_assert!((incr.forecast(1)[0] - batch.forecast(1)[0]).abs() < 1e-9);
        prop_assert_eq!(incr.observations(), batch.observations());
    }

    /// Holt incremental update equals batch recomputation.
    #[test]
    fn holt_incremental_equals_batch(
        series in series_strategy(8),
        alpha in 0.05f64..0.95,
        beta in 0.05f64..0.95,
        extra in proptest::collection::vec(1.0f64..1000.0, 1..8),
    ) {
        use fdc_forecast::smoothing::Holt;
        let mut all = series.values().to_vec();
        all.extend_from_slice(&extra);
        let batch = Holt::with_params(&all, alpha, beta);
        let mut incr = Holt::with_params(series.values(), alpha, beta);
        for &v in &extra {
            incr.update(v);
        }
        prop_assert!((incr.forecast(3)[2] - batch.forecast(3)[2]).abs() < 1e-6);
    }

    /// Every fitted model produces finite forecasts of the requested
    /// length, and restores identically from serialized state.
    #[test]
    fn fitted_models_forecast_finitely_and_round_trip(
        series in series_strategy(30),
        horizon in 1usize..24,
    ) {
        let opts = FitOptions::default();
        for spec in [
            ModelSpec::Ses,
            ModelSpec::Holt,
            ModelSpec::HoltWinters { period: 4, seasonal: SeasonalKind::Additive },
            ModelSpec::Arima { p: 1, d: 1, q: 0 },
        ] {
            let model = spec.fit(&series, &opts).expect("series long enough");
            let fc = model.forecast(horizon);
            prop_assert_eq!(fc.len(), horizon);
            prop_assert!(fc.iter().all(|v| v.is_finite()), "{:?}: {:?}", spec, fc);
            let restored = restore_model(&model.state()).expect("state is valid");
            prop_assert_eq!(restored.forecast(horizon), fc);
        }
    }

    /// A constant series is forecast (almost) exactly by every smoothing
    /// model.
    #[test]
    fn constant_series_forecast_exactly(
        level in 1.0f64..1e4,
        len in 12usize..40,
    ) {
        let series = TimeSeries::new(vec![level; len], Granularity::Quarterly);
        let opts = FitOptions::default();
        for spec in [ModelSpec::Ses, ModelSpec::Holt] {
            let model = spec.fit(&series, &opts).unwrap();
            for v in model.forecast(4) {
                prop_assert!((v - level).abs() < 1e-6 * level, "{:?} -> {v}", spec);
            }
        }
    }

    /// SMAPE of a forecast scaled toward the actual decreases
    /// monotonically (closer forecasts are never judged worse).
    #[test]
    fn smape_monotone_under_contraction(
        actual in proptest::collection::vec(1.0f64..1e4, 4..32),
        scale in 1.1f64..4.0,
    ) {
        let far: Vec<f64> = actual.iter().map(|v| v * scale).collect();
        let near: Vec<f64> = actual.iter().map(|v| v * (1.0 + (scale - 1.0) / 2.0)).collect();
        prop_assert!(smape(&actual, &near) <= smape(&actual, &far) + 1e-12);
    }

    /// Train/test split partitions the series exactly.
    #[test]
    fn split_partitions_series(series in series_strategy(4), frac in 0.0f64..1.0) {
        let (train, test) = series.split(frac);
        prop_assert_eq!(train.len() + test.len(), series.len());
        let mut joined = train.values().to_vec();
        joined.extend_from_slice(test.values());
        prop_assert_eq!(joined.as_slice(), series.values());
        prop_assert_eq!(test.start(), train.end());
    }
}
