//! Golden-value regression tests for the model fits.
//!
//! One fixed seeded series (trend × quarterly season + noise), one fit
//! per model family with the default `FitOptions`, and hard-coded
//! expectations for the estimated parameters, the first forecast
//! values and the holdout SMAPE — all to 1e-9 relative tolerance.
//!
//! These pin the *numerics*: any change to the optimizers, the
//! initialization heuristics or the model recursions that moves a fit
//! by more than one part in a billion fails here, on purpose. If a
//! change is intentional, regenerate the constants with
//!
//! ```text
//! cargo test -p fdc-forecast --test golden_fits -- --ignored --nocapture
//! ```
//!
//! and paste the printed table back into this file.

// The regenerator prints every constant with 17 significant digits so
// the literals round-trip the exact f64 bits; keep them verbatim.
#![allow(clippy::excessive_precision)]

use fdc_forecast::{smape, FitOptions, Granularity, ModelSpec, SeasonalKind, TimeSeries};
use fdc_rng::Rng;

const TRAIN: usize = 48;
const HOLDOUT: usize = 8;

/// The fixed series: linear trend scaled by a quarterly seasonal
/// profile plus small seeded noise. Split into 48 training points and
/// an 8-point holdout.
fn golden_series() -> (TimeSeries, Vec<f64>) {
    let mut rng = Rng::seed_from_u64(0x601d);
    let season = [1.12, 0.94, 0.78, 1.16];
    let all: Vec<f64> = (0..TRAIN + HOLDOUT)
        .map(|t| {
            let trend = 120.0 + 2.5 * t as f64;
            trend * season[t % 4] + rng.f64_range(-4.0, 4.0)
        })
        .collect();
    (
        TimeSeries::new(all[..TRAIN].to_vec(), Granularity::Quarterly),
        all[TRAIN..].to_vec(),
    )
}

fn specs() -> Vec<(&'static str, ModelSpec)> {
    vec![
        ("ses", ModelSpec::Ses),
        ("holt", ModelSpec::Holt),
        (
            "holt_winters",
            ModelSpec::HoltWinters {
                period: 4,
                seasonal: SeasonalKind::Multiplicative,
            },
        ),
        ("arima", ModelSpec::Arima { p: 2, d: 1, q: 1 }),
    ]
}

/// Fits `spec` on the golden series; returns (params, forecasts, smape).
fn fit_golden(spec: &ModelSpec) -> (Vec<f64>, Vec<f64>, f64) {
    let (train, holdout) = golden_series();
    let model = spec
        .fit(&train, &FitOptions::default())
        .expect("golden fit succeeds");
    let fc = model.forecast(HOLDOUT);
    let err = smape(&holdout, &fc);
    (model.params(), fc, err)
}

#[track_caller]
fn assert_close(actual: f64, expected: f64, what: &str) {
    let tol = 1e-9 * expected.abs().max(1.0);
    assert!(
        (actual - expected).abs() <= tol,
        "{what}: got {actual:.17e}, golden {expected:.17e}"
    );
}

#[track_caller]
fn assert_golden(name: &str, params: &[f64], forecast4: &[f64], err: f64) {
    let spec = specs()
        .into_iter()
        .find(|(n, _)| *n == name)
        .expect("known spec")
        .1;
    let (p, fc, e) = fit_golden(&spec);
    assert_eq!(p.len(), params.len(), "{name}: parameter count");
    for (i, (&a, &g)) in p.iter().zip(params).enumerate() {
        assert_close(a, g, &format!("{name} param[{i}]"));
    }
    for (i, (&a, &g)) in fc.iter().zip(forecast4).enumerate() {
        assert_close(a, g, &format!("{name} forecast[{i}]"));
    }
    assert_close(e, err, &format!("{name} smape"));
}

/// Prints the golden table for pasting back into this file after an
/// intentional numerics change.
#[test]
#[ignore = "regenerates the golden constants; run with --ignored --nocapture"]
fn regenerate_golden_constants() {
    for (name, spec) in specs() {
        let (p, fc, e) = fit_golden(&spec);
        println!("// {name}");
        let plist: Vec<String> = p.iter().map(|v| format!("{v:.17e}")).collect();
        let flist: Vec<String> = fc.iter().take(4).map(|v| format!("{v:.17e}")).collect();
        println!(
            "assert_golden(\"{name}\", &[{}], &[{}], {:.17e});",
            plist.join(", "),
            flist.join(", "),
            e
        );
    }
}

#[test]
fn ses_fit_matches_golden_values() {
    assert_golden(
        "ses",
        &[2.10230468749999982e-1],
        &[
            2.29048952613281358e2,
            2.29048952613281358e2,
            2.29048952613281358e2,
            2.29048952613281358e2,
        ],
        7.72839430821467277e-2,
    );
}

#[test]
fn holt_fit_matches_golden_values() {
    assert_golden(
        "holt",
        &[2.05584397789586426e-1, 7.08155737903402471e-1],
        &[
            2.37802240565592797e2,
            2.41171780857992843e2,
            2.44541321150392861e2,
            2.47910861442792907e2,
        ],
        7.15897394702981055e-2,
    );
}

#[test]
fn holt_winters_fit_matches_golden_values() {
    assert_golden(
        "holt_winters",
        &[
            1.76386863023005908e-1,
            3.21360741960262652e-2,
            2.73120465398107304e-1,
        ],
        &[
            2.69297785764518153e2,
            2.29124165781136355e2,
            1.92371177670802496e2,
            2.87983229020699980e2,
        ],
        2.46764876262622369e-3,
    );
}

#[test]
fn arima_fit_matches_golden_values() {
    assert_golden(
        "arima",
        &[
            -1.81974636985412885e-1,
            -7.91146742371619416e-1,
            -7.81619228279932132e-1,
        ],
        &[
            2.77408677125954910e2,
            2.13408210956195973e2,
            2.27467301058137167e2,
            2.81284170659053132e2,
        ],
        4.30186167485717558e-2,
    );
}
